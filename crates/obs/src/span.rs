//! Spans, trace contexts, and the per-bus tracer.
//!
//! A [`TraceContext`] is the pair of ids that crosses process (here:
//! serialisation) boundaries; it encodes to a WS-Addressing-friendly URI
//! (`urn:dais:trace:<trace>:<span>`) carried in `wsa:MessageID` and
//! echoed back in `wsa:RelatesTo`. A [`Tracer`] mints ids from a seeded
//! [`SplitMix64`] so a whole trace replays byte-for-byte from a seed,
//! and stamps every span with a monotonic sequence number — start order,
//! not wall-clock, is what the deterministic renderer sorts by.
//!
//! Disabled (the default), every instrumentation site costs one relaxed
//! atomic load and performs no allocation: [`Tracer::span`] returns an
//! inert [`SpanHandle`], attribute setters are no-ops, and nothing is
//! written to the wire.
//!
//! # Tail-based retention
//!
//! [`Tracer::enable_tailed`] keeps tracing always-on but retains only
//! the traces worth keeping: the decision is made *after* completion
//! (at sink-drain time, when the whole tree is visible), per
//! [`TailPolicy`] — a trace survives when a top-level span exceeded the
//! latency threshold, when any span recorded a non-`ok` `outcome`
//! attribute (faults, sheds, retries), or when the seeded deterministic
//! sampler elects it as a baseline exemplar. Because trace ids come
//! from the seeded id stream and the sampler hashes the trace id, the
//! same seeded run retains the same trace ids every time.

use dais_util::rng::SplitMix64;
use dais_util::sync::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::render::TraceSink;

/// The on-wire identity of a span: enough for the receiving side to
/// join the sender's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    pub trace_id: u64,
    pub span_id: u64,
}

const URI_PREFIX: &str = "urn:dais:trace:";

impl TraceContext {
    /// The wire form: `urn:dais:trace:<16 hex>:<16 hex>`.
    pub fn encode(&self) -> String {
        format!("{URI_PREFIX}{:016x}:{:016x}", self.trace_id, self.span_id)
    }

    /// Parse the wire form back; `None` for anything else (an untraced
    /// or tampered message id joins no trace).
    pub fn decode(uri: &str) -> Option<TraceContext> {
        let rest = uri.strip_prefix(URI_PREFIX)?;
        let (trace, span) = rest.split_once(':')?;
        if trace.len() != 16 || span.len() != 16 {
            return None;
        }
        Some(TraceContext {
            trace_id: u64::from_str_radix(trace, 16).ok()?,
            span_id: u64::from_str_radix(span, 16).ok()?,
        })
    }
}

/// A finished span, as stored in the sink.
#[derive(Debug, Clone)]
pub struct Span {
    /// Start-order sequence number — the deterministic sort key.
    pub seq: u64,
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_id: Option<u64>,
    /// One of the [`crate::names::span_names`] inventory entries.
    pub name: &'static str,
    /// Attributes in insertion order.
    pub attrs: Vec<(&'static str, String)>,
    /// Wall-clock duration; real but nondeterministic, so the text
    /// renderer elides it.
    pub duration_ns: u64,
}

/// When to keep a finished trace under tail-based retention.
#[derive(Debug, Clone, Copy)]
pub struct TailPolicy {
    /// Keep the trace when a top-level span (one whose parent is not in
    /// the sink — the local root, or the first span joined from the
    /// wire) ran at least this long.
    pub latency_threshold_ns: u64,
    /// Keep the trace when any span carries an `outcome` attribute
    /// other than `ok` — faults, sheds, retried attempts.
    pub keep_outcomes: bool,
    /// Deterministic baseline sampling: keep roughly this many traces
    /// per million, elected by hashing the trace id with the seed, so
    /// the healthy fast path stays represented in the sink.
    pub sample_per_million: u32,
}

impl Default for TailPolicy {
    fn default() -> Self {
        // Keep failures and a 1-in-1000 healthy baseline; the latency
        // threshold is service-specific, so callers set it explicitly.
        TailPolicy {
            latency_threshold_ns: u64::MAX,
            keep_outcomes: true,
            sample_per_million: 1_000,
        }
    }
}

#[derive(Clone, Copy)]
struct TailConfig {
    policy: TailPolicy,
    salt: u64,
}

impl TailConfig {
    /// The sampler: a pure hash of (trace id, seed), so retention is a
    /// property of the trace, not of evaluation order.
    fn sampled(&self, trace_id: u64) -> bool {
        if self.policy.sample_per_million == 0 {
            return false;
        }
        let hash = SplitMix64::new(trace_id ^ self.salt).next_u64();
        hash % 1_000_000 < self.policy.sample_per_million as u64
    }
}

struct TracerInner {
    enabled: AtomicBool,
    seq: AtomicU64,
    ids: Mutex<SplitMix64>,
    finished: Mutex<Vec<Span>>,
    tail: Mutex<Option<TailConfig>>,
}

impl Default for TracerInner {
    fn default() -> Self {
        TracerInner {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            ids: Mutex::new(SplitMix64::new(0)),
            finished: Mutex::new(Vec::new()),
            tail: Mutex::new(None),
        }
    }
}

/// Records spans into an in-memory sink. Cheap to clone (shared state);
/// disabled by default.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Is tracing on? One relaxed load — the cost a disabled site pays.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn tracing on, reseeding the id stream and clearing the sink so
    /// a run is reproducible from `seed`. Retention is keep-everything.
    pub fn enable(&self, seed: u64) {
        *self.inner.tail.lock() = None;
        *self.inner.ids.lock() = SplitMix64::new(seed);
        self.inner.seq.store(0, Ordering::Relaxed);
        self.inner.finished.lock().clear();
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn tracing on with tail-based retention: spans record exactly
    /// as under [`enable`](Tracer::enable), but [`sink`](Tracer::sink)
    /// and [`take`](Tracer::take) keep only the traces `policy` elects —
    /// slow, failed, or sampled. Same seed, same workload ⇒ same
    /// retained trace ids.
    pub fn enable_tailed(&self, seed: u64, policy: TailPolicy) {
        self.enable(seed);
        let salt = SplitMix64::new(seed).next_u64();
        *self.inner.tail.lock() = Some(TailConfig { policy, salt });
    }

    /// Turn tracing off. Already-recorded spans stay in the sink.
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Open a span: a child of `parent` when given, otherwise the root
    /// of a fresh trace. Inert when tracing is disabled.
    pub fn span(&self, name: &'static str, parent: Option<TraceContext>) -> SpanHandle {
        if !self.enabled() {
            return SpanHandle { live: None };
        }
        let (trace_id, span_id) = {
            let mut ids = self.inner.ids.lock();
            match parent {
                Some(p) => (p.trace_id, ids.next_u64()),
                None => (ids.next_u64(), ids.next_u64()),
            }
        };
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        SpanHandle {
            live: Some(LiveSpan {
                tracer: self.clone(),
                span: Span {
                    seq,
                    trace_id,
                    span_id,
                    parent_id: parent.map(|p| p.span_id),
                    name,
                    attrs: Vec::new(),
                    duration_ns: 0,
                },
                started: Instant::now(),
            }),
        }
    }

    /// Open a span only if there is a parent to join — the propagation
    /// sites use this so a message that carried no (or a mangled) trace
    /// context produces no orphan root.
    pub fn child_span(&self, name: &'static str, parent: Option<TraceContext>) -> SpanHandle {
        match parent {
            Some(_) => self.span(name, parent),
            None => SpanHandle { live: None },
        }
    }

    /// A copy of the finished spans, sorted by start order (tail-
    /// filtered when retention is active).
    pub fn sink(&self) -> TraceSink {
        let mut spans = self.inner.finished.lock().clone();
        spans.sort_by_key(|s| s.seq);
        self.tail_filter(spans)
    }

    /// Drain the finished spans, sorted by start order (tail-filtered
    /// when retention is active; discarded traces are gone for good).
    pub fn take(&self) -> TraceSink {
        let mut spans = std::mem::take(&mut *self.inner.finished.lock());
        spans.sort_by_key(|s| s.seq);
        self.tail_filter(spans)
    }

    /// Apply tail retention to a complete batch. The decision runs over
    /// whole traces: by draining after the workload quiesces, every
    /// span of a trace is present, so "top-level span" and "any span's
    /// outcome" are well defined even for trees whose root lives on a
    /// remote bus.
    fn tail_filter(&self, spans: Vec<Span>) -> TraceSink {
        let tail = *self.inner.tail.lock();
        let Some(tail) = tail else {
            return TraceSink { spans };
        };
        let known: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
        let mut keep: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for s in &spans {
            if keep.contains(&s.trace_id) {
                continue;
            }
            let top_level = s.parent_id.map(|p| !known.contains(&p)).unwrap_or(true);
            let slow = top_level && s.duration_ns >= tail.policy.latency_threshold_ns;
            let bad_outcome = tail.policy.keep_outcomes
                && s.attrs.iter().any(|(k, v)| *k == "outcome" && v != "ok");
            if slow || bad_outcome || tail.sampled(s.trace_id) {
                keep.insert(s.trace_id);
            }
        }
        TraceSink { spans: spans.into_iter().filter(|s| keep.contains(&s.trace_id)).collect() }
    }

    fn record(&self, span: Span) {
        self.inner.finished.lock().push(span);
    }
}

struct LiveSpan {
    tracer: Tracer,
    span: Span,
    started: Instant,
}

/// A span being recorded — or nothing at all, when tracing is off. The
/// span is finished (duration stamped, pushed to the sink) on drop, so
/// early returns record automatically.
pub struct SpanHandle {
    live: Option<LiveSpan>,
}

impl SpanHandle {
    /// The no-op handle; what every instrumentation site holds when
    /// tracing is disabled.
    pub fn inert() -> SpanHandle {
        SpanHandle { live: None }
    }

    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }

    /// This span's wire context, for propagation and for parenting
    /// children. `None` when inert.
    pub fn ctx(&self) -> Option<TraceContext> {
        self.live
            .as_ref()
            .map(|l| TraceContext { trace_id: l.span.trace_id, span_id: l.span.span_id })
    }

    /// Attach an attribute. The value is only formatted when the span is
    /// live, so a disabled site pays nothing.
    pub fn attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(live) = self.live.as_mut() {
            live.span.attrs.push((key, value.to_string()));
        }
    }

    /// Finish now instead of at end of scope.
    pub fn finish(self) {}
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        if let Some(mut live) = self.live.take() {
            live.span.duration_ns = live.started.elapsed().as_nanos() as u64;
            let tracer = live.tracer.clone();
            tracer.record(live.span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::span_names;

    #[test]
    fn context_round_trips_through_the_uri_form() {
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF, span_id: 42 };
        let uri = ctx.encode();
        assert_eq!(uri, "urn:dais:trace:00000000deadbeef:000000000000002a");
        assert_eq!(TraceContext::decode(&uri), Some(ctx));
    }

    #[test]
    fn mangled_contexts_do_not_decode() {
        for bad in [
            "",
            "urn:dais:trace:zz",
            "urn:dais:trace:00000000deadbeef",
            "urn:dais:trace:00000000deadbeef:2a",
            "urn:other:00000000deadbeef:000000000000002a",
            "urn:dais:trace:00000000deadbeeX:000000000000002a",
        ] {
            assert_eq!(TraceContext::decode(bad), None, "{bad:?} decoded");
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        assert!(!t.enabled());
        let mut s = t.span(span_names::CLIENT_CALL, None);
        assert!(!s.is_recording());
        assert_eq!(s.ctx(), None);
        s.attr("ignored", 1);
        drop(s);
        assert!(t.sink().spans.is_empty());
    }

    #[test]
    fn spans_nest_and_record_in_start_order() {
        let t = Tracer::new();
        t.enable(7);
        let root = t.span(span_names::CLIENT_CALL, None);
        let child = t.span(span_names::BUS_CALL, root.ctx());
        let grandchild = t.child_span(span_names::BUS_REQUEST, child.ctx());
        // Finish out of start order on purpose.
        drop(child);
        drop(grandchild);
        drop(root);
        let sink = t.take();
        let names: Vec<&str> = sink.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["client.call", "bus.call", "bus.request"]);
        assert!(sink.spans.iter().all(|s| s.trace_id == sink.spans[0].trace_id));
        assert_eq!(sink.spans[1].parent_id, Some(sink.spans[0].span_id));
        assert_eq!(sink.spans[2].parent_id, Some(sink.spans[1].span_id));
    }

    #[test]
    fn child_span_without_parent_is_inert() {
        let t = Tracer::new();
        t.enable(7);
        let orphan = t.child_span(span_names::BUS_DISPATCH, None);
        assert!(!orphan.is_recording());
        drop(orphan);
        assert!(t.sink().spans.is_empty());
    }

    #[test]
    fn tail_retention_keeps_failed_and_sampled_traces_only() {
        let t = Tracer::new();
        t.enable_tailed(
            0xBEEF,
            TailPolicy {
                latency_threshold_ns: u64::MAX,
                keep_outcomes: true,
                sample_per_million: 0,
            },
        );
        // A healthy trace: dropped at drain time.
        let mut ok = t.span(span_names::CLIENT_CALL, None);
        ok.attr("outcome", "ok");
        drop(ok);
        // A faulted trace: retained.
        let mut bad = t.span(span_names::CLIENT_CALL, None);
        bad.attr("outcome", "fault");
        let bad_trace = bad.ctx().unwrap().trace_id;
        let _child = t.span(span_names::BUS_CALL, bad.ctx());
        drop(_child);
        drop(bad);
        let sink = t.take();
        assert_eq!(sink.trace_ids().into_iter().collect::<Vec<_>>(), [bad_trace]);
        assert_eq!(sink.len(), 2, "the whole retained trace survives, children included");
    }

    #[test]
    fn tail_latency_threshold_keeps_slow_traces() {
        let t = Tracer::new();
        t.enable_tailed(
            9,
            TailPolicy { latency_threshold_ns: 0, keep_outcomes: false, sample_per_million: 0 },
        );
        // Threshold 0: every top-level span qualifies as slow.
        let root = t.span(span_names::CLIENT_CALL, None);
        drop(root);
        assert_eq!(t.take().len(), 1);

        t.enable_tailed(
            9,
            TailPolicy {
                latency_threshold_ns: u64::MAX,
                keep_outcomes: false,
                sample_per_million: 0,
            },
        );
        let root = t.span(span_names::CLIENT_CALL, None);
        drop(root);
        assert!(t.take().is_empty(), "nothing is that slow");
    }

    #[test]
    fn tail_sampler_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let t = Tracer::new();
            t.enable_tailed(
                seed,
                TailPolicy {
                    latency_threshold_ns: u64::MAX,
                    keep_outcomes: false,
                    sample_per_million: 200_000, // 20 % of traces
                },
            );
            for _ in 0..64 {
                let root = t.span(span_names::CLIENT_CALL, None);
                drop(root);
            }
            t.take().trace_ids()
        };
        let kept = run(0x5EED);
        assert_eq!(kept, run(0x5EED), "same seed, same retained set");
        assert!(!kept.is_empty(), "a 20 % sampler keeps something out of 64");
        assert!(kept.len() < 64, "and drops something");
    }

    #[test]
    fn same_seed_reproduces_the_id_stream() {
        let run = |seed: u64| {
            let t = Tracer::new();
            t.enable(seed);
            let root = t.span(span_names::CLIENT_CALL, None);
            let child = t.span(span_names::BUS_CALL, root.ctx());
            drop(child);
            drop(root);
            t.take().spans.iter().map(|s| (s.trace_id, s.span_id)).collect::<Vec<_>>()
        };
        assert_eq!(run(0xA), run(0xA));
        assert_ne!(run(0xA), run(0xB));
    }
}
