//! Fixed log-bucketed latency histograms.
//!
//! Bucket `i` covers durations with `floor(log2(ns)) == i` — powers of
//! two from 1 ns up, with 0 ns folded into bucket 0 and everything past
//! the last bucket clamped into it. Recording is two-to-three relaxed
//! `fetch_add`s: no locks, no allocation, safe on the wire hot path even
//! with tracing disabled. Snapshots are plain arrays — mergeable across
//! endpoints or buses, with percentile estimation by bucket upper bound
//! (an estimate conservative by at most 2×, the bucket width).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: covers 1 ns to ~550 s before clamping.
pub const BUCKET_COUNT: usize = 40;

/// Lower bound (inclusive, ns) of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Upper bound (inclusive, ns) of bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    if i >= BUCKET_COUNT - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

fn bucket_index(nanos: u64) -> usize {
    ((63 - (nanos | 1).leading_zeros()) as usize).min(BUCKET_COUNT - 1)
}

/// A lock-free latency histogram.
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation (nanoseconds).
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter in place (existing handles stay valid).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A plain-data copy of a [`Histogram`]; mergeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKET_COUNT],
    pub count: u64,
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKET_COUNT], count: 0, sum: 0 }
    }
}

impl HistogramSnapshot {
    /// Fold `other` in; equivalent to having recorded both streams into
    /// one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The estimated `p`-quantile (ns), reported as the upper bound of
    /// the bucket holding the `ceil(p·count)`-th observation. 0 for an
    /// empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKET_COUNT - 1)
    }

    /// Arithmetic mean (ns); 0 for an empty histogram.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// `(lower_ns, upper_ns, count)` for every non-empty bucket.
    pub fn non_empty(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_lower(i), bucket_upper(i), *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_their_log2_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        for i in 0..BUCKET_COUNT {
            assert!(bucket_lower(i) <= bucket_upper(i));
        }
    }

    #[test]
    fn record_snapshot_reset() {
        let h = Histogram::new();
        h.record(100);
        h.record(100);
        h.record(5_000);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 5_200);
        assert_eq!(s.buckets[bucket_index(100)], 2);
        assert_eq!(s.buckets[bucket_index(5_000)], 1);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn percentile_brackets_the_observations() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        // p50 covers the 3rd of 5 observations (30 ns → bucket [16,31]).
        assert_eq!(s.percentile(0.5), 31);
        // p100 brackets the max.
        assert!(s.percentile(1.0) >= 1_000_000);
        assert!(s.percentile(1.0) <= 2 * 1_000_000);
        assert_eq!(HistogramSnapshot::default().percentile(0.99), 0);
    }
}
