//! # dais-obs
//!
//! The observability fabric: correlated tracing, a flight-recorder
//! event journal, latency metrics, and rolling-window SLOs for the SOAP
//! bus, with no dependencies beyond `dais-util`.
//!
//! Five pieces, deliberately small:
//!
//! - [`span`] — a trace-context model ([`TraceContext`]) that travels on
//!   the wire inside WS-Addressing `MessageID`/`RelatesTo` headers, and a
//!   per-bus [`Tracer`] that records [`Span`]s into an in-memory sink.
//!   Tracing is **off by default**: a disabled tracer costs one relaxed
//!   atomic load per instrumentation site and allocates nothing, so the
//!   wire bytes and the allocation ratchet of the fast lane are
//!   untouched. [`Tracer::enable_tailed`] turns on tail-based retention:
//!   only slow, failed, or deterministically sampled traces survive the
//!   sink drain.
//! - [`journal`] — the flight recorder: per-thread ring buffers of
//!   fixed-size request-lifecycle [`journal::Event`]s (admission,
//!   queueing, dispatch, wire legs, retries, sheds, faults), carrying
//!   the same trace/span ids as the spans so a retained trace joins its
//!   journal slice. Same cost discipline as the tracer: disabled, one
//!   relaxed atomic load per site.
//! - [`hist`] — fixed log-bucketed latency [`Histogram`]s, lock-free via
//!   atomics, with mergeable [`HistogramSnapshot`]s and percentile
//!   estimation. These are **always on**: recording is a couple of
//!   relaxed `fetch_add`s.
//! - [`slo`] — rolling-window (1 s/10 s/60 s) service-level objectives
//!   per metrics key: p99 latency, error rate, shed rate, and burn-rate
//!   alerts, computed from periodic cumulative samples of the
//!   histograms and outcome counters.
//! - [`render`] — a deterministic text renderer (ids normalised to
//!   per-trace ordinals, durations elided) for experiment output and
//!   golden assertions, plus a raw JSON renderer for machine use.
//!
//! Span names come from the central inventory in [`names::span_names`]
//! and journal event names from [`names::event_names`]; the `dais-check`
//! lints `span-name-literal` and `event-name-literal` reject ad-hoc
//! literals at the call sites.

pub mod hist;
pub mod journal;
pub mod metrics;
pub mod names;
pub mod render;
pub mod slo;
pub mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use journal::{Journal, JournalSink};
pub use metrics::Metrics;
pub use render::TraceSink;
pub use slo::{SloEngine, SloObjective, SloReport, SloSample};
pub use span::{Span, SpanHandle, TailPolicy, TraceContext, Tracer};

/// The per-bus observability handle: one tracer, one flight-recorder
/// journal, one metrics registry, one SLO engine. Cheap to clone (every
/// half is shared).
#[derive(Clone, Default)]
pub struct Obs {
    pub tracer: Tracer,
    pub journal: Journal,
    pub metrics: Metrics,
    pub slo: SloEngine,
}
