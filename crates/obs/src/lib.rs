//! # dais-obs
//!
//! The observability fabric: correlated tracing and latency metrics for
//! the SOAP bus, with no dependencies beyond `dais-util`.
//!
//! Three pieces, deliberately small:
//!
//! - [`span`] — a trace-context model ([`TraceContext`]) that travels on
//!   the wire inside WS-Addressing `MessageID`/`RelatesTo` headers, and a
//!   per-bus [`Tracer`] that records [`Span`]s into an in-memory sink.
//!   Tracing is **off by default**: a disabled tracer costs one relaxed
//!   atomic load per instrumentation site and allocates nothing, so the
//!   wire bytes and the allocation ratchet of the fast lane are
//!   untouched.
//! - [`hist`] — fixed log-bucketed latency [`Histogram`]s, lock-free via
//!   atomics, with mergeable [`HistogramSnapshot`]s and percentile
//!   estimation. These are **always on**: recording is a couple of
//!   relaxed `fetch_add`s.
//! - [`render`] — a deterministic text renderer (ids normalised to
//!   per-trace ordinals, durations elided) for experiment output and
//!   golden assertions, plus a raw JSON renderer for machine use.
//!
//! Span names come from the central inventory in [`names::span_names`];
//! the `dais-check` lint `span-name-literal` rejects ad-hoc literals at
//! span-opening call sites.

pub mod hist;
pub mod metrics;
pub mod names;
pub mod render;
pub mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::Metrics;
pub use render::TraceSink;
pub use span::{Span, SpanHandle, TraceContext, Tracer};

/// The per-bus observability handle: one tracer, one metrics registry.
/// Cheap to clone (both halves are shared).
#[derive(Clone, Default)]
pub struct Obs {
    pub tracer: Tracer,
    pub metrics: Metrics,
}
