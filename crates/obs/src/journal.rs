//! The flight-recorder event journal: per-thread ring buffers of
//! fixed-size request-lifecycle events.
//!
//! Where spans answer "what did *this* request's tree look like", the
//! journal answers "what did the *machine* do, in order" — admission,
//! queueing, dispatch, wire writes and reads, retries, sheds, faults —
//! without the per-request allocation a span tree costs. Every record is
//! a fixed-size [`Event`]: a monotonic sequence number, a name from the
//! [`crate::names::event_names`] inventory, the WS-Addressing trace/span
//! ids in force at the emission site (zero when untraced), and one
//! event-specific `u64` argument. Because events carry the same ids the
//! tracer writes into `wsa:MessageID`, a tail-retained trace joins its
//! journal slice by trace id — see [`JournalSink::for_trace`].
//!
//! # Cost discipline
//!
//! The journal is **off by default** and follows the tracer's rule: a
//! disabled emission site costs one relaxed atomic load and allocates
//! nothing (`tests/alloc_count.rs` pins the echo round trip with the
//! journal compiled in). Enabled, each thread writes into its own ring,
//! lazily registered on first emission: the per-thread ring is reached
//! through a thread-local cache and guarded by a mutex that only the
//! owning thread and the drain path ever touch, so the hot path never
//! contends. Rings are bounded — when full, the oldest events are
//! overwritten and counted in [`JournalSink::dropped`], so a runaway
//! workload degrades to "recent history only", never to unbounded
//! memory.
//!
//! # Determinism
//!
//! [`JournalSink::render_text`] is deterministic for a serial seeded
//! workload: events sort by sequence number, trace and span ids are
//! replaced by first-appearance ordinals (like the trace renderer), and
//! timing-valued arguments are elided per
//! [`crate::names::event_names::arg_is_timing`].

use dais_util::sync::Mutex;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use crate::names::event_names;
use crate::span::TraceContext;

/// Default per-thread ring capacity (events, not bytes).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One fixed-size journal record. No heap: the name is a `&'static str`
/// from the inventory, everything else is numeric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Emission-order sequence number — the deterministic sort key.
    pub seq: u64,
    /// One of the [`crate::names::event_names`] inventory entries.
    pub name: &'static str,
    /// Trace id in force at the emission site; 0 when untraced.
    pub trace_id: u64,
    /// Span id in force at the emission site; 0 when untraced.
    pub span_id: u64,
    /// Event-specific argument; meaning fixed per name
    /// ([`crate::names::event_names::arg_label`]).
    pub arg: u64,
}

struct RingBuf {
    slots: Vec<Event>,
    next: usize,
    dropped: u64,
}

/// One thread's ring. Only the owning thread pushes; the drain path
/// reads under the same (never-contended-in-steady-state) lock.
struct Ring {
    buf: Mutex<RingBuf>,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            buf: Mutex::new(RingBuf { slots: Vec::with_capacity(capacity), next: 0, dropped: 0 }),
        }
    }

    fn push(&self, event: Event, capacity: usize) {
        let mut buf = self.buf.lock();
        if buf.slots.len() < capacity {
            buf.slots.push(event);
        } else {
            let i = buf.next;
            buf.slots[i] = event;
            buf.dropped += 1;
        }
        buf.next = (buf.next + 1) % capacity.max(1);
    }

    fn clear(&self) {
        let mut buf = self.buf.lock();
        buf.slots.clear();
        buf.next = 0;
        buf.dropped = 0;
    }
}

struct JournalInner {
    /// Distinguishes journals in the per-thread ring cache (several
    /// buses — several journals — can live in one process).
    id: u64,
    enabled: AtomicBool,
    seq: AtomicU64,
    capacity: AtomicUsize,
    rings: Mutex<Vec<Arc<Ring>>>,
}

static NEXT_JOURNAL_ID: AtomicU64 = AtomicU64::new(1);

impl Default for JournalInner {
    fn default() -> Self {
        JournalInner {
            id: NEXT_JOURNAL_ID.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            capacity: AtomicUsize::new(DEFAULT_RING_CAPACITY),
            rings: Mutex::new(Vec::new()),
        }
    }
}

thread_local! {
    /// This thread's rings, one per journal it has emitted into. Weak:
    /// the registry owns the ring, so dropping the journal frees it.
    static THREAD_RINGS: RefCell<Vec<(u64, Weak<Ring>)>> = const { RefCell::new(Vec::new()) };
}

/// The per-bus flight recorder. Cheap to clone (shared state); disabled
/// by default.
#[derive(Clone, Default)]
pub struct Journal {
    inner: Arc<JournalInner>,
}

impl Journal {
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Is recording on? One relaxed load — the cost a disabled site
    /// pays.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on with the default per-thread ring capacity,
    /// clearing previous history so a run is reproducible.
    pub fn enable(&self) {
        self.enable_with_capacity(DEFAULT_RING_CAPACITY);
    }

    /// Turn recording on with an explicit per-thread ring capacity.
    pub fn enable_with_capacity(&self, capacity: usize) {
        let rings = self.inner.rings.lock();
        self.inner.capacity.store(capacity.max(1), Ordering::Relaxed);
        self.inner.seq.store(0, Ordering::Relaxed);
        for ring in rings.iter() {
            ring.clear();
        }
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn recording off. Already-recorded events stay in the rings.
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Record one event. A disabled journal returns after one relaxed
    /// atomic load; an enabled one pushes a fixed-size record into the
    /// calling thread's ring (allocating only the first time a thread
    /// meets this journal).
    pub fn event(&self, name: &'static str, trace_id: u64, span_id: u64, arg: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let event = Event {
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            name,
            trace_id,
            span_id,
            arg,
        };
        let capacity = self.inner.capacity.load(Ordering::Relaxed);
        THREAD_RINGS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, weak)) = cache.iter().find(|(id, _)| *id == self.inner.id) {
                if let Some(ring) = weak.upgrade() {
                    ring.push(event, capacity);
                    return;
                }
            }
            // First emission from this thread into this journal: build
            // and register a ring, then cache it (replacing any stale
            // entry left by a dropped journal with the same slot).
            let ring = Arc::new(Ring::new(capacity));
            ring.push(event, capacity);
            self.inner.rings.lock().push(Arc::clone(&ring));
            cache.retain(|(id, weak)| *id != self.inner.id && weak.strong_count() > 0);
            cache.push((self.inner.id, Arc::downgrade(&ring)));
        });
    }

    /// Record one event under an optional trace context (the common
    /// call shape next to a span site).
    pub fn event_ctx(&self, name: &'static str, ctx: Option<TraceContext>, arg: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let (trace_id, span_id) = match ctx {
            Some(c) => (c.trace_id, c.span_id),
            None => (0, 0),
        };
        self.event(name, trace_id, span_id, arg);
    }

    fn collect(&self, drain: bool) -> JournalSink {
        let rings = self.inner.rings.lock();
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for ring in rings.iter() {
            let mut buf = ring.buf.lock();
            dropped += buf.dropped;
            if drain {
                events.append(&mut buf.slots);
                buf.next = 0;
                buf.dropped = 0;
            } else {
                events.extend_from_slice(&buf.slots);
            }
        }
        events.sort_by_key(|e| e.seq);
        JournalSink { events, dropped }
    }

    /// A copy of the recorded events, in emission order.
    pub fn sink(&self) -> JournalSink {
        self.collect(false)
    }

    /// Drain the recorded events, in emission order.
    pub fn take(&self) -> JournalSink {
        self.collect(true)
    }
}

/// A batch of journal events, sorted by sequence number.
#[derive(Debug, Clone, Default)]
pub struct JournalSink {
    pub events: Vec<Event>,
    /// Events overwritten by ring wrap-around before this drain.
    pub dropped: u64,
}

impl JournalSink {
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events with this inventory name, in emission order.
    pub fn events_named(&self, name: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.name == name).collect()
    }

    /// This trace's journal slice: every event emitted under its id, in
    /// emission order. The join key is the same trace id the tracer
    /// writes into `wsa:MessageID`, so a tail-retained trace looks up
    /// its flight-recorder history with its own id.
    pub fn for_trace(&self, trace_id: u64) -> Vec<&Event> {
        self.events.iter().filter(|e| e.trace_id == trace_id).collect()
    }

    /// The distinct non-zero trace ids that appear in the journal.
    pub fn trace_ids(&self) -> BTreeSet<u64> {
        self.events.iter().map(|e| e.trace_id).filter(|id| *id != 0).collect()
    }

    /// Deterministic text rendering: one line per event in emission
    /// order, ids normalised to first-appearance ordinals (`t0`/`s3`,
    /// `-` when untraced), timing arguments elided.
    pub fn render_text(&self) -> String {
        let mut traces: Vec<u64> = Vec::new();
        let mut spans: Vec<u64> = Vec::new();
        let mut out = String::new();
        for e in &self.events {
            let trace = ordinal(&mut traces, e.trace_id, 't');
            let span = ordinal(&mut spans, e.span_id, 's');
            let label = event_names::arg_label(e.name);
            let value = if event_names::arg_is_timing(e.name) {
                "_".to_string()
            } else {
                e.arg.to_string()
            };
            out.push_str(&format!("{} {trace} {span} {label}={value}\n", e.name));
        }
        out
    }

    /// Raw JSON array, one object per event in emission order.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"seq\": {}, \"name\": \"{}\", \"trace\": \"{:016x}\", \
                 \"span\": \"{:016x}\", \"{}\": {}}}",
                e.seq,
                e.name,
                e.trace_id,
                e.span_id,
                event_names::arg_label(e.name),
                e.arg
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

fn ordinal(seen: &mut Vec<u64>, id: u64, prefix: char) -> String {
    if id == 0 {
        return "-".to_string();
    }
    let idx = match seen.iter().position(|s| *s == id) {
        Some(i) => i,
        None => {
            seen.push(id);
            seen.len() - 1
        }
    };
    format!("{prefix}{idx}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::event_names;

    #[test]
    fn disabled_journal_records_nothing() {
        let j = Journal::new();
        assert!(!j.enabled());
        j.event(event_names::REQ_ADMIT, 1, 2, 0);
        j.event_ctx(event_names::REQ_FAULT, None, 3);
        assert!(j.sink().is_empty());
    }

    #[test]
    fn events_drain_in_emission_order_across_threads() {
        let j = Journal::new();
        j.enable();
        j.event(event_names::REQ_ADMIT, 7, 1, 0);
        let j2 = j.clone();
        std::thread::spawn(move || {
            j2.event(event_names::QUEUE_ENQUEUE, 7, 2, 1);
        })
        .join()
        .unwrap();
        j.event(event_names::REQ_DISPATCH, 7, 3, 640);
        let sink = j.take();
        let names: Vec<&str> = sink.events.iter().map(|e| e.name).collect();
        assert_eq!(names, ["req.admit", "queue.enqueue", "req.dispatch"]);
        assert_eq!(sink.events[1].arg, 1);
        assert!(j.sink().is_empty(), "take() drained every ring");
    }

    #[test]
    fn ring_wraps_and_counts_overwrites() {
        let j = Journal::new();
        j.enable_with_capacity(4);
        for i in 0..10 {
            j.event(event_names::REQ_ADMIT, 1, i, 0);
        }
        let sink = j.take();
        assert_eq!(sink.len(), 4, "ring keeps only the newest capacity events");
        assert_eq!(sink.dropped, 6);
        let seqs: Vec<u64> = sink.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9], "the survivors are the most recent");
    }

    #[test]
    fn enable_clears_previous_history() {
        let j = Journal::new();
        j.enable();
        j.event(event_names::REQ_ADMIT, 1, 1, 0);
        j.enable();
        j.event(event_names::REQ_FAULT, 2, 2, 5);
        let sink = j.take();
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events[0].name, "req.fault");
        assert_eq!(sink.events[0].seq, 0, "sequence restarts on enable");
    }

    #[test]
    fn journals_are_isolated_per_instance() {
        let a = Journal::new();
        let b = Journal::new();
        a.enable();
        b.enable();
        a.event(event_names::REQ_ADMIT, 1, 1, 0);
        b.event(event_names::QUEUE_SHED, 2, 2, 64);
        assert_eq!(a.sink().len(), 1);
        assert_eq!(b.sink().len(), 1);
        assert_eq!(b.sink().events[0].name, "queue.shed");
    }

    #[test]
    fn render_text_is_deterministic_and_elides_timing() {
        let run = || {
            let j = Journal::new();
            j.enable();
            j.event(event_names::REQ_ADMIT, 0xAAAA, 0x1, 1);
            j.event(event_names::QUEUE_DEQUEUE, 0xAAAA, 0x2, 123_456);
            j.event_ctx(event_names::WIRE_WRITE, None, 512);
            j.take().render_text()
        };
        let text = run();
        assert_eq!(
            text,
            "req.admit t0 s0 mode=1\n\
             queue.dequeue t0 s1 waitNs=_\n\
             wire.write - - bytes=512\n"
        );
        assert_eq!(text, run(), "identical runs render identical bytes");
    }

    #[test]
    fn trace_slices_join_by_trace_id() {
        let j = Journal::new();
        j.enable();
        j.event(event_names::REQ_ADMIT, 10, 1, 0);
        j.event(event_names::REQ_ADMIT, 20, 2, 0);
        j.event(event_names::REQ_FAULT, 10, 3, 4);
        let sink = j.sink();
        let slice = sink.for_trace(10);
        assert_eq!(slice.len(), 2);
        assert!(slice.iter().all(|e| e.trace_id == 10));
        assert_eq!(sink.trace_ids().len(), 2);
        let json = sink.render_json();
        assert!(json.contains("\"name\": \"req.fault\""));
        assert!(json.contains("\"cause\": 4"));
    }
}
