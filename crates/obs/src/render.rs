//! The in-memory trace sink and its renderers.
//!
//! The text renderer is deterministic by construction: spans sort by
//! start-order sequence number, trace and span ids are replaced by
//! per-sink ordinals (`t0`, `s3`), and durations are elided — so the
//! same seeded run renders the same bytes every time, which is what the
//! E13 experiment and the propagation tests pin. The JSON renderer keeps
//! the raw ids and durations for machine consumers.

use crate::span::Span;

/// A batch of finished spans (already sorted by `seq` when produced by
/// the tracer).
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    pub spans: Vec<Span>,
}

impl TraceSink {
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// All spans with this inventory name, in start order.
    pub fn spans_named(&self, name: &str) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// The first span with this name, if any.
    pub fn first(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The distinct trace ids present, in ascending id order — under
    /// tail retention, the set of traces that survived.
    pub fn trace_ids(&self) -> std::collections::BTreeSet<u64> {
        self.spans.iter().map(|s| s.trace_id).collect()
    }

    /// Deterministic tree rendering (ids normalised, durations elided).
    pub fn render_text(&self) -> String {
        let mut spans: Vec<&Span> = self.spans.iter().collect();
        spans.sort_by_key(|s| s.seq);

        // Trace ordinals in first-appearance order.
        let mut traces: Vec<u64> = Vec::new();
        for s in &spans {
            if !traces.contains(&s.trace_id) {
                traces.push(s.trace_id);
            }
        }
        let known: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();

        let mut out = String::new();
        for (t, trace_id) in traces.iter().enumerate() {
            out.push_str(&format!("trace t{t}\n"));
            let roots: Vec<&Span> = spans
                .iter()
                .filter(|s| {
                    s.trace_id == *trace_id
                        && s.parent_id.map(|p| !known.contains(&p)).unwrap_or(true)
                })
                .copied()
                .collect();
            for (i, root) in roots.iter().enumerate() {
                self.render_node(&spans, root, "", i + 1 == roots.len(), &mut out);
            }
        }
        out
    }

    fn render_node(
        &self,
        spans: &[&Span],
        node: &Span,
        prefix: &str,
        last: bool,
        out: &mut String,
    ) {
        let branch = if last { "└─ " } else { "├─ " };
        out.push_str(prefix);
        out.push_str(branch);
        out.push_str(node.name);
        for (k, v) in &node.attrs {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        let children: Vec<&Span> = spans
            .iter()
            .filter(|s| s.parent_id == Some(node.span_id) && s.trace_id == node.trace_id)
            .copied()
            .collect();
        let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        for (i, child) in children.iter().enumerate() {
            self.render_node(spans, child, &child_prefix, i + 1 == children.len(), out);
        }
    }

    /// Raw JSON array, one object per span in start order.
    pub fn render_json(&self) -> String {
        let mut spans: Vec<&Span> = self.spans.iter().collect();
        spans.sort_by_key(|s| s.seq);
        let mut out = String::from("[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"seq\": {}, \"trace\": \"{:016x}\", \"span\": \"{:016x}\", ",
                s.seq, s.trace_id, s.span_id
            ));
            match s.parent_id {
                Some(p) => out.push_str(&format!("\"parent\": \"{p:016x}\", ")),
                None => out.push_str("\"parent\": null, "),
            }
            out.push_str(&format!(
                "\"name\": \"{}\", \"duration_ns\": {}, \"attrs\": {{",
                escape_json(s.name),
                s.duration_ns
            ));
            for (j, (k, v)) in s.attrs.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": \"{}\"", escape_json(k), escape_json(v)));
            }
            out.push_str("}}");
        }
        out.push_str("\n]\n");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::span_names;
    use crate::span::Tracer;

    fn sample() -> TraceSink {
        let t = Tracer::new();
        t.enable(0x5EED);
        let mut root = t.span(span_names::CLIENT_CALL, None);
        root.attr("action", "urn:echo");
        {
            let call = t.span(span_names::BUS_CALL, root.ctx());
            let _request = t.child_span(span_names::BUS_REQUEST, call.ctx());
            let _dispatch = t.child_span(span_names::BUS_DISPATCH, call.ctx());
        }
        let mut retry = t.span(span_names::CLIENT_RETRY, root.ctx());
        retry.attr("attempt", 2);
        let _call2 = t.span(span_names::BUS_CALL, retry.ctx());
        drop(_call2);
        drop(retry);
        drop(root);
        t.take()
    }

    #[test]
    fn text_rendering_is_a_deterministic_tree() {
        let text = sample().render_text();
        assert_eq!(
            text,
            "trace t0\n\
             └─ client.call action=urn:echo\n\
             \u{20}  ├─ bus.call\n\
             \u{20}  │  ├─ bus.request\n\
             \u{20}  │  └─ bus.dispatch\n\
             \u{20}  └─ client.retry attempt=2\n\
             \u{20}     └─ bus.call\n"
        );
        // Two identically-seeded runs render identical bytes.
        assert_eq!(text, sample().render_text());
    }

    #[test]
    fn json_rendering_carries_raw_ids_and_attrs() {
        let json = sample().render_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"name\": \"client.call\""));
        assert!(json.contains("\"attrs\": {\"action\": \"urn:echo\"}"));
        assert!(json.contains("\"parent\": null"));
        assert_eq!(json.matches("\"seq\"").count(), 6);
    }

    #[test]
    fn orphans_render_as_trace_roots() {
        let t = Tracer::new();
        t.enable(1);
        let ghost_parent = crate::span::TraceContext { trace_id: 99, span_id: 12345 };
        let orphan = t.span(span_names::BUS_DISPATCH, Some(ghost_parent));
        drop(orphan);
        let text = t.take().render_text();
        assert!(text.contains("bus.dispatch"), "{text}");
    }
}
