//! The per-bus metrics registry: latency histograms keyed by endpoint
//! address and by SOAP action.
//!
//! Two separate maps so the hot path can look a histogram up by a
//! borrowed `&str` (one read lock, one hash probe, no allocation). The
//! bus additionally caches each endpoint's `Arc<Histogram>` on the
//! resolved `Endpoint`, so per-endpoint recording skips even the lookup.
//! [`Metrics::snapshot`] flattens both maps into one ordered view with
//! `endpoint:`/`action:` key prefixes for rendering.

use crate::hist::{Histogram, HistogramSnapshot};
use dais_util::sync::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Key prefix for per-endpoint histograms in [`Metrics::snapshot`].
pub const ENDPOINT_PREFIX: &str = "endpoint:";
/// Key prefix for per-action histograms in [`Metrics::snapshot`].
pub const ACTION_PREFIX: &str = "action:";
/// Key prefix for per-connection histograms in [`Metrics::snapshot`].
/// Transports record wire-level service time here (one observation per
/// frame served), keyed by connection label — kept out of span attrs so
/// trace renders stay transport-invariant.
pub const CONN_PREFIX: &str = "conn:";

#[derive(Default)]
struct MetricsInner {
    endpoints: RwLock<HashMap<String, Arc<Histogram>>>,
    actions: RwLock<HashMap<String, Arc<Histogram>>>,
    conns: RwLock<HashMap<String, Arc<Histogram>>>,
}

/// Cheap to clone (shared state); always on — recording costs a few
/// relaxed atomic adds.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

fn get_or_create(map: &RwLock<HashMap<String, Arc<Histogram>>>, key: &str) -> Arc<Histogram> {
    if let Some(h) = map.read().get(key) {
        return h.clone();
    }
    map.write().entry(key.to_string()).or_default().clone()
}

fn observe(map: &RwLock<HashMap<String, Arc<Histogram>>>, key: &str, nanos: u64) {
    if let Some(h) = map.read().get(key) {
        h.record(nanos);
        return;
    }
    get_or_create(map, key).record(nanos);
}

impl Metrics {
    /// The histogram for one endpoint address (created on first use).
    pub fn endpoint_histogram(&self, address: &str) -> Arc<Histogram> {
        get_or_create(&self.inner.endpoints, address)
    }

    /// The histogram for one action URI (created on first use).
    pub fn action_histogram(&self, action: &str) -> Arc<Histogram> {
        get_or_create(&self.inner.actions, action)
    }

    /// Record one endpoint latency observation.
    pub fn observe_endpoint(&self, address: &str, nanos: u64) {
        observe(&self.inner.endpoints, address, nanos);
    }

    /// Record one action latency observation.
    pub fn observe_action(&self, action: &str, nanos: u64) {
        observe(&self.inner.actions, action, nanos);
    }

    /// The histogram for one transport connection label (created on
    /// first use).
    pub fn connection_histogram(&self, label: &str) -> Arc<Histogram> {
        get_or_create(&self.inner.conns, label)
    }

    /// Record one per-connection service-time observation.
    pub fn observe_connection(&self, label: &str, nanos: u64) {
        observe(&self.inner.conns, label, nanos);
    }

    /// Every histogram, keyed `endpoint:<address>` / `action:<uri>` /
    /// `conn:<label>`, in deterministic order.
    pub fn snapshot(&self) -> BTreeMap<String, HistogramSnapshot> {
        let mut out = BTreeMap::new();
        for (k, h) in self.inner.endpoints.read().iter() {
            out.insert(format!("{ENDPOINT_PREFIX}{k}"), h.snapshot());
        }
        for (k, h) in self.inner.actions.read().iter() {
            out.insert(format!("{ACTION_PREFIX}{k}"), h.snapshot());
        }
        for (k, h) in self.inner.conns.read().iter() {
            out.insert(format!("{CONN_PREFIX}{k}"), h.snapshot());
        }
        out
    }

    /// Zero every histogram in place; handles held by endpoints stay
    /// valid.
    pub fn reset(&self) {
        for h in self.inner.endpoints.read().values() {
            h.reset();
        }
        for h in self.inner.actions.read().values() {
            h.reset();
        }
        for h in self.inner.conns.read().values() {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_accumulate_per_key() {
        let m = Metrics::default();
        m.observe_endpoint("bus://a", 100);
        m.observe_endpoint("bus://a", 200);
        m.observe_action("urn:x", 300);
        m.observe_connection("tcp#0", 400);
        let snap = m.snapshot();
        assert_eq!(snap["endpoint:bus://a"].count, 2);
        assert_eq!(snap["action:urn:x"].count, 1);
        assert_eq!(snap["conn:tcp#0"].count, 1);
        assert_eq!(snap.len(), 3);
    }

    #[test]
    fn connection_histograms_reset_with_the_rest() {
        let m = Metrics::default();
        m.observe_connection("tcp#1", 10);
        m.reset();
        assert_eq!(m.snapshot()["conn:tcp#1"].count, 0);
    }

    #[test]
    fn cached_handles_survive_reset() {
        let m = Metrics::default();
        let h = m.endpoint_histogram("bus://a");
        h.record(50);
        m.reset();
        assert_eq!(m.snapshot()["endpoint:bus://a"].count, 0);
        h.record(60);
        assert_eq!(m.snapshot()["endpoint:bus://a"].count, 1);
    }
}
