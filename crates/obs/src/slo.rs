//! The SLO engine: rolling-window service-level objectives computed
//! from the log₂ latency histograms, with burn-rate alerts.
//!
//! The metrics registry accumulates *cumulative* histograms and the bus
//! keeps *cumulative* fault/shed counters; this module turns periodic
//! samples of those into per-second deltas ("frames") and answers the
//! operational questions over rolling windows of 1 s, 10 s, and 60 s:
//! what is the p99, what fraction of exchanges faulted, what fraction
//! of arrivals were shed — and how fast is each error budget burning.
//!
//! # Window math
//!
//! Each [`SloEngine::ingest`] call carries a cumulative picture for one
//! key at one (integer) second. The engine subtracts the previous
//! cumulative picture to get the delta frame for that second, keeps the
//! most recent 60 frames per key, and computes a window of width `w` by
//! merging the frames with `second > latest - w`. Percentiles come from
//! the merged bucket counts exactly as for a live histogram, so a
//! window p99 has the same ±2× bucket-width guarantee.
//!
//! # Burn rate
//!
//! For an objective "error rate ≤ B" the burn rate over a window is
//! `observed_rate / B`: 1.0 means the budget is being spent exactly as
//! fast as it accrues, 10 means the budget dies in a tenth of its
//! period. The classic multi-window alert fires when both a fast and a
//! slow window burn hot — the fast window proves it is happening *now*,
//! the slow one proves it is not a blip; [`SloReport::burn_alert`]
//! implements that over the 1 s and 60 s windows.
//!
//! Everything is deterministic given the ingested samples: tests drive
//! [`SloEngine::ingest`] with explicit seconds, the runtime path
//! ([`SloEngine::observe`]) stamps samples with elapsed wall-clock
//! seconds since the engine was created.

use crate::hist::HistogramSnapshot;
use dais_util::sync::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// The rolling windows, in seconds, shortest first.
pub const WINDOWS_S: [u64; 3] = [1, 10, 60];

/// Per-key service-level objectives. One set per engine: the bus's
/// promise, not the caller's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloObjective {
    /// p99 latency promise (ns).
    pub target_p99_ns: u64,
    /// Fault budget: tolerated fraction of completed exchanges ending
    /// in an error or SOAP fault.
    pub max_error_rate: f64,
    /// Shed budget: tolerated fraction of arrivals refused by bounded
    /// admission.
    pub max_shed_rate: f64,
}

impl Default for SloObjective {
    fn default() -> Self {
        // 50 ms p99, three nines on faults, 1 % shed: loose enough for
        // CI machines, tight enough that a real regression trips it.
        SloObjective { target_p99_ns: 50_000_000, max_error_rate: 0.001, max_shed_rate: 0.01 }
    }
}

/// One cumulative observation of a key: the histogram plus the outcome
/// counters that never enter a histogram.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloSample {
    pub hist: HistogramSnapshot,
    pub faults: u64,
    pub shed: u64,
}

/// One second's delta for a key.
#[derive(Debug, Clone, Copy)]
struct Frame {
    second: u64,
    hist: HistogramSnapshot,
    faults: u64,
    shed: u64,
}

#[derive(Default)]
struct KeyState {
    last: Option<SloSample>,
    frames: VecDeque<Frame>,
}

impl KeyState {
    /// Fold a new cumulative sample in as the delta frame for `second`.
    fn ingest(&mut self, second: u64, sample: SloSample) {
        let delta = match &self.last {
            // Counters are monotonic per process; a smaller count means
            // the source was reset, so the cumulative IS the delta.
            Some(last) if sample.hist.count >= last.hist.count => {
                let mut hist = sample.hist;
                for (b, o) in hist.buckets.iter_mut().zip(last.hist.buckets.iter()) {
                    *b = b.saturating_sub(*o);
                }
                hist.count = sample.hist.count - last.hist.count;
                hist.sum = sample.hist.sum.saturating_sub(last.hist.sum);
                Frame {
                    second,
                    hist,
                    faults: sample.faults.saturating_sub(last.faults),
                    shed: sample.shed.saturating_sub(last.shed),
                }
            }
            _ => Frame { second, hist: sample.hist, faults: sample.faults, shed: sample.shed },
        };
        self.last = Some(sample);
        match self.frames.back_mut() {
            Some(back) if back.second == second => {
                back.hist.merge(&delta.hist);
                back.faults += delta.faults;
                back.shed += delta.shed;
            }
            _ => self.frames.push_back(delta),
        }
        let horizon = second.saturating_sub(WINDOWS_S[WINDOWS_S.len() - 1] - 1);
        while self.frames.front().is_some_and(|f| f.second < horizon) {
            self.frames.pop_front();
        }
    }

    fn window(&self, width_s: u64, objective: &SloObjective) -> WindowReport {
        let latest = self.frames.back().map(|f| f.second).unwrap_or(0);
        let from = latest.saturating_sub(width_s - 1);
        let mut hist = HistogramSnapshot::default();
        let mut faults = 0u64;
        let mut shed = 0u64;
        for f in self.frames.iter().filter(|f| f.second >= from) {
            hist.merge(&f.hist);
            faults += f.faults;
            shed += f.shed;
        }
        let completed = hist.count;
        let arrivals = completed + shed;
        let error_rate = if completed > 0 { faults as f64 / completed as f64 } else { 0.0 };
        let shed_rate = if arrivals > 0 { shed as f64 / arrivals as f64 } else { 0.0 };
        WindowReport {
            window_s: width_s,
            completed,
            faults,
            shed,
            p99_ns: hist.percentile(0.99),
            error_rate,
            shed_rate,
            p99_breached: completed > 0 && hist.percentile(0.99) > objective.target_p99_ns,
            error_burn: burn(error_rate, objective.max_error_rate),
            shed_burn: burn(shed_rate, objective.max_shed_rate),
        }
    }
}

/// Budget-burn multiple: observed rate over budgeted rate. A zero
/// budget burns infinitely hot the moment anything goes wrong.
fn burn(rate: f64, budget: f64) -> f64 {
    if rate == 0.0 {
        0.0
    } else if budget <= 0.0 {
        f64::INFINITY
    } else {
        rate / budget
    }
}

/// One rolling window's view of one key.
#[derive(Debug, Clone, Copy)]
pub struct WindowReport {
    pub window_s: u64,
    pub completed: u64,
    pub faults: u64,
    pub shed: u64,
    pub p99_ns: u64,
    pub error_rate: f64,
    pub shed_rate: f64,
    pub p99_breached: bool,
    pub error_burn: f64,
    pub shed_burn: f64,
}

/// Every window for one key, plus the alert verdicts.
#[derive(Debug, Clone)]
pub struct SloReport {
    pub key: String,
    pub objective: SloObjective,
    pub windows: Vec<WindowReport>,
}

impl SloReport {
    fn window(&self, width_s: u64) -> Option<&WindowReport> {
        self.windows.iter().find(|w| w.window_s == width_s)
    }

    /// The multi-window burn alert: the fast (1 s) *and* slow (60 s)
    /// windows are both burning budget faster than it accrues, for
    /// either the fault or the shed budget.
    pub fn burn_alert(&self) -> bool {
        let (Some(fast), Some(slow)) =
            (self.window(WINDOWS_S[0]), self.window(WINDOWS_S[WINDOWS_S.len() - 1]))
        else {
            return false;
        };
        (fast.error_burn >= 1.0 && slow.error_burn >= 1.0)
            || (fast.shed_burn >= 1.0 && slow.shed_burn >= 1.0)
    }

    /// Any objective violated in any window (latency included).
    pub fn breached(&self) -> bool {
        self.burn_alert() || self.windows.iter().any(|w| w.p99_breached)
    }
}

struct SloEngineInner {
    objective: Mutex<SloObjective>,
    created: Instant,
    keys: Mutex<BTreeMap<String, KeyState>>,
}

/// The per-bus SLO engine. Cheap to clone (shared state); holds one
/// objective and a 60-second frame history per key.
#[derive(Clone)]
pub struct SloEngine {
    inner: Arc<SloEngineInner>,
}

impl Default for SloEngine {
    fn default() -> Self {
        SloEngine {
            inner: Arc::new(SloEngineInner {
                objective: Mutex::new(SloObjective::default()),
                created: Instant::now(),
                keys: Mutex::new(BTreeMap::new()),
            }),
        }
    }
}

impl SloEngine {
    pub fn new(objective: SloObjective) -> SloEngine {
        let engine = SloEngine::default();
        *engine.inner.objective.lock() = objective;
        engine
    }

    pub fn objective(&self) -> SloObjective {
        *self.inner.objective.lock()
    }

    pub fn set_objective(&self, objective: SloObjective) {
        *self.inner.objective.lock() = objective;
    }

    /// Ingest a cumulative sample for `key` at an explicit second —
    /// the deterministic entry point tests and the open-loop driver
    /// use. Seconds must not decrease per key.
    pub fn ingest(&self, second: u64, key: &str, sample: SloSample) {
        let mut keys = self.inner.keys.lock();
        keys.entry(key.to_string()).or_default().ingest(second, sample);
    }

    /// Ingest a cumulative sample stamped with wall-clock seconds since
    /// the engine was created — the runtime path the monitoring
    /// document uses.
    pub fn observe(&self, key: &str, sample: SloSample) {
        let second = self.inner.created.elapsed().as_secs();
        self.ingest(second, key, sample);
    }

    /// The rolling-window report for one key, if it has any history.
    pub fn report(&self, key: &str) -> Option<SloReport> {
        let objective = self.objective();
        let keys = self.inner.keys.lock();
        let state = keys.get(key)?;
        Some(SloReport {
            key: key.to_string(),
            objective,
            windows: WINDOWS_S.iter().map(|w| state.window(*w, &objective)).collect(),
        })
    }

    /// Reports for every key with history, in key order.
    pub fn reports(&self) -> Vec<SloReport> {
        let objective = self.objective();
        let keys = self.inner.keys.lock();
        keys.iter()
            .map(|(key, state)| SloReport {
                key: key.clone(),
                objective,
                windows: WINDOWS_S.iter().map(|w| state.window(*w, &objective)).collect(),
            })
            .collect()
    }

    /// The whole engine as machine-readable JSON: the objective and one
    /// entry per key with every rolling window.
    pub fn render_json(&self) -> String {
        let objective = self.objective();
        let mut out = String::from("{\n  \"objective\": ");
        out.push_str(&format!(
            "{{\"targetP99Ns\": {}, \"maxErrorRate\": {}, \"maxShedRate\": {}}},\n",
            objective.target_p99_ns, objective.max_error_rate, objective.max_shed_rate
        ));
        out.push_str("  \"serviceLevels\": [");
        for (i, report) in self.reports().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"key\": \"{}\", \"burnAlert\": {}, \"windows\": [",
                report.key,
                report.burn_alert()
            ));
            for (j, w) in report.windows.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "\n      {{\"seconds\": {}, \"completed\": {}, \"faults\": {}, \
                     \"shed\": {}, \"p99Ns\": {}, \"errorRate\": {:.6}, \
                     \"shedRate\": {:.6}, \"errorBurn\": {:.3}, \"shedBurn\": {:.3}, \
                     \"p99Breached\": {}}}",
                    w.window_s,
                    w.completed,
                    w.faults,
                    w.shed,
                    w.p99_ns,
                    w.error_rate,
                    w.shed_rate,
                    w.error_burn,
                    w.shed_burn,
                    w.p99_breached
                ));
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample(latencies_ns: &[u64], faults: u64, shed: u64) -> SloSample {
        let h = Histogram::new();
        for l in latencies_ns {
            h.record(*l);
        }
        SloSample { hist: h.snapshot(), faults, shed }
    }

    #[test]
    fn windows_merge_the_right_frames() {
        let e = SloEngine::default();
        // Second 0: 4 fast exchanges. Second 5: 4 slow ones.
        e.ingest(0, "endpoint:bus://a", sample(&[1_000, 1_000, 1_000, 1_000], 0, 0));
        e.ingest(
            5,
            "endpoint:bus://a",
            sample(
                &[1_000, 1_000, 1_000, 1_000, 80_000_000, 80_000_000, 80_000_000, 80_000_000],
                0,
                0,
            ),
        );
        let r = e.report("endpoint:bus://a").unwrap();
        let w1 = r.window(1).unwrap();
        assert_eq!(w1.completed, 4, "1 s window sees only the latest second's delta");
        assert!(w1.p99_ns >= 80_000_000, "the latest second was slow");
        assert!(w1.p99_breached, "80 ms blows the 50 ms objective");
        let w60 = r.window(60).unwrap();
        assert_eq!(w60.completed, 8, "60 s window sees both frames");
    }

    #[test]
    fn deltas_come_from_cumulative_counters() {
        let e = SloEngine::default();
        e.ingest(0, "k", sample(&[100], 1, 2));
        // The same histogram again plus one new observation: the frame
        // for second 1 must hold exactly the new observation.
        e.ingest(1, "k", sample(&[100, 200], 1, 5));
        let r = e.report("k").unwrap();
        assert_eq!(r.window(1).unwrap().completed, 1);
        assert_eq!(r.window(1).unwrap().faults, 0);
        assert_eq!(r.window(1).unwrap().shed, 3);
        assert_eq!(r.window(60).unwrap().completed, 2);
        assert_eq!(r.window(60).unwrap().shed, 5);
    }

    #[test]
    fn counter_reset_is_treated_as_a_fresh_delta() {
        let e = SloEngine::default();
        e.ingest(0, "k", sample(&[100, 100, 100], 0, 0));
        // Source reset: smaller cumulative count than before.
        e.ingest(1, "k", sample(&[100], 0, 0));
        let r = e.report("k").unwrap();
        assert_eq!(r.window(1).unwrap().completed, 1);
        assert_eq!(r.window(60).unwrap().completed, 4);
    }

    #[test]
    fn old_frames_age_out_of_the_horizon() {
        let e = SloEngine::default();
        e.ingest(0, "k", sample(&[100], 0, 0));
        e.ingest(100, "k", sample(&[100, 200], 0, 0));
        let r = e.report("k").unwrap();
        assert_eq!(r.window(60).unwrap().completed, 1, "the second-0 frame is gone");
    }

    #[test]
    fn burn_alert_needs_fast_and_slow_windows_hot() {
        let e = SloEngine::new(SloObjective {
            target_p99_ns: u64::MAX,
            max_error_rate: 0.01,
            max_shed_rate: 0.01,
        });
        // Seconds 0..59: clean traffic. Second 59 alone is bad.
        for s in 0..59u64 {
            e.ingest(s, "k", sample(&vec![1_000; (s as usize + 1) * 10], 0, 0));
        }
        // One bad second at the end: fast window burns, slow one barely.
        e.ingest(59, "k", sample(&vec![1_000; 601], 5, 0));
        let r = e.report("k").unwrap();
        assert!(r.window(1).unwrap().error_burn >= 1.0, "fast window is hot");
        assert!(r.window(60).unwrap().error_burn < 1.0, "slow window absorbed the blip");
        assert!(!r.burn_alert(), "a blip does not page");

        // A sustained failure: every second faults at 10× budget.
        let e = SloEngine::new(SloObjective {
            target_p99_ns: u64::MAX,
            max_error_rate: 0.01,
            max_shed_rate: 0.01,
        });
        for s in 0..60u64 {
            let n = (s as usize + 1) * 10;
            e.ingest(s, "k", sample(&vec![1_000; n], n as u64 / 10, 0));
        }
        let r = e.report("k").unwrap();
        assert!(r.burn_alert(), "sustained 10× burn pages");
        assert!(r.breached());
    }

    #[test]
    fn json_rendering_is_complete_and_ordered() {
        let e = SloEngine::default();
        e.ingest(0, "endpoint:bus://b", sample(&[100], 0, 0));
        e.ingest(0, "action:urn:a", sample(&[100], 0, 0));
        let json = e.render_json();
        assert!(json.contains("\"targetP99Ns\": 50000000"));
        let a = json.find("action:urn:a").unwrap();
        let b = json.find("endpoint:bus://b").unwrap();
        assert!(a < b, "keys render in deterministic order");
        assert_eq!(json.matches("\"seconds\": 1,").count(), 2);
        assert_eq!(json.matches("\"seconds\": 60,").count(), 2);
    }
}
