//! File resource kinds: directories (externally managed) and derived
//! file sets (service managed).

use crate::store::FileStore;
use crate::WSDAIF_NS;
use dais_core::properties::ResourceManagementKind;
use dais_core::{
    AbstractName, ConfigurationDocument, ConfigurationMap, CoreProperties, DataResource,
    Sensitivity,
};
use dais_xml::{QName, XmlElement};
use std::any::Any;

/// A directory (glob scope) in a file store, exposed as a data resource.
pub struct DirectoryResource {
    properties: CoreProperties,
    store: FileStore,
    /// Paths served by this resource must match `scope` (empty = all).
    scope: String,
}

impl DirectoryResource {
    pub fn new(
        name: AbstractName,
        store: FileStore,
        scope: impl Into<String>,
    ) -> DirectoryResource {
        let scope = scope.into();
        let mut properties = CoreProperties::new(name, ResourceManagementKind::ExternallyManaged);
        properties.description = if scope.is_empty() {
            "file store root".to_string()
        } else {
            format!("file store scope '{scope}'")
        };
        properties.writeable = true;
        properties.configuration_maps.push(ConfigurationMap {
            message: QName::new(WSDAIF_NS, "wsdaif", "FileSelectFactoryRequest"),
            port_type: QName::new(WSDAIF_NS, "wsdaif", "FileSetAccessPT"),
            defaults: ConfigurationDocument {
                readable: Some(true),
                writeable: Some(false),
                sensitivity: Some(Sensitivity::Insensitive),
                ..Default::default()
            },
        });
        DirectoryResource { properties, store, scope }
    }

    pub fn store(&self) -> &FileStore {
        &self.store
    }

    /// Is `path` inside this resource's scope?
    pub fn in_scope(&self, path: &str) -> bool {
        self.scope.is_empty() || path.starts_with(&format!("{}/", self.scope)) || path == self.scope
    }

    /// Files visible through this resource matching `pattern`.
    pub fn select(&self, pattern: &str) -> Vec<(String, usize)> {
        self.store.select(pattern).into_iter().filter(|(p, _)| self.in_scope(p)).collect()
    }
}

impl DataResource for DirectoryResource {
    fn abstract_name(&self) -> &AbstractName {
        &self.properties.abstract_name
    }

    fn core_properties(&self) -> CoreProperties {
        self.properties.clone()
    }

    fn property_document(&self) -> XmlElement {
        let mut doc = self.properties.to_xml();
        let files = self.select("");
        doc.push(
            XmlElement::new(WSDAIF_NS, "wsdaif", "NumberOfFiles")
                .with_text(files.len().to_string()),
        );
        doc.push(
            XmlElement::new(WSDAIF_NS, "wsdaif", "TotalBytes")
                .with_text(files.iter().map(|(_, s)| s).sum::<usize>().to_string()),
        );
        doc.push(XmlElement::new(WSDAIF_NS, "wsdaif", "Scope").with_text(&self.scope));
        doc
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A derived, service-managed set of file references (path + size),
/// created by `FileSelectFactory` and paged with `GetFileSetMembers`.
pub struct FileSetResource {
    properties: CoreProperties,
    members: Vec<(String, usize)>,
}

impl FileSetResource {
    pub fn new(properties: CoreProperties, members: Vec<(String, usize)>) -> FileSetResource {
        FileSetResource { properties, members }
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    pub fn members(&self, start: usize, count: usize) -> &[(String, usize)] {
        let end = (start + count).min(self.members.len());
        if start >= self.members.len() {
            &[]
        } else {
            &self.members[start..end]
        }
    }
}

impl DataResource for FileSetResource {
    fn abstract_name(&self) -> &AbstractName {
        &self.properties.abstract_name
    }

    fn core_properties(&self) -> CoreProperties {
        self.properties.clone()
    }

    fn property_document(&self) -> XmlElement {
        let mut doc = self.properties.to_xml();
        doc.push(
            XmlElement::new(WSDAIF_NS, "wsdaif", "NumberOfFiles")
                .with_text(self.members.len().to_string()),
        );
        doc
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> FileStore {
        let fs = FileStore::new();
        fs.write("data/a.csv", vec![1, 2, 3]).unwrap();
        fs.write("data/b.csv", vec![4]).unwrap();
        fs.write("other/c.txt", vec![5, 6]).unwrap();
        fs
    }

    #[test]
    fn scoped_selection() {
        let root = DirectoryResource::new(AbstractName::new("urn:f:root").unwrap(), store(), "");
        assert_eq!(root.select("").len(), 3);
        let data =
            DirectoryResource::new(AbstractName::new("urn:f:data").unwrap(), store(), "data");
        assert_eq!(data.select("").len(), 2);
        assert_eq!(data.select("data/a.*").len(), 1);
        assert!(!data.in_scope("other/c.txt"));
        assert!(data.in_scope("data/a.csv"));
    }

    #[test]
    fn property_documents() {
        let root = DirectoryResource::new(AbstractName::new("urn:f:root").unwrap(), store(), "");
        let doc = root.property_document();
        assert_eq!(doc.child_text(WSDAIF_NS, "NumberOfFiles").as_deref(), Some("3"));
        assert_eq!(doc.child_text(WSDAIF_NS, "TotalBytes").as_deref(), Some("6"));
        // Core properties intact.
        assert!(doc.child(dais_xml::ns::WSDAI, "DataResourceAbstractName").is_some());
    }

    #[test]
    fn file_sets_page() {
        let members = vec![("a".to_string(), 1), ("b".to_string(), 2), ("c".to_string(), 3)];
        let props = CoreProperties::new(
            AbstractName::new("urn:f:set").unwrap(),
            ResourceManagementKind::ServiceManaged,
        );
        let set = FileSetResource::new(props, members);
        assert_eq!(set.len(), 3);
        assert_eq!(set.members(0, 2).len(), 2);
        assert_eq!(set.members(2, 5).len(), 1);
        assert_eq!(set.members(9, 1).len(), 0);
        assert_eq!(
            set.property_document().child_text(WSDAIF_NS, "NumberOfFiles").as_deref(),
            Some("3")
        );
    }
}
