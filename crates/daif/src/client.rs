//! Consumer-side typed client for WS-DAIF file services.

use crate::{actions, base64, WSDAIF_NS};
use dais_core::messages as core_messages;
use dais_core::{AbstractName, CoreClient, DaisClient};
use dais_soap::addressing::Epr;
use dais_soap::bus::Bus;
use dais_soap::client::{CallError, ServiceClient};
use dais_soap::retry::{IdempotencySet, RetryConfig, RetryPolicy};
use dais_xml::XmlElement;

/// WS-DAIF operations a consumer may safely re-send: reads, listings
/// and property documents, plus the core read set. `WriteFile` and
/// `DeleteFile` mutate the store and `FileSelectFactory` mints a new
/// derived resource per call — none of those are ever retried.
pub fn idempotent_actions() -> IdempotencySet {
    IdempotencySet::new([
        dais_core::messages::actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT,
        dais_core::messages::actions::GENERIC_QUERY,
        dais_core::messages::actions::GET_RESOURCE_LIST,
        dais_core::messages::actions::RESOLVE,
        dais_wsrf::actions::GET_RESOURCE_PROPERTY,
        dais_wsrf::actions::GET_MULTIPLE_RESOURCE_PROPERTIES,
        dais_wsrf::actions::QUERY_RESOURCE_PROPERTIES,
        actions::READ_FILE,
        actions::LIST_FILES,
        actions::GET_FILE_PROPERTY_DOCUMENT,
        actions::GET_FILE_SET_MEMBERS,
    ])
}

/// A typed consumer of WS-DAIF services. Wraps [`CoreClient`] (all the
/// WS-DAI core operations remain available through [`FileClient::core`]).
#[derive(Clone)]
pub struct FileClient {
    core: CoreClient,
}

impl FileClient {
    /// Bind to a service address on the bus.
    #[deprecated(
        since = "0.10.0",
        note = "use `FileClient::builder().bus(..).address(..)` \
                 (or `.resource(&ResourceRef)`) instead"
    )]
    pub fn new(bus: Bus, address: impl Into<String>) -> FileClient {
        FileClient::from_service(ServiceClient::new(bus, address))
    }

    /// Bind through an EPR from a factory response.
    pub fn from_epr(bus: Bus, epr: Epr) -> FileClient {
        FileClient { core: CoreClient::from_epr(bus, epr) }
    }

    /// Bind to a service reached over `transport`.
    #[deprecated(
        since = "0.10.0",
        note = "use `FileClient::builder().bus(..).transport(..)` instead"
    )]
    pub fn with_transport(
        bus: Bus,
        transport: std::sync::Arc<dyn dais_soap::Transport>,
        address: impl Into<String>,
    ) -> FileClient {
        FileClient::builder().bus(bus).transport(transport).address(address).build()
    }

    /// Layer retry over this client for the WS-DAIF read operations
    /// ([`idempotent_actions`]). Writes and deletes are never re-sent.
    /// (Thin wrapper over [`DaisClient::with_retry`].)
    pub fn with_retry(self, policy: RetryPolicy) -> FileClient {
        DaisClient::with_retry(self, policy)
    }

    /// Layer retry with a caller-assembled configuration. (Thin wrapper
    /// over [`DaisClient::with_retry_config`].)
    pub fn with_retry_config(self, config: RetryConfig) -> FileClient {
        DaisClient::with_retry_config(self, config)
    }

    /// The WS-DAI core operations.
    pub fn core(&self) -> &CoreClient {
        &self.core
    }

    fn path_request(resource: &AbstractName, local: &str, path: &str) -> XmlElement {
        core_messages::request(local, resource)
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Path").with_text(path))
    }

    fn members_of(response: &XmlElement) -> Vec<(String, u64)> {
        response
            .children_named(WSDAIF_NS, "File")
            .map(|f| {
                let size = f.attribute("size").and_then(|s| s.parse().ok()).unwrap_or(0);
                (f.text(), size)
            })
            .collect()
    }

    /// `ReadFile`: the decoded contents of one file.
    pub fn read_file(&self, resource: &AbstractName, path: &str) -> Result<Vec<u8>, CallError> {
        let response = self
            .core
            .soap()
            .request(actions::READ_FILE, Self::path_request(resource, "ReadFileRequest", path))?;
        let encoded = response
            .child_text(WSDAIF_NS, "Contents")
            .ok_or_else(|| CallError::UnexpectedResponse("no Contents in response".into()))?;
        base64::decode(&encoded).map_err(CallError::UnexpectedResponse)
    }

    /// `ReadFile` against many paths at once, keeping up to `window`
    /// requests in flight on the pipelined path; one decoded contents
    /// per path, in input order.
    pub fn read_files(
        &self,
        resource: &AbstractName,
        paths: &[&str],
        window: usize,
    ) -> Vec<Result<Vec<u8>, CallError>> {
        let payloads =
            paths.iter().map(|p| Self::path_request(resource, "ReadFileRequest", p)).collect();
        self.request_pipelined(actions::READ_FILE, payloads, window)
            .into_iter()
            .map(|result| {
                let encoded = result?.child_text(WSDAIF_NS, "Contents").ok_or_else(|| {
                    CallError::UnexpectedResponse("no Contents in response".into())
                })?;
                base64::decode(&encoded).map_err(CallError::UnexpectedResponse)
            })
            .collect()
    }

    /// `WriteFile`: store `contents` at `path`, returning the new size.
    pub fn write_file(
        &self,
        resource: &AbstractName,
        path: &str,
        contents: &[u8],
    ) -> Result<u64, CallError> {
        let req = Self::path_request(resource, "WriteFileRequest", path).with_child(
            XmlElement::new(WSDAIF_NS, "wsdaif", "Contents").with_text(base64::encode(contents)),
        );
        let response = self.core.soap().request(actions::WRITE_FILE, req)?;
        response
            .child_text(WSDAIF_NS, "Size")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| CallError::UnexpectedResponse("no Size in response".into()))
    }

    /// `DeleteFile`.
    pub fn delete_file(&self, resource: &AbstractName, path: &str) -> Result<(), CallError> {
        self.core
            .soap()
            .request(actions::DELETE_FILE, Self::path_request(resource, "DeleteFileRequest", path))
            .map(|_| ())
    }

    /// `ListFiles` matching a glob-style pattern: `(path, size)` pairs.
    pub fn list_files(
        &self,
        resource: &AbstractName,
        pattern: &str,
    ) -> Result<Vec<(String, u64)>, CallError> {
        let req = core_messages::request("ListFilesRequest", resource)
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Pattern").with_text(pattern));
        let response = self.core.soap().request(actions::LIST_FILES, req)?;
        Ok(Self::members_of(&response))
    }

    /// `GetFilePropertyDocument`: the raw property document XML.
    pub fn get_file_property_document(
        &self,
        resource: &AbstractName,
    ) -> Result<XmlElement, CallError> {
        let req = core_messages::request("GetFilePropertyDocumentRequest", resource);
        let response = self.core.soap().request(actions::GET_FILE_PROPERTY_DOCUMENT, req)?;
        response
            .child(dais_xml::ns::WSDAI, "PropertyDocument")
            .cloned()
            .ok_or_else(|| CallError::UnexpectedResponse("no PropertyDocument in response".into()))
    }

    /// `FileSelectFactory`: derive a file-set resource from a selection
    /// (the indirect access pattern) and return its EPR.
    pub fn file_select_factory(
        &self,
        resource: &AbstractName,
        pattern: &str,
    ) -> Result<Epr, CallError> {
        let req = core_messages::request("FileSelectFactoryRequest", resource)
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Pattern").with_text(pattern));
        let response = self.core.soap().request(actions::FILE_SELECT_FACTORY, req)?;
        dais_core::factory::parse_factory_response(&response).map_err(CallError::Fault)
    }

    /// `GetFileSetMembers`: one page of a derived file-set.
    pub fn get_file_set_members(
        &self,
        file_set: &AbstractName,
        start: usize,
        count: usize,
    ) -> Result<Vec<(String, u64)>, CallError> {
        let req = core_messages::request("GetFileSetMembersRequest", file_set)
            .with_child(
                XmlElement::new(WSDAIF_NS, "wsdaif", "StartPosition").with_text(start.to_string()),
            )
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Count").with_text(count.to_string()));
        let response = self.core.soap().request(actions::GET_FILE_SET_MEMBERS, req)?;
        Ok(Self::members_of(&response))
    }
}

impl DaisClient for FileClient {
    fn service(&self) -> &ServiceClient {
        self.core.service()
    }

    fn from_service(service: ServiceClient) -> FileClient {
        FileClient { core: CoreClient::from_service(service) }
    }

    fn service_mut(&mut self) -> &mut ServiceClient {
        self.core.service_mut()
    }

    fn default_idempotent_actions() -> IdempotencySet {
        idempotent_actions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FileStore;
    use crate::{FileService, FileServiceOptions};

    fn setup() -> (Bus, FileClient, AbstractName) {
        let bus = Bus::new();
        let store = FileStore::new();
        store.write("data/a.csv", b"1,2,3".to_vec()).unwrap();
        store.write("data/b.csv", b"4,5".to_vec()).unwrap();
        store.write("readme.txt", b"hello".to_vec()).unwrap();
        let svc = FileService::launch(&bus, "bus://files", store, FileServiceOptions::default());
        (bus.clone(), FileClient::builder().bus(bus).address("bus://files").build(), svc.root)
    }

    #[test]
    fn typed_read_write_delete() {
        let (_, client, root) = setup();
        assert_eq!(client.write_file(&root, "new/file.bin", &[0, 1, 2, 255]).unwrap(), 4);
        assert_eq!(client.read_file(&root, "new/file.bin").unwrap(), vec![0, 1, 2, 255]);
        client.delete_file(&root, "new/file.bin").unwrap();
        assert!(client.read_file(&root, "new/file.bin").is_err());
    }

    #[test]
    fn typed_listing_and_properties() {
        let (_, client, root) = setup();
        let files = client.list_files(&root, "data/*.csv").unwrap();
        assert_eq!(files, vec![("data/a.csv".into(), 5), ("data/b.csv".into(), 3)]);
        let doc = client.get_file_property_document(&root).unwrap();
        assert_eq!(doc.child_text(WSDAIF_NS, "NumberOfFiles").as_deref(), Some("3"));
    }

    #[test]
    fn typed_factory_and_paging() {
        let (bus, client, root) = setup();
        let epr = client.file_select_factory(&root, "data/*").unwrap();
        let set = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
        let via_epr = FileClient::from_epr(bus, epr);
        let page = via_epr.get_file_set_members(&set, 1, 5).unwrap();
        assert_eq!(page, vec![("data/b.csv".into(), 3)]);
    }

    #[test]
    fn read_files_pipelines_a_batch() {
        let (bus, client, root) = setup();
        bus.install_executor(dais_soap::executor::ExecutorConfig::new(4).seed(31));
        let results =
            client.read_files(&root, &["readme.txt", "data/a.csv", "missing.bin", "data/b.csv"], 3);
        assert_eq!(results[0].as_deref().unwrap(), b"hello");
        assert!(results[2].is_err(), "missing file fails its slot only");
        assert!(results[1].is_ok() && results[3].is_ok());
        bus.shutdown_executor();
    }

    #[test]
    fn retrying_client_reads_through_core() {
        let (_, client, root) = setup();
        let client = client.with_retry(RetryPolicy::new(3));
        // The retry layer is pass-through on a healthy service.
        assert_eq!(client.read_file(&root, "readme.txt").unwrap(), b"hello");
        let props = client.core().get_property_document(&root).unwrap();
        assert!(props.readable);
    }
}
