//! # dais-daif
//!
//! A **files realisation** of the DAIS specifications — the extension the
//! paper names as in-flight future work: "there are preliminary drafts of
//! documents that aim to extend the base DAIS interfaces to deal with
//! object databases and files" (§4.1) and "different groups are exploring
//! the development of additional realisations for object databases,
//! ontologies and files" (§6).
//!
//! The realisation follows the family's structure exactly, which is the
//! paper's main extensibility claim — a new data model plugs in by
//! extending the WS-DAI core, not by re-inventing it:
//!
//! * a *directory* is the externally managed data resource (like a
//!   database / XML collection);
//! * **FileAccess** — `ReadFile`, `WriteFile`, `DeleteFile`, `ListFiles`
//!   and `GetFilePropertyDocument`;
//! * **FileFactory** — `FileSelectFactory`: derive a service-managed
//!   *file-set* resource from a glob-style selection, returned by EPR
//!   (the indirect access pattern);
//! * **FileSetAccess** — `GetFileSetMembers` (paged) over the derived set.
//!
//! File contents travel base64-encoded in message bodies; the store is an
//! in-memory tree, standing in for a grid file system exactly as the
//! other substrates stand in for DBMSs (see DESIGN.md).

pub mod base64;
pub mod client;
pub mod resources;
pub mod service;
pub mod store;

pub use client::FileClient;
pub use resources::{DirectoryResource, FileSetResource};
pub use service::{FileService, FileServiceOptions};
pub use store::{FileStore, FileStoreError};

/// SOAP action URIs for the WS-DAIF operations.
pub mod actions {
    pub const READ_FILE: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIF/ReadFile";
    pub const WRITE_FILE: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIF/WriteFile";
    pub const DELETE_FILE: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIF/DeleteFile";
    pub const LIST_FILES: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIF/ListFiles";
    pub const GET_FILE_PROPERTY_DOCUMENT: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIF/GetFilePropertyDocument";
    pub const FILE_SELECT_FACTORY: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIF/FileSelectFactory";
    pub const GET_FILE_SET_MEMBERS: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIF/GetFileSetMembers";

    pub const ALL: &[&str] = &[
        READ_FILE,
        WRITE_FILE,
        DELETE_FILE,
        LIST_FILES,
        GET_FILE_PROPERTY_DOCUMENT,
        FILE_SELECT_FACTORY,
        GET_FILE_SET_MEMBERS,
    ];
}

/// The WS-DAIF namespace (following the family's naming pattern).
pub const WSDAIF_NS: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIF";
