//! Minimal base64 (standard alphabet, padded) for file payloads in XML.
//!
//! Implemented here rather than pulling a crate: the workspace's external
//! dependency set is deliberately small (see DESIGN.md §2) and the
//! encoder is ~60 lines.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes to standard padded base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { ALPHABET[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { ALPHABET[n as usize & 63] as char } else { '=' });
    }
    out
}

/// Decode standard padded base64 (whitespace tolerated).
pub fn decode(text: &str) -> Result<Vec<u8>, String> {
    fn value(c: u8) -> Result<u32, String> {
        match c {
            b'A'..=b'Z' => Ok(u32::from(c - b'A')),
            b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            other => Err(format!("invalid base64 character '{}'", other as char)),
        }
    }
    let cleaned: Vec<u8> = text.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !cleaned.len().is_multiple_of(4) {
        return Err("base64 length must be a multiple of 4".into());
    }
    let mut out = Vec::with_capacity(cleaned.len() / 4 * 3);
    for chunk in cleaned.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || chunk[..4 - pad].contains(&b'=') {
            return Err("malformed base64 padding".into());
        }
        let mut n = 0u32;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' { 0 } else { value(c)? };
            n |= v << (18 - 6 * i);
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_util::prop::run_cases;

    #[test]
    fn known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar"); // whitespace ok
    }

    #[test]
    fn rejects_malformed() {
        assert!(decode("abc").is_err()); // bad length
        assert!(decode("a=bc").is_err()); // interior padding
        assert!(decode("ab!c").is_err()); // bad character
        assert!(decode("====").is_err()); // too much padding
    }

    #[test]
    fn roundtrip() {
        run_cases("base64_roundtrip", 256, 0xB64, |g| {
            let data = g.vec_of(0, 199, |g| g.byte());
            assert_eq!(decode(&encode(&data)).unwrap(), data);
        });
    }
}
