//! The in-memory file store: a flat namespace of `/`-separated paths,
//! standing in for a grid file system.

use dais_util::sync::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Store errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileStoreError {
    NotFound(String),
    InvalidPath(String),
}

impl std::fmt::Display for FileStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileStoreError::NotFound(p) => write!(f, "no such file: {p}"),
            FileStoreError::InvalidPath(p) => write!(f, "invalid path: {p}"),
        }
    }
}

impl std::error::Error for FileStoreError {}

/// A thread-safe in-memory file store. Paths are `/`-separated, relative
/// (no leading slash), and sorted for deterministic listings.
#[derive(Clone, Default)]
pub struct FileStore {
    files: Arc<RwLock<BTreeMap<String, Vec<u8>>>>,
}

fn valid_path(path: &str) -> bool {
    !path.is_empty()
        && !path.starts_with('/')
        && !path.ends_with('/')
        && !path.contains("//")
        && !path.contains("..")
        && path.trim() == path
}

impl FileStore {
    pub fn new() -> FileStore {
        FileStore::default()
    }

    /// Create or overwrite a file. Returns the new size.
    pub fn write(&self, path: &str, contents: Vec<u8>) -> Result<usize, FileStoreError> {
        if !valid_path(path) {
            return Err(FileStoreError::InvalidPath(path.to_string()));
        }
        let size = contents.len();
        self.files.write().insert(path.to_string(), contents);
        Ok(size)
    }

    pub fn read(&self, path: &str) -> Result<Vec<u8>, FileStoreError> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| FileStoreError::NotFound(path.to_string()))
    }

    pub fn delete(&self, path: &str) -> Result<(), FileStoreError> {
        self.files
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| FileStoreError::NotFound(path.to_string()))
    }

    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    pub fn len(&self) -> usize {
        self.files.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.read().is_empty()
    }

    /// `(path, size)` of every file whose path matches a glob pattern
    /// (`*` = any run within a segment, `**` not supported, `?` = one
    /// character). An empty pattern lists everything.
    pub fn select(&self, pattern: &str) -> Vec<(String, usize)> {
        self.files
            .read()
            .iter()
            .filter(|(p, _)| pattern.is_empty() || glob_match(pattern, p))
            .map(|(p, c)| (p.clone(), c.len()))
            .collect()
    }
}

/// Simple glob matching: `*` matches any run of non-`/` characters,
/// `?` matches one non-`/` character; all else literal.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    fn rec(p: &[char], s: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('*') => {
                // Any run not crossing a '/'.
                let mut i = 0;
                loop {
                    if rec(&p[1..], &s[i..]) {
                        return true;
                    }
                    if i >= s.len() || s[i] == '/' {
                        return false;
                    }
                    i += 1;
                }
            }
            Some('?') => !s.is_empty() && s[0] != '/' && rec(&p[1..], &s[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&p[1..], &s[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let s: Vec<char> = path.chars().collect();
    rec(&p, &s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_delete() {
        let fs = FileStore::new();
        assert_eq!(fs.write("a/b.txt", b"hello".to_vec()).unwrap(), 5);
        assert_eq!(fs.read("a/b.txt").unwrap(), b"hello");
        assert!(fs.exists("a/b.txt"));
        fs.write("a/b.txt", b"bye".to_vec()).unwrap(); // overwrite
        assert_eq!(fs.read("a/b.txt").unwrap(), b"bye");
        fs.delete("a/b.txt").unwrap();
        assert_eq!(fs.read("a/b.txt"), Err(FileStoreError::NotFound("a/b.txt".into())));
        assert_eq!(fs.delete("a/b.txt"), Err(FileStoreError::NotFound("a/b.txt".into())));
    }

    #[test]
    fn path_validation() {
        let fs = FileStore::new();
        for bad in ["", "/abs", "trail/", "a//b", "a/../b", " pad"] {
            assert!(matches!(fs.write(bad, vec![]), Err(FileStoreError::InvalidPath(_))), "{bad}");
        }
    }

    #[test]
    fn glob_selection() {
        let fs = FileStore::new();
        for p in ["data/a.csv", "data/b.csv", "data/a.json", "logs/x.csv"] {
            fs.write(p, vec![0; 3]).unwrap();
        }
        let csvs = fs.select("data/*.csv");
        assert_eq!(csvs.len(), 2);
        assert_eq!(csvs[0].0, "data/a.csv"); // sorted
        assert_eq!(fs.select("*/a.*").len(), 2);
        assert_eq!(fs.select("data/?.csv").len(), 2);
        assert_eq!(fs.select("").len(), 4);
        // '*' does not cross '/'.
        assert_eq!(fs.select("*.csv").len(), 0);
    }

    #[test]
    fn glob_edge_cases() {
        assert!(glob_match("a*c", "abc"));
        assert!(glob_match("a*c", "ac"));
        assert!(!glob_match("a*c", "a/c"));
        assert!(glob_match("*", "abc"));
        assert!(!glob_match("*", "a/b"));
        assert!(glob_match("a/*/c", "a/b/c"));
        assert!(!glob_match("?", ""));
    }
}
