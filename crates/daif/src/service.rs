//! Service-side registration of the WS-DAIF interfaces, plus an
//! assembled single-address file data service.

use crate::actions;
use crate::base64;
use crate::resources::{DirectoryResource, FileSetResource};
use crate::store::FileStore;
use crate::WSDAIF_NS;
use dais_core::factory::{factory_response, mint_resource_epr, DerivedResourceConfig};
use dais_core::{
    register_core_ops, register_wsrf_ops, NameGenerator, ResourceRegistry, ServiceContext,
};
use dais_soap::bus::Bus;
use dais_soap::envelope::Envelope;
use dais_soap::fault::{DaisFault, Fault};
use dais_soap::service::SoapDispatcher;
use dais_wsrf::LifetimeRegistry;
use dais_xml::{QName, XmlElement};
use std::sync::Arc;

fn payload(request: &Envelope) -> Result<&XmlElement, Fault> {
    request.payload().ok_or_else(|| Fault::client("request has an empty SOAP body"))
}

fn respond(element: XmlElement) -> Result<Envelope, Fault> {
    Ok(Envelope::with_body(element))
}

fn as_directory(resource: &Arc<dyn dais_core::DataResource>) -> Result<&DirectoryResource, Fault> {
    resource.as_any().downcast_ref::<DirectoryResource>().ok_or_else(|| {
        Fault::dais(DaisFault::InvalidResourceName, "resource is not a file directory")
    })
}

fn as_file_set(resource: &Arc<dyn dais_core::DataResource>) -> Result<&FileSetResource, Fault> {
    resource
        .as_any()
        .downcast_ref::<FileSetResource>()
        .ok_or_else(|| Fault::dais(DaisFault::InvalidResourceName, "resource is not a file set"))
}

fn path_of(body: &XmlElement) -> Result<String, Fault> {
    body.child_text(WSDAIF_NS, "Path").ok_or_else(|| Fault::client("missing wsdaif:Path"))
}

/// Register the **FileAccess** interface.
pub fn register_file_access(dispatcher: &mut SoapDispatcher, ctx: Arc<ServiceContext>) {
    let c = ctx.clone();
    dispatcher.register(actions::READ_FILE, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let dir = as_directory(&resource)?;
        if !resource.core_properties().readable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not readable"));
        }
        let path = path_of(body)?;
        if !dir.in_scope(&path) {
            return Err(Fault::dais(
                DaisFault::NotAuthorized,
                "path is outside this resource's scope",
            ));
        }
        let contents = dir
            .store()
            .read(&path)
            .map_err(|e| Fault::dais(DaisFault::InvalidExpression, e.to_string()))?;
        respond(
            XmlElement::new(WSDAIF_NS, "wsdaif", "ReadFileResponse")
                .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Path").with_text(path))
                .with_child(
                    XmlElement::new(WSDAIF_NS, "wsdaif", "Contents")
                        .with_text(base64::encode(&contents)),
                ),
        )
    });

    let c = ctx.clone();
    dispatcher.register(actions::WRITE_FILE, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let dir = as_directory(&resource)?;
        if !resource.core_properties().writeable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not writeable"));
        }
        let path = path_of(body)?;
        if !dir.in_scope(&path) {
            return Err(Fault::dais(
                DaisFault::NotAuthorized,
                "path is outside this resource's scope",
            ));
        }
        let contents = body
            .child_text(WSDAIF_NS, "Contents")
            .ok_or_else(|| Fault::client("missing wsdaif:Contents"))?;
        let bytes =
            base64::decode(&contents).map_err(|e| Fault::dais(DaisFault::InvalidExpression, e))?;
        let size = dir
            .store()
            .write(&path, bytes)
            .map_err(|e| Fault::dais(DaisFault::InvalidExpression, e.to_string()))?;
        respond(
            XmlElement::new(WSDAIF_NS, "wsdaif", "WriteFileResponse").with_child(
                XmlElement::new(WSDAIF_NS, "wsdaif", "Size").with_text(size.to_string()),
            ),
        )
    });

    let c = ctx.clone();
    dispatcher.register(actions::DELETE_FILE, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let dir = as_directory(&resource)?;
        if !resource.core_properties().writeable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not writeable"));
        }
        let path = path_of(body)?;
        dir.store()
            .delete(&path)
            .map_err(|e| Fault::dais(DaisFault::InvalidExpression, e.to_string()))?;
        respond(XmlElement::new(WSDAIF_NS, "wsdaif", "DeleteFileResponse"))
    });

    let c = ctx.clone();
    dispatcher.register(actions::LIST_FILES, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let dir = as_directory(&resource)?;
        let pattern = body.child_text(WSDAIF_NS, "Pattern").unwrap_or_default();
        let mut response = XmlElement::new(WSDAIF_NS, "wsdaif", "ListFilesResponse");
        for (path, size) in dir.select(&pattern) {
            response.push(
                XmlElement::new(WSDAIF_NS, "wsdaif", "File")
                    .with_attr("size", size.to_string())
                    .with_text(path),
            );
        }
        respond(response)
    });

    let c = ctx;
    dispatcher.register(actions::GET_FILE_PROPERTY_DOCUMENT, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        as_directory(&resource)?;
        let mut response = XmlElement::new(WSDAIF_NS, "wsdaif", "GetFilePropertyDocumentResponse");
        response.push(resource.property_document());
        respond(response)
    });
}

/// Register the **FileFactory** + **FileSetAccess** interfaces.
pub fn register_file_factory(
    dispatcher: &mut SoapDispatcher,
    ctx: Arc<ServiceContext>,
    target: Arc<ServiceContext>,
    names: Arc<NameGenerator>,
) {
    let c = ctx.clone();
    dispatcher.register(actions::FILE_SELECT_FACTORY, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let dir = as_directory(&resource)?;
        let props = resource.core_properties();
        let config = DerivedResourceConfig::from_request(body)?;
        let message = QName::new(WSDAIF_NS, "wsdaif", "FileSelectFactoryRequest");
        let (_port, effective) = config.resolve_against(&props.configuration_maps, &message)?;
        let pattern = body.child_text(WSDAIF_NS, "Pattern").unwrap_or_default();
        let members = dir.select(&pattern);

        let name = names.mint("file-set");
        let derived = config.derived_properties(name.clone(), &effective);
        target.add_resource(Arc::new(FileSetResource::new(derived, members)));
        let epr = mint_resource_epr(&target.address, &name);
        respond(factory_response("FileSelectFactoryResponse", WSDAIF_NS, "wsdaif", &epr))
    });

    let c = ctx;
    dispatcher.register(actions::GET_FILE_SET_MEMBERS, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let set = as_file_set(&resource)?;
        let start = body
            .child_text(WSDAIF_NS, "StartPosition")
            .and_then(|t| t.trim().parse().ok())
            .unwrap_or(0usize);
        let count = body
            .child_text(WSDAIF_NS, "Count")
            .and_then(|t| t.trim().parse().ok())
            .unwrap_or(usize::MAX);
        let mut response = XmlElement::new(WSDAIF_NS, "wsdaif", "GetFileSetMembersResponse");
        for (path, size) in set.members(start, count) {
            response.push(
                XmlElement::new(WSDAIF_NS, "wsdaif", "File")
                    .with_attr("size", size.to_string())
                    .with_text(path.clone()),
            );
        }
        respond(response)
    });
}

/// Options for assembling a file data service.
#[derive(Default)]
pub struct FileServiceOptions {
    pub wsrf: Option<Arc<LifetimeRegistry>>,
}

/// A fully-assembled single-address WS-DAIF data service.
pub struct FileService {
    pub ctx: Arc<ServiceContext>,
    pub names: Arc<NameGenerator>,
    /// The abstract name of the root directory resource.
    pub root: dais_core::AbstractName,
    /// The abstract name of the service's monitoring resource, whose
    /// property document is the live observability view of its endpoint.
    pub monitoring: dais_core::AbstractName,
}

impl FileService {
    pub fn launch(
        bus: &Bus,
        address: &str,
        store: FileStore,
        options: FileServiceOptions,
    ) -> FileService {
        let ctx = Arc::new(ServiceContext {
            address: address.to_string(),
            registry: ResourceRegistry::new(),
            lifetime: options.wsrf,
            query_rewriter: None,
        });
        let names =
            Arc::new(NameGenerator::new(address.trim_start_matches("bus://").replace('/', "-")));
        let mut dispatcher = SoapDispatcher::new();
        register_core_ops(&mut dispatcher, ctx.clone());
        if ctx.lifetime.is_some() {
            register_wsrf_ops(&mut dispatcher, ctx.clone());
        }
        register_file_access(&mut dispatcher, ctx.clone());
        register_file_factory(&mut dispatcher, ctx.clone(), ctx.clone(), names.clone());
        bus.register(address, Arc::new(dispatcher));

        let root = names.mint("directory");
        ctx.add_resource(Arc::new(DirectoryResource::new(root.clone(), store, "")));

        // Minted after the data resource so existing names are stable.
        let monitoring = names.mint("monitoring");
        ctx.add_resource(Arc::new(dais_core::MonitoringResource::new(
            monitoring.clone(),
            bus.clone(),
            address,
        )));
        FileService { ctx, names, root, monitoring }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_core::messages as core_messages;
    use dais_core::{AbstractName, DaisClient};
    use dais_soap::client::ServiceClient;

    fn setup() -> (Bus, ServiceClient, AbstractName) {
        let bus = Bus::new();
        let store = FileStore::new();
        store.write("data/a.csv", b"1,2,3".to_vec()).unwrap();
        store.write("data/b.csv", b"4,5".to_vec()).unwrap();
        store.write("readme.txt", b"hello".to_vec()).unwrap();
        let svc = FileService::launch(&bus, "bus://files", store, FileServiceOptions::default());
        (bus.clone(), ServiceClient::new(bus, "bus://files"), svc.root)
    }

    fn req(name: &AbstractName, local: &str) -> XmlElement {
        core_messages::request(local, name)
    }

    #[test]
    fn read_write_delete_over_the_wire() {
        let (_, client, root) = setup();
        // Write.
        let body = req(&root, "WriteFileRequest")
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Path").with_text("new/file.bin"))
            .with_child(
                XmlElement::new(WSDAIF_NS, "wsdaif", "Contents")
                    .with_text(base64::encode(&[0, 1, 2, 255])),
            );
        let resp = client.request(actions::WRITE_FILE, body).unwrap();
        assert_eq!(resp.child_text(WSDAIF_NS, "Size").as_deref(), Some("4"));
        // Read back.
        let body = req(&root, "ReadFileRequest")
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Path").with_text("new/file.bin"));
        let resp = client.request(actions::READ_FILE, body).unwrap();
        let bytes = base64::decode(&resp.child_text(WSDAIF_NS, "Contents").unwrap()).unwrap();
        assert_eq!(bytes, vec![0, 1, 2, 255]);
        // Delete.
        let body = req(&root, "DeleteFileRequest")
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Path").with_text("new/file.bin"));
        client.request(actions::DELETE_FILE, body).unwrap();
        let body = req(&root, "ReadFileRequest")
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Path").with_text("new/file.bin"));
        assert!(client.request(actions::READ_FILE, body).is_err());
    }

    #[test]
    fn list_with_patterns() {
        let (_, client, root) = setup();
        let body = req(&root, "ListFilesRequest")
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Pattern").with_text("data/*.csv"));
        let resp = client.request(actions::LIST_FILES, body).unwrap();
        let files: Vec<String> = resp.children_named(WSDAIF_NS, "File").map(|f| f.text()).collect();
        assert_eq!(files, vec!["data/a.csv", "data/b.csv"]);
        assert_eq!(
            resp.children_named(WSDAIF_NS, "File").next().unwrap().attribute("size"),
            Some("5")
        );
    }

    #[test]
    fn property_document() {
        let (_, client, root) = setup();
        let resp = client
            .request(
                actions::GET_FILE_PROPERTY_DOCUMENT,
                req(&root, "GetFilePropertyDocumentRequest"),
            )
            .unwrap();
        let doc = resp.child(dais_xml::ns::WSDAI, "PropertyDocument").unwrap();
        assert_eq!(doc.child_text(WSDAIF_NS, "NumberOfFiles").as_deref(), Some("3"));
        assert_eq!(doc.child_text(WSDAIF_NS, "TotalBytes").as_deref(), Some("13"));
        // 5+3+5
    }

    #[test]
    fn file_set_factory_and_paging() {
        let (_, client, root) = setup();
        let body = req(&root, "FileSelectFactoryRequest")
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Pattern").with_text("data/*"));
        let resp = client.request(actions::FILE_SELECT_FACTORY, body).unwrap();
        let epr = dais_core::factory::parse_factory_response(&resp).unwrap();
        let set_name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();

        let body = req(&set_name, "GetFileSetMembersRequest")
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "StartPosition").with_text("1"))
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Count").with_text("5"));
        let resp = client.request(actions::GET_FILE_SET_MEMBERS, body).unwrap();
        let files: Vec<String> = resp.children_named(WSDAIF_NS, "File").map(|f| f.text()).collect();
        assert_eq!(files, vec!["data/b.csv"]);
    }

    #[test]
    fn bad_paths_and_encodings_fault() {
        let (_, client, root) = setup();
        let body = req(&root, "WriteFileRequest")
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Path").with_text("../escape"))
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Contents").with_text("QQ=="));
        assert!(client.request(actions::WRITE_FILE, body).is_err());

        let body = req(&root, "WriteFileRequest")
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Path").with_text("ok.bin"))
            .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Contents").with_text("!!notbase64"));
        assert!(client.request(actions::WRITE_FILE, body).is_err());
    }

    #[test]
    fn core_operations_work_on_file_resources() {
        let (bus, _, root) = setup();
        let core = dais_core::CoreClient::builder().bus(bus).address("bus://files").build();
        let props = core.get_property_document(&root).unwrap();
        assert!(props.writeable);
        let list = core.get_resource_list().unwrap();
        assert!(list.contains(&root), "root directory listed");
        assert_eq!(list.len(), 2, "root + monitoring resource");
        let epr = core.resolve(&root).unwrap();
        assert_eq!(epr.address, "bus://files");
    }
}
