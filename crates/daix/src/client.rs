//! Consumer-side typed client for WS-DAIX services.

use crate::messages::{self, actions};
use dais_core::{AbstractName, CoreClient, DaisClient};
use dais_soap::addressing::Epr;
use dais_soap::bus::Bus;
use dais_soap::client::{CallError, ServiceClient};
use dais_soap::retry::{IdempotencySet, RetryConfig, RetryPolicy};
use dais_xml::{ns, XmlElement};

/// WS-DAIX operations a consumer may safely re-send: document and
/// property reads plus the read-only query languages. `AddDocuments`,
/// `RemoveDocuments`, `XUpdateExecute`, subcollection mutations and the
/// factories all change service state and are never retried.
pub fn idempotent_actions() -> IdempotencySet {
    IdempotencySet::new([
        dais_core::messages::actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT,
        dais_core::messages::actions::GENERIC_QUERY,
        dais_core::messages::actions::GET_RESOURCE_LIST,
        dais_core::messages::actions::RESOLVE,
        dais_wsrf::actions::GET_RESOURCE_PROPERTY,
        dais_wsrf::actions::GET_MULTIPLE_RESOURCE_PROPERTIES,
        dais_wsrf::actions::QUERY_RESOURCE_PROPERTIES,
        actions::GET_DOCUMENTS,
        actions::GET_COLLECTION_PROPERTY_DOCUMENT,
        actions::XPATH_EXECUTE,
        actions::XQUERY_EXECUTE,
        actions::GET_ITEMS,
        actions::GET_SEQUENCE_PROPERTY_DOCUMENT,
    ])
}

/// A typed consumer of WS-DAIX services.
#[derive(Clone)]
pub struct XmlClient {
    core: CoreClient,
}

impl XmlClient {
    /// Bind to a service address on the bus.
    #[deprecated(
        since = "0.10.0",
        note = "use `XmlClient::builder().bus(..).address(..)` \
                 (or `.resource(&ResourceRef)`) instead"
    )]
    pub fn new(bus: Bus, address: impl Into<String>) -> XmlClient {
        XmlClient::from_service(ServiceClient::new(bus, address))
    }

    pub fn from_epr(bus: Bus, epr: Epr) -> XmlClient {
        XmlClient { core: CoreClient::from_epr(bus, epr) }
    }

    /// Bind to a service reached over `transport`.
    #[deprecated(
        since = "0.10.0",
        note = "use `XmlClient::builder().bus(..).transport(..)` instead"
    )]
    pub fn with_transport(
        bus: Bus,
        transport: std::sync::Arc<dyn dais_soap::Transport>,
        address: impl Into<String>,
    ) -> XmlClient {
        XmlClient::builder().bus(bus).transport(transport).address(address).build()
    }

    /// Layer retry over this client for the WS-DAIX read operations
    /// ([`idempotent_actions`]). (Thin wrapper over
    /// [`DaisClient::with_retry`].)
    pub fn with_retry(self, policy: RetryPolicy) -> XmlClient {
        DaisClient::with_retry(self, policy)
    }

    /// Layer retry with a caller-assembled configuration. (Thin wrapper
    /// over [`DaisClient::with_retry_config`].)
    pub fn with_retry_config(self, config: RetryConfig) -> XmlClient {
        DaisClient::with_retry_config(self, config)
    }

    /// The WS-DAI core operations.
    pub fn core(&self) -> &CoreClient {
        &self.core
    }

    /// `AddDocuments`: returns per-document `(name, status)` pairs.
    pub fn add_documents(
        &self,
        collection: &AbstractName,
        documents: &[(String, XmlElement)],
    ) -> Result<Vec<(String, String)>, CallError> {
        let req = messages::add_documents_request(collection, documents);
        let response = self.core.soap().request(actions::ADD_DOCUMENTS, req)?;
        Ok(response
            .children_named(ns::WSDAIX, "Result")
            .map(|r| {
                (
                    r.attribute("name").unwrap_or_default().to_string(),
                    r.attribute("status").unwrap_or_default().to_string(),
                )
            })
            .collect())
    }

    /// `GetDocuments` one document per request, keeping up to `window`
    /// requests in flight on the pipelined path; one result per name,
    /// in input order. Use this over [`get_documents`](Self::get_documents)
    /// when the documents are large enough that marshalling them all in
    /// one response is the bottleneck.
    pub fn get_documents_pipelined(
        &self,
        collection: &AbstractName,
        names: &[&str],
        window: usize,
    ) -> Vec<Result<XmlElement, CallError>> {
        let payloads = names
            .iter()
            .map(|name| {
                messages::document_names_request("GetDocumentsRequest", collection, &[*name])
            })
            .collect();
        self.request_pipelined(actions::GET_DOCUMENTS, payloads, window)
            .into_iter()
            .map(|result| {
                let response = result?;
                let content = response
                    .children_named(ns::WSDAIX, "Document")
                    .next()
                    .and_then(|d| d.child(ns::WSDAIX, "DocumentContent"))
                    .and_then(|c| c.elements().next())
                    .cloned();
                content
                    .ok_or_else(|| CallError::UnexpectedResponse("no Document in response".into()))
            })
            .collect()
    }

    /// `GetDocuments`: fetch named documents (all when `names` is empty).
    pub fn get_documents(
        &self,
        collection: &AbstractName,
        names: &[&str],
    ) -> Result<Vec<(String, XmlElement)>, CallError> {
        let req = messages::document_names_request("GetDocumentsRequest", collection, names);
        let response = self.core.soap().request(actions::GET_DOCUMENTS, req)?;
        let mut out = Vec::new();
        for d in response.children_named(ns::WSDAIX, "Document") {
            let name = d
                .child_text(ns::WSDAIX, "DocumentName")
                .ok_or_else(|| CallError::UnexpectedResponse("Document missing name".into()))?;
            let content = d
                .child(ns::WSDAIX, "DocumentContent")
                .and_then(|c| c.elements().next())
                .cloned()
                .ok_or_else(|| CallError::UnexpectedResponse("Document missing content".into()))?;
            out.push((name, content));
        }
        Ok(out)
    }

    /// `RemoveDocuments`: returns the number removed.
    pub fn remove_documents(
        &self,
        collection: &AbstractName,
        names: &[&str],
    ) -> Result<u64, CallError> {
        let req = messages::document_names_request("RemoveDocumentsRequest", collection, names);
        let response = self.core.soap().request(actions::REMOVE_DOCUMENTS, req)?;
        response
            .child_text(ns::WSDAIX, "RemovedCount")
            .and_then(|t| t.trim().parse().ok())
            .ok_or_else(|| CallError::UnexpectedResponse("no RemovedCount".into()))
    }

    /// `CreateSubcollection`: returns the abstract name of the new
    /// collection resource.
    pub fn create_subcollection(
        &self,
        collection: &AbstractName,
        name: &str,
    ) -> Result<AbstractName, CallError> {
        let req = dais_core::messages::request("CreateSubcollectionRequest", collection)
            .with_child(XmlElement::new(ns::WSDAIX, "wsdaix", "CollectionName").with_text(name));
        let response = self.core.soap().request(actions::CREATE_SUBCOLLECTION, req)?;
        let text = response
            .child_text(ns::WSDAI, "DataResourceAbstractName")
            .ok_or_else(|| CallError::UnexpectedResponse("no abstract name in response".into()))?;
        AbstractName::new(text).map_err(|e| CallError::UnexpectedResponse(e.to_string()))
    }

    /// `RemoveSubcollection`.
    pub fn remove_subcollection(
        &self,
        collection: &AbstractName,
        name: &str,
    ) -> Result<(), CallError> {
        let req = dais_core::messages::request("RemoveSubcollectionRequest", collection)
            .with_child(XmlElement::new(ns::WSDAIX, "wsdaix", "CollectionName").with_text(name));
        self.core.soap().request(actions::REMOVE_SUBCOLLECTION, req).map(|_| ())
    }

    /// `GetCollectionPropertyDocument`.
    pub fn get_collection_property_document(
        &self,
        collection: &AbstractName,
    ) -> Result<XmlElement, CallError> {
        let req = dais_core::messages::request("GetCollectionPropertyDocumentRequest", collection);
        let response = self.core.soap().request(actions::GET_COLLECTION_PROPERTY_DOCUMENT, req)?;
        response
            .child(ns::WSDAI, "PropertyDocument")
            .cloned()
            .ok_or_else(|| CallError::UnexpectedResponse("no PropertyDocument".into()))
    }

    fn items_of(response: &XmlElement) -> Vec<XmlElement> {
        response
            .children_named(ns::WSDAIX, "Item")
            .filter_map(|i| i.elements().next().cloned())
            .collect()
    }

    /// `XPathExecute` (direct access).
    pub fn xpath(
        &self,
        collection: &AbstractName,
        expression: &str,
    ) -> Result<Vec<XmlElement>, CallError> {
        let req = messages::query_request("XPathExecuteRequest", collection, expression);
        let response = self.core.soap().request(actions::XPATH_EXECUTE, req)?;
        Ok(Self::items_of(&response))
    }

    /// `XQueryExecute` (direct access).
    pub fn xquery(
        &self,
        collection: &AbstractName,
        expression: &str,
    ) -> Result<Vec<XmlElement>, CallError> {
        let req = messages::query_request("XQueryExecuteRequest", collection, expression);
        let response = self.core.soap().request(actions::XQUERY_EXECUTE, req)?;
        Ok(Self::items_of(&response))
    }

    /// `XUpdateExecute`: returns the number of nodes modified.
    pub fn xupdate(
        &self,
        collection: &AbstractName,
        modifications: XmlElement,
    ) -> Result<u64, CallError> {
        let req = messages::xupdate_request(collection, modifications);
        let response = self.core.soap().request(actions::XUPDATE_EXECUTE, req)?;
        response
            .child_text(ns::WSDAIX, "ModifiedCount")
            .and_then(|t| t.trim().parse().ok())
            .ok_or_else(|| CallError::UnexpectedResponse("no ModifiedCount".into()))
    }

    /// `XPathExecuteFactory` (indirect access) — EPR of the derived
    /// sequence resource.
    pub fn xpath_factory(
        &self,
        collection: &AbstractName,
        expression: &str,
    ) -> Result<Epr, CallError> {
        let req = messages::query_request("XPathExecuteFactoryRequest", collection, expression);
        let response = self.core.soap().request(actions::XPATH_EXECUTE_FACTORY, req)?;
        dais_core::factory::parse_factory_response(&response).map_err(CallError::Fault)
    }

    /// `XQueryExecuteFactory` (indirect access).
    pub fn xquery_factory(
        &self,
        collection: &AbstractName,
        expression: &str,
    ) -> Result<Epr, CallError> {
        let req = messages::query_request("XQueryExecuteFactoryRequest", collection, expression);
        let response = self.core.soap().request(actions::XQUERY_EXECUTE_FACTORY, req)?;
        dais_core::factory::parse_factory_response(&response).map_err(CallError::Fault)
    }

    /// `GetItems` on a sequence resource.
    pub fn get_items(
        &self,
        sequence: &AbstractName,
        start: usize,
        count: usize,
    ) -> Result<Vec<XmlElement>, CallError> {
        let req = messages::get_items_request(sequence, start, count);
        let response = self.core.soap().request(actions::GET_ITEMS, req)?;
        Ok(Self::items_of(&response))
    }

    /// `GetSequencePropertyDocument`.
    pub fn get_sequence_property_document(
        &self,
        sequence: &AbstractName,
    ) -> Result<XmlElement, CallError> {
        let req = dais_core::messages::request("GetSequencePropertyDocumentRequest", sequence);
        let response = self.core.soap().request(actions::GET_SEQUENCE_PROPERTY_DOCUMENT, req)?;
        response
            .child(ns::WSDAI, "PropertyDocument")
            .cloned()
            .ok_or_else(|| CallError::UnexpectedResponse("no PropertyDocument".into()))
    }
}

impl DaisClient for XmlClient {
    fn service(&self) -> &ServiceClient {
        self.core.service()
    }

    fn from_service(service: ServiceClient) -> XmlClient {
        XmlClient { core: CoreClient::from_service(service) }
    }

    fn service_mut(&mut self) -> &mut ServiceClient {
        self.core.service_mut()
    }

    fn default_idempotent_actions() -> IdempotencySet {
        idempotent_actions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{XmlService, XmlServiceOptions};
    use dais_xml::parse;
    use dais_xmldb::XmlDatabase;

    fn setup() -> (Bus, XmlClient, AbstractName) {
        let bus = Bus::new();
        let db = XmlDatabase::new("library");
        let svc = XmlService::launch(&bus, "bus://xml", db, XmlServiceOptions::default());
        let client = XmlClient::builder().bus(bus.clone()).address("bus://xml").build();
        (bus, client, svc.root_collection)
    }

    fn book(title: &str, price: u32) -> XmlElement {
        parse(&format!("<book><title>{title}</title><price>{price}</price></book>")).unwrap()
    }

    #[test]
    fn document_lifecycle() {
        let (_, client, root) = setup();
        let results = client
            .add_documents(&root, &[("b1".into(), book("TP", 50)), ("b2".into(), book("DDIA", 40))])
            .unwrap();
        assert!(results.iter().all(|(_, s)| s == "Success"));
        // Duplicate insert reports DocumentExists without failing the batch.
        let results = client.add_documents(&root, &[("b1".into(), book("TP", 50))]).unwrap();
        assert_eq!(results[0].1, "DocumentExists");

        let docs = client.get_documents(&root, &[]).unwrap();
        assert_eq!(docs.len(), 2);
        let docs = client.get_documents(&root, &["b2"]).unwrap();
        assert_eq!(docs[0].0, "b2");

        assert_eq!(client.remove_documents(&root, &["b1"]).unwrap(), 1);
        assert!(client.remove_documents(&root, &["b1"]).is_err()); // already gone
    }

    #[test]
    fn pipelined_document_fetch() {
        let (bus, client, root) = setup();
        let batch: Vec<(String, XmlElement)> =
            (0..6).map(|i| (format!("d{i}"), book(&format!("T{i}"), i))).collect();
        client.add_documents(&root, &batch).unwrap();
        bus.install_executor(dais_soap::executor::ExecutorConfig::new(4).seed(23));
        let names: Vec<String> = (0..6).map(|i| format!("d{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let docs = client.get_documents_pipelined(&root, &refs, 4);
        for (i, doc) in docs.into_iter().enumerate() {
            let doc = doc.unwrap();
            assert_eq!(doc.child_text("", "title").as_deref(), Some(format!("T{i}").as_str()));
        }
        // A missing document fails its slot without poisoning the batch.
        let mixed = client.get_documents_pipelined(&root, &["d0", "ghost"], 2);
        assert!(mixed[0].is_ok());
        assert!(mixed[1].is_err());
        bus.shutdown_executor();
    }

    #[test]
    fn subcollections_become_resources() {
        let (_, client, root) = setup();
        let archive = client.create_subcollection(&root, "archive").unwrap();
        // The new resource answers collection operations.
        client.add_documents(&archive, &[("old".into(), book("OLD", 1))]).unwrap();
        let docs = client.get_documents(&archive, &[]).unwrap();
        assert_eq!(docs.len(), 1);
        // Parent's property document counts it.
        let doc = client.get_collection_property_document(&root).unwrap();
        assert_eq!(doc.child_text(ns::WSDAIX, "NumberOfSubcollections").as_deref(), Some("1"));
        // Both collections listed (plus the service's monitoring resource).
        assert_eq!(client.core().get_resource_list().unwrap().len(), 3);
        client.remove_subcollection(&root, "archive").unwrap();
        // The store no longer has it; the dangling resource faults on use.
        assert!(client.get_documents(&archive, &[]).is_err());
    }

    #[test]
    fn xpath_and_xquery_direct_access() {
        let (_, client, root) = setup();
        client
            .add_documents(&root, &[("b1".into(), book("TP", 50)), ("b2".into(), book("DDIA", 40))])
            .unwrap();
        let hits = client.xpath(&root, "/book[price > 45]/title").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].text(), "TP");

        // XQuery runs per document, concatenated in document-name order
        // (b1 then b2); the where clause filters across the collection.
        let items = client
            .xquery(&root, "for $b in /book where $b/price < 45 return <t>{$b/title/text()}</t>")
            .unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].text(), "DDIA");

        let err = client.xpath(&root, "///").unwrap_err();
        assert_eq!(err.dais_fault(), Some(dais_soap::fault::DaisFault::InvalidExpression));
    }

    #[test]
    fn xupdate_through_service() {
        let (_, client, root) = setup();
        client.add_documents(&root, &[("b1".into(), book("TP", 50))]).unwrap();
        let mods = parse(&format!(
            "<xu:modifications xmlns:xu='{}'>\
               <xu:update select='/book/price'>10</xu:update>\
             </xu:modifications>",
            dais_xmldb::xupdate::XUPDATE_NS
        ))
        .unwrap();
        assert_eq!(client.xupdate(&root, mods).unwrap(), 1);
        let prices = client.xpath(&root, "/book/price").unwrap();
        assert_eq!(prices[0].text(), "10");
    }

    #[test]
    fn indirect_access_sequences() {
        let (bus, client, root) = setup();
        client
            .add_documents(
                &root,
                &[
                    ("b1".into(), book("TP", 50)),
                    ("b2".into(), book("DDIA", 40)),
                    ("b3".into(), book("OSTEP", 0)),
                ],
            )
            .unwrap();
        let epr = client.xpath_factory(&root, "/book/title").unwrap();
        let seq_name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
        let c2 = XmlClient::from_epr(bus, epr);
        let doc = c2.get_sequence_property_document(&seq_name).unwrap();
        assert_eq!(doc.child_text(ns::WSDAIX, "NumberOfItems").as_deref(), Some("3"));
        let page = c2.get_items(&seq_name, 0, 2).unwrap();
        assert_eq!(page.len(), 2);
        let page = c2.get_items(&seq_name, 2, 5).unwrap();
        assert_eq!(page.len(), 1);
        // Sequences are snapshots: adding documents later does not grow them.
        client.add_documents(&root, &[("b4".into(), book("NEW", 9))]).unwrap();
        let doc = c2.get_sequence_property_document(&seq_name).unwrap();
        assert_eq!(doc.child_text(ns::WSDAIX, "NumberOfItems").as_deref(), Some("3"));
    }

    #[test]
    fn xquery_factory_sequences() {
        let (_, client, root) = setup();
        client
            .add_documents(&root, &[("b1".into(), book("TP", 50)), ("b2".into(), book("DDIA", 40))])
            .unwrap();
        let epr = client
            .xquery_factory(&root, "for $b in /book where $b/price > 45 return $b/title")
            .unwrap();
        let seq = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
        let items = client.get_items(&seq, 0, 10).unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].text(), "TP");
    }

    #[test]
    fn generic_query_on_collections() {
        let (_, client, root) = setup();
        client.add_documents(&root, &[("b1".into(), book("TP", 50))]).unwrap();
        let hits = client.core().generic_query(&root, crate::languages::XPATH, "/book").unwrap();
        assert_eq!(hits.len(), 1);
        let err = client.core().generic_query(&root, "urn:sql", "SELECT 1").unwrap_err();
        assert_eq!(err.dais_fault(), Some(dais_soap::fault::DaisFault::InvalidLanguage));
    }

    #[test]
    fn wrong_resource_kind_faults() {
        let (_, client, root) = setup();
        // GetItems against a collection resource.
        let err = client.get_items(&root, 0, 1).unwrap_err();
        assert_eq!(err.dais_fault(), Some(dais_soap::fault::DaisFault::InvalidResourceName));
    }
}
