//! # dais-daix
//!
//! The WS-DAIX XML realisation of the DAIS specifications.
//!
//! The paper (§4.3, §6) summarises the XML realisation as following "the
//! same principles" as WS-DAIR: it provides "support for querying XML
//! data resources using XQuery, XPath, XUpdate as well as operations that
//! manipulate collections and others that provide access to service
//! managed data resources". That is exactly this crate's inventory:
//!
//! * **XMLCollectionAccess** — document management (`AddDocuments`,
//!   `GetDocuments`, `RemoveDocuments`), sub-collection management
//!   (`CreateSubcollection`, `RemoveSubcollection`) and
//!   `GetCollectionPropertyDocument`;
//! * **XPathAccess / XQueryAccess / XUpdateAccess** — `XPathExecute`,
//!   `XQueryExecute` and `XUpdateExecute` against a collection;
//! * **XPathFactory / XQueryFactory** — the indirect access pattern:
//!   evaluate a query and expose the result sequence as a derived,
//!   service-managed *sequence resource*;
//! * **SequenceAccess** — `GetItems` (paged retrieval) and
//!   `GetSequencePropertyDocument`.

pub mod client;
pub mod messages;
pub mod resources;
pub mod service;

pub use client::XmlClient;
pub use messages::actions;
pub use resources::{SequenceResource, XmlCollectionResource};
pub use service::{XmlService, XmlServiceOptions};

/// Query-language URIs advertised in `GenericQueryLanguage`.
pub mod languages {
    pub const XPATH: &str = "http://www.w3.org/TR/xpath";
    pub const XQUERY: &str = "http://www.w3.org/TR/xquery";
    pub const XUPDATE: &str = "http://www.xmldb.org/xupdate";
}
