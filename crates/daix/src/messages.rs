//! WS-DAIX message forms and SOAP action URIs.

use dais_core::messages as core_messages;
use dais_core::AbstractName;
use dais_soap::fault::{DaisFault, Fault};
use dais_xml::{ns, XmlElement};

/// SOAP action URIs for the WS-DAIX operations.
pub mod actions {
    pub const ADD_DOCUMENTS: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIX/AddDocuments";
    pub const GET_DOCUMENTS: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIX/GetDocuments";
    pub const REMOVE_DOCUMENTS: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIX/RemoveDocuments";
    pub const CREATE_SUBCOLLECTION: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIX/CreateSubcollection";
    pub const REMOVE_SUBCOLLECTION: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIX/RemoveSubcollection";
    pub const GET_COLLECTION_PROPERTY_DOCUMENT: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIX/GetCollectionPropertyDocument";
    pub const XPATH_EXECUTE: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIX/XPathExecute";
    pub const XQUERY_EXECUTE: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIX/XQueryExecute";
    pub const XUPDATE_EXECUTE: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIX/XUpdateExecute";
    pub const XPATH_EXECUTE_FACTORY: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIX/XPathExecuteFactory";
    pub const XQUERY_EXECUTE_FACTORY: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIX/XQueryExecuteFactory";
    pub const GET_ITEMS: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIX/GetItems";
    pub const GET_SEQUENCE_PROPERTY_DOCUMENT: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIX/GetSequencePropertyDocument";

    /// The complete WS-DAIX inventory, for conformance tests.
    pub const ALL: &[&str] = &[
        ADD_DOCUMENTS,
        GET_DOCUMENTS,
        REMOVE_DOCUMENTS,
        CREATE_SUBCOLLECTION,
        REMOVE_SUBCOLLECTION,
        GET_COLLECTION_PROPERTY_DOCUMENT,
        XPATH_EXECUTE,
        XQUERY_EXECUTE,
        XUPDATE_EXECUTE,
        XPATH_EXECUTE_FACTORY,
        XQUERY_EXECUTE_FACTORY,
        GET_ITEMS,
        GET_SEQUENCE_PROPERTY_DOCUMENT,
    ];
}

/// Build an `AddDocumentsRequest` with `(name, document)` pairs.
pub fn add_documents_request(
    resource: &AbstractName,
    documents: &[(String, XmlElement)],
) -> XmlElement {
    let mut req = core_messages::request("AddDocumentsRequest", resource);
    for (name, doc) in documents {
        req.push(
            XmlElement::new(ns::WSDAIX, "wsdaix", "Document")
                .with_child(XmlElement::new(ns::WSDAIX, "wsdaix", "DocumentName").with_text(name))
                .with_child(
                    XmlElement::new(ns::WSDAIX, "wsdaix", "DocumentContent")
                        .with_child(doc.clone()),
                ),
        );
    }
    req
}

/// Parse the `(name, document)` pairs of an `AddDocumentsRequest`.
pub fn parse_add_documents(body: &XmlElement) -> Result<Vec<(String, XmlElement)>, Fault> {
    let mut out = Vec::new();
    for d in body.children_named(ns::WSDAIX, "Document") {
        let name = d
            .child_text(ns::WSDAIX, "DocumentName")
            .ok_or_else(|| Fault::client("Document missing DocumentName"))?;
        let content = d
            .child(ns::WSDAIX, "DocumentContent")
            .and_then(|c| c.elements().next())
            .ok_or_else(|| Fault::client("Document missing DocumentContent"))?;
        out.push((name, content.clone()));
    }
    if out.is_empty() {
        return Err(Fault::client("AddDocuments carries no Document elements"));
    }
    Ok(out)
}

/// Build a request carrying a list of document names.
pub fn document_names_request(
    message: &str,
    resource: &AbstractName,
    names: &[&str],
) -> XmlElement {
    let mut req = core_messages::request(message, resource);
    for n in names {
        req.push(XmlElement::new(ns::WSDAIX, "wsdaix", "DocumentName").with_text(*n));
    }
    req
}

/// Parse the document names out of a request body.
pub fn parse_document_names(body: &XmlElement) -> Vec<String> {
    body.children_named(ns::WSDAIX, "DocumentName").map(|e| e.text()).collect()
}

/// Build a query-execution request (`XPathExecuteRequest` etc.).
pub fn query_request(message: &str, resource: &AbstractName, expression: &str) -> XmlElement {
    core_messages::request(message, resource)
        .with_child(XmlElement::new(ns::WSDAIX, "wsdaix", "Expression").with_text(expression))
}

/// Parse the expression out of a query request.
pub fn parse_expression(body: &XmlElement) -> Result<String, Fault> {
    body.child_text(ns::WSDAIX, "Expression")
        .ok_or_else(|| Fault::dais(DaisFault::InvalidExpression, "missing wsdaix:Expression"))
}

/// Build an `XUpdateExecuteRequest` carrying a modifications document.
pub fn xupdate_request(resource: &AbstractName, modifications: XmlElement) -> XmlElement {
    core_messages::request("XUpdateExecuteRequest", resource).with_child(modifications)
}

/// Build a `GetItemsRequest` (paged sequence retrieval).
pub fn get_items_request(resource: &AbstractName, start: usize, count: usize) -> XmlElement {
    core_messages::request("GetItemsRequest", resource)
        .with_child(
            XmlElement::new(ns::WSDAIX, "wsdaix", "StartPosition").with_text(start.to_string()),
        )
        .with_child(XmlElement::new(ns::WSDAIX, "wsdaix", "Count").with_text(count.to_string()))
}

/// Parse `(start, count)` from a `GetItemsRequest`.
pub fn parse_get_items(body: &XmlElement) -> Result<(usize, usize), Fault> {
    let start = body
        .child_text(ns::WSDAIX, "StartPosition")
        .and_then(|t| t.trim().parse().ok())
        .ok_or_else(|| Fault::client("GetItems missing StartPosition"))?;
    let count = body
        .child_text(ns::WSDAIX, "Count")
        .and_then(|t| t.trim().parse().ok())
        .ok_or_else(|| Fault::client("GetItems missing Count"))?;
    Ok((start, count))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name() -> AbstractName {
        AbstractName::new("urn:dais:x:coll:0").unwrap()
    }

    #[test]
    fn add_documents_roundtrip() {
        let docs = vec![
            ("a".to_string(), XmlElement::new_local("one").with_text("1")),
            ("b".to_string(), XmlElement::new_local("two")),
        ];
        let req = add_documents_request(&name(), &docs);
        let parsed = parse_add_documents(&req).unwrap();
        assert_eq!(parsed, docs);
    }

    #[test]
    fn add_documents_validation() {
        let empty = dais_core::messages::request("AddDocumentsRequest", &name());
        assert!(parse_add_documents(&empty).is_err());
        let missing_content = empty.clone().with_child(
            XmlElement::new(ns::WSDAIX, "wsdaix", "Document")
                .with_child(XmlElement::new(ns::WSDAIX, "wsdaix", "DocumentName").with_text("a")),
        );
        assert!(parse_add_documents(&missing_content).is_err());
    }

    #[test]
    fn document_names_roundtrip() {
        let req = document_names_request("GetDocumentsRequest", &name(), &["a", "b"]);
        assert_eq!(parse_document_names(&req), vec!["a", "b"]);
    }

    #[test]
    fn query_request_roundtrip() {
        let req = query_request("XPathExecuteRequest", &name(), "//book[price > 3]");
        assert_eq!(parse_expression(&req).unwrap(), "//book[price > 3]");
        let bad = dais_core::messages::request("XPathExecuteRequest", &name());
        assert!(parse_expression(&bad).is_err());
    }

    #[test]
    fn get_items_roundtrip() {
        let req = get_items_request(&name(), 5, 10);
        assert_eq!(parse_get_items(&req).unwrap(), (5, 10));
    }
}
