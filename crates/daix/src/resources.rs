//! XML resource kinds: collections (externally managed) and query result
//! sequences (service managed).

use crate::languages;
use dais_core::properties::ResourceManagementKind;
use dais_core::{
    AbstractName, ConfigurationDocument, ConfigurationMap, CoreProperties, DataResource,
    DatasetMap, Sensitivity,
};
use dais_soap::fault::{DaisFault, Fault};
use dais_xml::{ns, QName, XmlElement};
use dais_xmldb::{XQuery, XQueryItem, XmlDatabase, XmlDbError};
use std::any::Any;

/// Map a store error to the DAIS fault taxonomy.
pub fn xmldb_fault(e: XmlDbError) -> Fault {
    match &e {
        XmlDbError::NoSuchCollection(_) | XmlDbError::NoSuchDocument(_) => {
            Fault::dais(DaisFault::InvalidResourceName, e.to_string())
        }
        XmlDbError::Query(_) => Fault::dais(DaisFault::InvalidExpression, e.to_string()),
        _ => Fault::dais(DaisFault::ServiceError, e.to_string()),
    }
}

/// An XML collection exposed as a data resource. The collection lives in
/// the wrapped [`XmlDatabase`]; destroying the resource severs the
/// service relationship without deleting the data (externally managed).
pub struct XmlCollectionResource {
    properties: CoreProperties,
    db: XmlDatabase,
    path: String,
}

impl XmlCollectionResource {
    pub fn new(
        name: AbstractName,
        db: XmlDatabase,
        path: impl Into<String>,
    ) -> XmlCollectionResource {
        let path = path.into();
        let mut properties = CoreProperties::new(name, ResourceManagementKind::ExternallyManaged);
        properties.description = format!("XML collection '{path}' in database '{}'", db.name());
        properties.writeable = true;
        properties.generic_query_languages =
            vec![languages::XPATH.to_string(), languages::XQUERY.to_string()];
        properties.dataset_maps.push(DatasetMap {
            message: QName::new(ns::WSDAIX, "wsdaix", "XPathExecuteRequest"),
            dataset_format: "http://www.w3.org/TR/xpath#node-sequence".to_string(),
        });
        for message in ["XPathExecuteFactoryRequest", "XQueryExecuteFactoryRequest"] {
            properties.configuration_maps.push(ConfigurationMap {
                message: QName::new(ns::WSDAIX, "wsdaix", message),
                port_type: QName::new(ns::WSDAIX, "wsdaix", "SequenceAccessPT"),
                defaults: ConfigurationDocument {
                    readable: Some(true),
                    writeable: Some(false),
                    sensitivity: Some(Sensitivity::Insensitive),
                    ..Default::default()
                },
            });
        }
        XmlCollectionResource { properties, db, path }
    }

    pub fn database(&self) -> &XmlDatabase {
        &self.db
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    /// Evaluate an XPath over every document in the collection.
    pub fn xpath(&self, expression: &str) -> Result<Vec<XmlElement>, Fault> {
        self.db.xpath_query(&self.path, expression).map_err(xmldb_fault)
    }

    /// Evaluate an XQuery over every document, concatenating per-document
    /// result sequences in document-name order.
    pub fn xquery(&self, expression: &str) -> Result<Vec<XQueryItem>, Fault> {
        let query = XQuery::parse(expression).map_err(xmldb_fault)?;
        let mut items = Vec::new();
        let visit = self
            .db
            .for_each_document(&self.path, |_name, doc| match query.execute(doc) {
                Ok(mut i) => {
                    items.append(&mut i);
                    Ok(())
                }
                Err(e) => Err(e),
            })
            .map_err(xmldb_fault)?;
        visit.map_err(xmldb_fault)?;
        Ok(items)
    }

    /// Apply an XUpdate modifications document to every document in the
    /// collection; returns the total number of nodes touched.
    pub fn xupdate(&self, modifications: &XmlElement) -> Result<usize, Fault> {
        let names = self.db.list_documents(&self.path).map_err(xmldb_fault)?;
        let mut touched = 0;
        for name in names {
            let mut doc = self.db.get_document(&self.path, &name).map_err(xmldb_fault)?;
            let n = dais_xmldb::apply_xupdate(&mut doc, modifications, &Default::default())
                .map_err(xmldb_fault)?;
            if n > 0 {
                self.db.replace_document(&self.path, &name, doc).map_err(xmldb_fault)?;
                touched += n;
            }
        }
        Ok(touched)
    }
}

impl DataResource for XmlCollectionResource {
    fn abstract_name(&self) -> &AbstractName {
        &self.properties.abstract_name
    }

    fn core_properties(&self) -> CoreProperties {
        self.properties.clone()
    }

    fn property_document(&self) -> XmlElement {
        let mut doc = self.properties.to_xml();
        if let Ok(docs) = self.db.list_documents(&self.path) {
            doc.push(
                XmlElement::new(ns::WSDAIX, "wsdaix", "NumberOfDocuments")
                    .with_text(docs.len().to_string()),
            );
        }
        if let Ok(subs) = self.db.list_collections(&self.path) {
            doc.push(
                XmlElement::new(ns::WSDAIX, "wsdaix", "NumberOfSubcollections")
                    .with_text(subs.len().to_string()),
            );
        }
        doc.push(XmlElement::new(ns::WSDAIX, "wsdaix", "CollectionPath").with_text(&self.path));
        doc
    }

    fn generic_query(&self, language: &str, expression: &str) -> Result<Vec<XmlElement>, Fault> {
        match language {
            l if l == languages::XPATH => self.xpath(expression),
            l if l == languages::XQUERY => {
                Ok(self.xquery(expression)?.iter().map(XQueryItem::to_element).collect())
            }
            other => Err(Fault::dais(
                DaisFault::InvalidLanguage,
                format!("language '{other}' is not supported by XML collections"),
            )),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A derived, service-managed sequence of query result items, created by
/// the XPath/XQuery factories and consumed through `GetItems`.
pub struct SequenceResource {
    properties: CoreProperties,
    items: Vec<XmlElement>,
}

impl SequenceResource {
    pub fn new(properties: CoreProperties, items: Vec<XmlElement>) -> SequenceResource {
        SequenceResource { properties, items }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// A page of items.
    pub fn items(&self, start: usize, count: usize) -> &[XmlElement] {
        let end = (start + count).min(self.items.len());
        if start >= self.items.len() {
            &[]
        } else {
            &self.items[start..end]
        }
    }
}

impl DataResource for SequenceResource {
    fn abstract_name(&self) -> &AbstractName {
        &self.properties.abstract_name
    }

    fn core_properties(&self) -> CoreProperties {
        self.properties.clone()
    }

    fn property_document(&self) -> XmlElement {
        let mut doc = self.properties.to_xml();
        doc.push(
            XmlElement::new(ns::WSDAIX, "wsdaix", "NumberOfItems")
                .with_text(self.items.len().to_string()),
        );
        doc
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> XmlDatabase {
        let db = XmlDatabase::new("xtest");
        db.create_collection("lib").unwrap();
        db.add_document("lib", "b1", "<book><title>TP</title><price>50</price></book>").unwrap();
        db.add_document("lib", "b2", "<book><title>DDIA</title><price>40</price></book>").unwrap();
        db
    }

    fn collection() -> XmlCollectionResource {
        XmlCollectionResource::new(AbstractName::new("urn:dais:x:coll:0").unwrap(), db(), "lib")
    }

    #[test]
    fn xpath_over_collection() {
        let c = collection();
        let hits = c.xpath("/book[price > 45]/title").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].text(), "TP");
        assert!(c.xpath("///").unwrap_err().is(DaisFault::InvalidExpression));
    }

    #[test]
    fn xquery_over_collection() {
        let c = collection();
        let items = c
            .xquery("for $b in /book where $b/price > 30 return <hit>{$b/title/text()}</hit>")
            .unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].string_value(), "TP"); // b1 before b2
    }

    #[test]
    fn xupdate_over_collection() {
        let c = collection();
        let mods = dais_xml::parse(&format!(
            "<xu:modifications xmlns:xu='{}'>\
               <xu:update select='/book/price'>1</xu:update>\
             </xu:modifications>",
            dais_xmldb::xupdate::XUPDATE_NS
        ))
        .unwrap();
        let touched = c.xupdate(&mods).unwrap();
        assert_eq!(touched, 2);
        let prices = c.xpath("/book/price").unwrap();
        assert!(prices.iter().all(|p| p.text() == "1"));
    }

    #[test]
    fn generic_query_languages() {
        let c = collection();
        assert_eq!(c.generic_query(languages::XPATH, "/book").unwrap().len(), 2);
        assert_eq!(
            c.generic_query(languages::XQUERY, "for $b in /book return $b/title").unwrap().len(),
            2
        );
        assert!(c.generic_query("urn:sql", "SELECT").unwrap_err().is(DaisFault::InvalidLanguage));
    }

    #[test]
    fn collection_property_document() {
        let c = collection();
        let doc = c.property_document();
        assert_eq!(doc.child_text(ns::WSDAIX, "NumberOfDocuments").as_deref(), Some("2"));
        assert_eq!(doc.child_text(ns::WSDAIX, "NumberOfSubcollections").as_deref(), Some("0"));
        assert_eq!(doc.child_text(ns::WSDAIX, "CollectionPath").as_deref(), Some("lib"));
        // Core properties present too.
        assert!(doc.child(ns::WSDAI, "GenericQueryLanguage").is_some());
    }

    #[test]
    fn sequence_resource_pages() {
        let items: Vec<XmlElement> =
            (0..5).map(|i| XmlElement::new_local("i").with_text(i.to_string())).collect();
        let props = CoreProperties::new(
            AbstractName::new("urn:dais:x:seq:0").unwrap(),
            ResourceManagementKind::ServiceManaged,
        );
        let s = SequenceResource::new(props, items);
        assert_eq!(s.len(), 5);
        assert_eq!(s.items(0, 2).len(), 2);
        assert_eq!(s.items(4, 10).len(), 1);
        assert_eq!(s.items(9, 1).len(), 0);
        let doc = s.property_document();
        assert_eq!(doc.child_text(ns::WSDAIX, "NumberOfItems").as_deref(), Some("5"));
    }
}
