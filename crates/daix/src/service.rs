//! Service-side registration of the WS-DAIX interfaces.

use crate::messages::{self, actions};
use crate::resources::{xmldb_fault, SequenceResource, XmlCollectionResource};
use dais_core::factory::{factory_response, mint_resource_epr, DerivedResourceConfig};
use dais_core::{
    register_core_ops, register_wsrf_ops, NameGenerator, ResourceRegistry, ServiceContext,
};
use dais_soap::bus::Bus;
use dais_soap::envelope::Envelope;
use dais_soap::fault::{DaisFault, Fault};
use dais_soap::service::SoapDispatcher;
use dais_wsrf::LifetimeRegistry;
use dais_xml::{ns, QName, XmlElement};
use dais_xmldb::XmlDatabase;
use std::sync::Arc;

fn payload(request: &Envelope) -> Result<&XmlElement, Fault> {
    request.payload().ok_or_else(|| Fault::client("request has an empty SOAP body"))
}

fn respond(element: XmlElement) -> Result<Envelope, Fault> {
    Ok(Envelope::with_body(element))
}

fn as_collection(
    resource: &Arc<dyn dais_core::DataResource>,
) -> Result<&XmlCollectionResource, Fault> {
    resource.as_any().downcast_ref::<XmlCollectionResource>().ok_or_else(|| {
        Fault::dais(DaisFault::InvalidResourceName, "resource is not an XML collection")
    })
}

fn as_sequence(resource: &Arc<dyn dais_core::DataResource>) -> Result<&SequenceResource, Fault> {
    resource.as_any().downcast_ref::<SequenceResource>().ok_or_else(|| {
        Fault::dais(DaisFault::InvalidResourceName, "resource is not a sequence resource")
    })
}

fn require_writeable(resource: &Arc<dyn dais_core::DataResource>) -> Result<(), Fault> {
    if !resource.core_properties().writeable {
        return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not writeable"));
    }
    Ok(())
}

/// Register the **XMLCollectionAccess** interface.
///
/// `CreateSubcollection` both creates the collection in the store and
/// registers a new data resource representing it (returning the new
/// resource's abstract name in the response).
pub fn register_collection_access(
    dispatcher: &mut SoapDispatcher,
    ctx: Arc<ServiceContext>,
    names: Arc<NameGenerator>,
) {
    let c = ctx.clone();
    dispatcher.register(actions::ADD_DOCUMENTS, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let collection = as_collection(&resource)?;
        require_writeable(&resource)?;
        let documents = messages::parse_add_documents(body)?;
        let mut response = XmlElement::new(ns::WSDAIX, "wsdaix", "AddDocumentsResponse");
        for (name, doc) in documents {
            let outcome = collection.database().add_document_element(collection.path(), &name, doc);
            let status = match outcome {
                Ok(()) => "Success",
                Err(dais_xmldb::XmlDbError::DocumentExists(_)) => "DocumentExists",
                Err(e) => return Err(xmldb_fault(e)),
            };
            response.push(
                XmlElement::new(ns::WSDAIX, "wsdaix", "Result")
                    .with_attr("name", name)
                    .with_attr("status", status),
            );
        }
        respond(response)
    });

    let c = ctx.clone();
    dispatcher.register(actions::GET_DOCUMENTS, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let collection = as_collection(&resource)?;
        if !resource.core_properties().readable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not readable"));
        }
        let mut response = XmlElement::new(ns::WSDAIX, "wsdaix", "GetDocumentsResponse");
        let requested = messages::parse_document_names(body);
        let names: Vec<String> = if requested.is_empty() {
            collection.database().list_documents(collection.path()).map_err(xmldb_fault)?
        } else {
            requested
        };
        for name in names {
            let doc = collection
                .database()
                .get_document(collection.path(), &name)
                .map_err(xmldb_fault)?;
            response.push(
                XmlElement::new(ns::WSDAIX, "wsdaix", "Document")
                    .with_child(
                        XmlElement::new(ns::WSDAIX, "wsdaix", "DocumentName").with_text(name),
                    )
                    .with_child(
                        XmlElement::new(ns::WSDAIX, "wsdaix", "DocumentContent").with_child(doc),
                    ),
            );
        }
        respond(response)
    });

    let c = ctx.clone();
    dispatcher.register(actions::REMOVE_DOCUMENTS, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let collection = as_collection(&resource)?;
        require_writeable(&resource)?;
        let mut removed = 0;
        for name in messages::parse_document_names(body) {
            collection.database().remove_document(collection.path(), &name).map_err(xmldb_fault)?;
            removed += 1;
        }
        respond(XmlElement::new(ns::WSDAIX, "wsdaix", "RemoveDocumentsResponse").with_child(
            XmlElement::new(ns::WSDAIX, "wsdaix", "RemovedCount").with_text(removed.to_string()),
        ))
    });

    let c = ctx.clone();
    let n = names.clone();
    dispatcher.register(actions::CREATE_SUBCOLLECTION, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let collection = as_collection(&resource)?;
        require_writeable(&resource)?;
        let name = body
            .child_text(ns::WSDAIX, "CollectionName")
            .ok_or_else(|| Fault::client("missing wsdaix:CollectionName"))?;
        let path = if collection.path().is_empty() {
            name.clone()
        } else {
            format!("{}/{}", collection.path(), name)
        };
        collection.database().create_collection(&path).map_err(xmldb_fault)?;
        // Register a data resource for the new collection.
        let abstract_name = n.mint("collection");
        let sub =
            XmlCollectionResource::new(abstract_name.clone(), collection.database().clone(), path);
        c.add_resource(Arc::new(sub));
        respond(
            XmlElement::new(ns::WSDAIX, "wsdaix", "CreateSubcollectionResponse").with_child(
                XmlElement::new(ns::WSDAI, "wsdai", "DataResourceAbstractName")
                    .with_text(abstract_name.as_str()),
            ),
        )
    });

    let c = ctx.clone();
    dispatcher.register(actions::REMOVE_SUBCOLLECTION, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let collection = as_collection(&resource)?;
        require_writeable(&resource)?;
        let name = body
            .child_text(ns::WSDAIX, "CollectionName")
            .ok_or_else(|| Fault::client("missing wsdaix:CollectionName"))?;
        let path = if collection.path().is_empty() {
            name.clone()
        } else {
            format!("{}/{}", collection.path(), name)
        };
        collection.database().remove_collection(&path).map_err(xmldb_fault)?;
        respond(XmlElement::new(ns::WSDAIX, "wsdaix", "RemoveSubcollectionResponse"))
    });

    let c = ctx;
    dispatcher.register(actions::GET_COLLECTION_PROPERTY_DOCUMENT, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        as_collection(&resource)?;
        let mut response =
            XmlElement::new(ns::WSDAIX, "wsdaix", "GetCollectionPropertyDocumentResponse");
        response.push(resource.property_document());
        respond(response)
    });
}

/// Register the **XPathAccess**, **XQueryAccess** and **XUpdateAccess**
/// direct-access interfaces.
pub fn register_query_access(dispatcher: &mut SoapDispatcher, ctx: Arc<ServiceContext>) {
    let c = ctx.clone();
    dispatcher.register(actions::XPATH_EXECUTE, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let collection = as_collection(&resource)?;
        if !resource.core_properties().readable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not readable"));
        }
        let expression = messages::parse_expression(body)?;
        let hits = collection.xpath(&expression)?;
        let mut response = XmlElement::new(ns::WSDAIX, "wsdaix", "XPathExecuteResponse");
        for h in hits {
            response.push(XmlElement::new(ns::WSDAIX, "wsdaix", "Item").with_child(h));
        }
        respond(response)
    });

    let c = ctx.clone();
    dispatcher.register(actions::XQUERY_EXECUTE, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let collection = as_collection(&resource)?;
        if !resource.core_properties().readable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not readable"));
        }
        let expression = messages::parse_expression(body)?;
        let items = collection.xquery(&expression)?;
        let mut response = XmlElement::new(ns::WSDAIX, "wsdaix", "XQueryExecuteResponse");
        for i in items {
            response.push(XmlElement::new(ns::WSDAIX, "wsdaix", "Item").with_child(i.to_element()));
        }
        respond(response)
    });

    let c = ctx;
    dispatcher.register(actions::XUPDATE_EXECUTE, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let collection = as_collection(&resource)?;
        require_writeable(&resource)?;
        let modifications =
            body.child(dais_xmldb::xupdate::XUPDATE_NS, "modifications").ok_or_else(|| {
                Fault::dais(DaisFault::InvalidExpression, "missing xupdate:modifications document")
            })?;
        let touched = collection.xupdate(modifications)?;
        respond(XmlElement::new(ns::WSDAIX, "wsdaix", "XUpdateExecuteResponse").with_child(
            XmlElement::new(ns::WSDAIX, "wsdaix", "ModifiedCount").with_text(touched.to_string()),
        ))
    });
}

/// Register the **XPathFactory** / **XQueryFactory** indirect-access
/// interfaces; derived sequence resources land on `target`.
pub fn register_query_factories(
    dispatcher: &mut SoapDispatcher,
    ctx: Arc<ServiceContext>,
    target: Arc<ServiceContext>,
    names: Arc<NameGenerator>,
) {
    for (action, message, is_xquery) in [
        (actions::XPATH_EXECUTE_FACTORY, "XPathExecuteFactoryRequest", false),
        (actions::XQUERY_EXECUTE_FACTORY, "XQueryExecuteFactoryRequest", true),
    ] {
        let c = ctx.clone();
        let t = target.clone();
        let n = names.clone();
        dispatcher.register(action, move |req: &Envelope| {
            let body = payload(req)?;
            let resource = c.resolve_resource(body)?;
            let collection = as_collection(&resource)?;
            let props = resource.core_properties();
            if !props.readable {
                return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not readable"));
            }
            let config = DerivedResourceConfig::from_request(body)?;
            let message_qname = QName::new(ns::WSDAIX, "wsdaix", message);
            let (_port, effective) =
                config.resolve_against(&props.configuration_maps, &message_qname)?;

            let expression = messages::parse_expression(body)?;
            let items: Vec<XmlElement> = if is_xquery {
                collection
                    .xquery(&expression)?
                    .iter()
                    .map(dais_xmldb::XQueryItem::to_element)
                    .collect()
            } else {
                collection.xpath(&expression)?
            };

            let name = n.mint("sequence");
            let derived = config.derived_properties(name.clone(), &effective);
            t.add_resource(Arc::new(SequenceResource::new(derived, items)));
            let epr = mint_resource_epr(&t.address, &name);
            respond(factory_response(
                &format!("{}Response", message.trim_end_matches("Request")),
                ns::WSDAIX,
                "wsdaix",
                &epr,
            ))
        });
    }
}

/// Register the **SequenceAccess** interface (`GetItems`,
/// `GetSequencePropertyDocument`).
pub fn register_sequence_access(dispatcher: &mut SoapDispatcher, ctx: Arc<ServiceContext>) {
    let c = ctx.clone();
    dispatcher.register(actions::GET_ITEMS, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let sequence = as_sequence(&resource)?;
        if !resource.core_properties().readable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not readable"));
        }
        let (start, count) = messages::parse_get_items(body)?;
        let mut response = XmlElement::new(ns::WSDAIX, "wsdaix", "GetItemsResponse");
        for item in sequence.items(start, count) {
            response.push(XmlElement::new(ns::WSDAIX, "wsdaix", "Item").with_child(item.clone()));
        }
        respond(response)
    });

    let c = ctx;
    dispatcher.register(actions::GET_SEQUENCE_PROPERTY_DOCUMENT, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        as_sequence(&resource)?;
        let mut response =
            XmlElement::new(ns::WSDAIX, "wsdaix", "GetSequencePropertyDocumentResponse");
        response.push(resource.property_document());
        respond(response)
    });
}

/// Options for assembling an XML data service.
#[derive(Default)]
pub struct XmlServiceOptions {
    /// Enable the WSRF layer with this lifetime registry.
    pub wsrf: Option<Arc<LifetimeRegistry>>,
}

/// A fully-assembled single-address XML data service serving one
/// [`XmlDatabase`]: its root collection is registered as the initial data
/// resource, and `CreateSubcollection` grows the resource set.
pub struct XmlService {
    pub ctx: Arc<ServiceContext>,
    pub names: Arc<NameGenerator>,
    /// The abstract name of the root collection resource.
    pub root_collection: dais_core::AbstractName,
    /// The abstract name of the service's monitoring resource, whose
    /// property document is the live observability view of its endpoint.
    pub monitoring: dais_core::AbstractName,
}

impl XmlService {
    pub fn launch(
        bus: &Bus,
        address: &str,
        db: XmlDatabase,
        options: XmlServiceOptions,
    ) -> XmlService {
        let registry = ResourceRegistry::new();
        let ctx = Arc::new(ServiceContext {
            address: address.to_string(),
            registry,
            lifetime: options.wsrf,
            query_rewriter: None,
        });
        let names =
            Arc::new(NameGenerator::new(address.trim_start_matches("bus://").replace('/', "-")));

        let mut dispatcher = SoapDispatcher::new();
        register_core_ops(&mut dispatcher, ctx.clone());
        if ctx.lifetime.is_some() {
            register_wsrf_ops(&mut dispatcher, ctx.clone());
        }
        register_collection_access(&mut dispatcher, ctx.clone(), names.clone());
        register_query_access(&mut dispatcher, ctx.clone());
        register_query_factories(&mut dispatcher, ctx.clone(), ctx.clone(), names.clone());
        register_sequence_access(&mut dispatcher, ctx.clone());
        bus.register(address, Arc::new(dispatcher));

        let root_collection = names.mint("collection");
        ctx.add_resource(Arc::new(XmlCollectionResource::new(root_collection.clone(), db, "")));

        // Minted after the data resource so existing names are stable.
        let monitoring = names.mint("monitoring");
        ctx.add_resource(Arc::new(dais_core::MonitoringResource::new(
            monitoring.clone(),
            bus.clone(),
            address,
        )));

        XmlService { ctx, names, root_collection, monitoring }
    }
}
