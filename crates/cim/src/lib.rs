//! # dais-cim
//!
//! A CIM-style XML rendering of relational metadata.
//!
//! The paper (§2.3, §4.2) describes the DAIS-WG working with the DMTF to
//! "extend the coverage of the CIM database model to include relational
//! metadata from the SQL standard", with an XML rendering used for the
//! WS-DAIR `CIMDescription` property. The DMTF deliverable never shipped
//! in the paper's timeframe; this crate implements the obvious shape of
//! that rendering over the `dais-sql` catalog: `CIM_Database` containing
//! `CIM_Table`s with `CIM_Column`s (type, nullability, defaults),
//! `CIM_UniqueConstraint`s (primary keys and unique columns),
//! `CIM_ForeignKey`s and `CIM_Index`es.

use dais_sql::Database;
use dais_xml::{ns, XmlElement};

/// Render the full CIM description of a database's catalog.
///
/// The output is deterministic: tables sorted by name, columns in
/// declaration order.
pub fn cim_description(db: &Database) -> XmlElement {
    let mut root = XmlElement::new(ns::CIM, "cim", "CIM_Database").with_attr("Name", db.name());
    db.with_storage(|storage| {
        let mut names = storage.table_names();
        names.sort();
        for name in names {
            if let Ok(table) = storage.table(&name) {
                root.push(render_table(table));
            }
        }
    });
    root
}

fn render_table(table: &dais_sql::storage::Table) -> XmlElement {
    let schema = &table.schema;
    let mut t = XmlElement::new(ns::CIM, "cim", "CIM_Table").with_attr("Name", &schema.name);
    for (i, c) in schema.columns.iter().enumerate() {
        let mut col = XmlElement::new(ns::CIM, "cim", "CIM_Column")
            .with_attr("Name", &c.name)
            .with_attr("DataType", c.ty.name())
            .with_attr("Nullable", (!c.not_null).to_string())
            .with_attr("OrdinalPosition", (i + 1).to_string());
        if let Some(d) = &c.default {
            col.set_attr("DefaultValue", d.to_display_string());
        }
        t.push(col);
    }
    if !schema.primary_key.is_empty() {
        let mut pk = XmlElement::new(ns::CIM, "cim", "CIM_UniqueConstraint")
            .with_attr("Name", format!("pk_{}", schema.name))
            .with_attr("PrimaryKey", "true");
        for &i in &schema.primary_key {
            pk.push(
                XmlElement::new(ns::CIM, "cim", "CIM_ColumnRef")
                    .with_attr("Name", &schema.columns[i].name),
            );
        }
        t.push(pk);
    }
    for (i, c) in schema.columns.iter().enumerate() {
        if c.unique && !schema.primary_key.contains(&i) {
            t.push(
                XmlElement::new(ns::CIM, "cim", "CIM_UniqueConstraint")
                    .with_attr("Name", format!("uq_{}_{}", schema.name, c.name))
                    .with_attr("PrimaryKey", "false")
                    .with_child(
                        XmlElement::new(ns::CIM, "cim", "CIM_ColumnRef").with_attr("Name", &c.name),
                    ),
            );
        }
        if let Some((ftable, fcolumn)) = &c.references {
            t.push(
                XmlElement::new(ns::CIM, "cim", "CIM_ForeignKey")
                    .with_attr("Name", format!("fk_{}_{}", schema.name, c.name))
                    .with_attr("Column", &c.name)
                    .with_attr("ReferencedTable", ftable)
                    .with_attr("ReferencedColumn", fcolumn),
            );
        }
    }
    for idx in &schema.indexes {
        t.push(
            XmlElement::new(ns::CIM, "cim", "CIM_Index")
                .with_attr("Name", &idx.name)
                .with_attr("Column", &schema.columns[idx.column].name)
                .with_attr("Unique", idx.unique.to_string()),
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new("orders_db");
        db.execute_script(
            "CREATE TABLE dept (id INTEGER PRIMARY KEY, name VARCHAR NOT NULL UNIQUE);
             CREATE TABLE emp (
                 id INTEGER PRIMARY KEY,
                 name VARCHAR NOT NULL,
                 salary DOUBLE DEFAULT 1.5,
                 dept_id INTEGER REFERENCES dept (id)
             );
             CREATE INDEX i_dept ON emp (dept_id);",
        )
        .unwrap();
        db
    }

    #[test]
    fn renders_database_and_tables() {
        let doc = cim_description(&db());
        assert!(doc.name.is(ns::CIM, "CIM_Database"));
        assert_eq!(doc.attribute("Name"), Some("orders_db"));
        let tables: Vec<&str> =
            doc.children_named(ns::CIM, "CIM_Table").filter_map(|t| t.attribute("Name")).collect();
        assert_eq!(tables, vec!["dept", "emp"]); // sorted
    }

    #[test]
    fn renders_columns_with_metadata() {
        let doc = cim_description(&db());
        let emp = doc
            .children_named(ns::CIM, "CIM_Table")
            .find(|t| t.attribute("Name") == Some("emp"))
            .unwrap();
        let cols: Vec<&XmlElement> = emp.children_named(ns::CIM, "CIM_Column").collect();
        assert_eq!(cols.len(), 4);
        assert_eq!(cols[0].attribute("Name"), Some("id"));
        assert_eq!(cols[0].attribute("Nullable"), Some("false"));
        assert_eq!(cols[2].attribute("DataType"), Some("DOUBLE"));
        assert_eq!(cols[2].attribute("DefaultValue"), Some("1.5"));
        assert_eq!(cols[3].attribute("OrdinalPosition"), Some("4"));
    }

    #[test]
    fn renders_constraints_and_indexes() {
        let doc = cim_description(&db());
        let emp = doc
            .children_named(ns::CIM, "CIM_Table")
            .find(|t| t.attribute("Name") == Some("emp"))
            .unwrap();
        let pk = emp
            .children_named(ns::CIM, "CIM_UniqueConstraint")
            .find(|c| c.attribute("PrimaryKey") == Some("true"))
            .unwrap();
        assert_eq!(pk.child(ns::CIM, "CIM_ColumnRef").unwrap().attribute("Name"), Some("id"));

        let fk = emp.child(ns::CIM, "CIM_ForeignKey").unwrap();
        assert_eq!(fk.attribute("ReferencedTable"), Some("dept"));
        assert_eq!(fk.attribute("ReferencedColumn"), Some("id"));

        let idx = emp.child(ns::CIM, "CIM_Index").unwrap();
        assert_eq!(idx.attribute("Name"), Some("i_dept"));
        assert_eq!(idx.attribute("Unique"), Some("false"));

        let dept = doc
            .children_named(ns::CIM, "CIM_Table")
            .find(|t| t.attribute("Name") == Some("dept"))
            .unwrap();
        let uq = dept
            .children_named(ns::CIM, "CIM_UniqueConstraint")
            .find(|c| c.attribute("PrimaryKey") == Some("false"))
            .unwrap();
        assert_eq!(uq.child(ns::CIM, "CIM_ColumnRef").unwrap().attribute("Name"), Some("name"));
    }

    #[test]
    fn output_parses_back() {
        let text = dais_xml::to_string(&cim_description(&db()));
        let parsed = dais_xml::parse(&text).unwrap();
        assert_eq!(parsed.children_named(ns::CIM, "CIM_Table").count(), 2);
    }

    #[test]
    fn empty_database_renders_empty_description() {
        let doc = cim_description(&Database::new("empty"));
        assert_eq!(doc.elements().count(), 0);
    }
}
