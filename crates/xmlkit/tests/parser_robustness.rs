//! Parser robustness: pathological and adversarial inputs must produce
//! errors, never panics or hangs — these documents arrive from the
//! network in a DAIS deployment.

use dais_xml::{parse, parse_preserving, to_string, XmlElement};

#[test]
fn deeply_nested_documents() {
    // Documents up to the depth cap parse and round-trip.
    let nest = |depth: usize| {
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("<d>");
        }
        src.push('x');
        for _ in 0..depth {
            src.push_str("</d>");
        }
        src
    };
    let doc = parse(&nest(dais_xml::parser::MAX_DEPTH)).unwrap();
    assert_eq!(doc.text(), "x");
    assert_eq!(parse(&to_string(&doc)).unwrap(), doc);
    // Beyond the cap: a clean error, not a stack overflow (hostile
    // documents must not crash a data service).
    let err = parse(&nest(dais_xml::parser::MAX_DEPTH + 1)).unwrap_err();
    assert!(err.message.contains("depth"), "{err}");
    let err = parse(&nest(100_000)).unwrap_err();
    assert!(err.message.contains("depth"), "{err}");
}

#[test]
fn wide_documents() {
    let mut root = XmlElement::new_local("r");
    for i in 0..10_000 {
        root.push(XmlElement::new_local("c").with_attr("i", i.to_string()));
    }
    let wire = to_string(&root);
    let back = parse(&wire).unwrap();
    assert_eq!(back.elements().count(), 10_000);
}

#[test]
fn truncated_inputs_error_cleanly() {
    let full = "<root attr='value'><child>text &amp; more</child><!-- c --><![CDATA[x]]></root>";
    // Every prefix of a valid document either parses (rare) or errors —
    // never panics.
    for cut in 0..full.len() {
        let _ = parse(&full[..cut]);
    }
    // The full document parses.
    parse(full).unwrap();
}

#[test]
fn malformed_structures() {
    for bad in [
        "<a><b></a></b>",           // interleaved close
        "<a",                       // unterminated tag
        "<a /",                     // broken self-close
        "<a></a",                   // unterminated close
        "<a x=1/>",                 // unquoted attribute
        "<a x></a>",                // attribute without value
        "< a/>",                    // space before name
        "<a>&unknown;</a>",         // undefined entity
        "<a>&#xZZ;</a>",            // bad char ref
        "<a>&#1114112;</a>",        // out-of-range char ref
        "<1a/>",                    // name starts with digit
        "text<a/>",                 // leading text at top level
        "<a/><b/>",                 // two roots
        "<!DOCTYPE a><a/>",         // doctype unsupported
        "<a xmlns:p=''><p:b/></a>", // empty prefix binding
        "<a><![CDATA[x]]</a>",      // unterminated cdata
        "<a><!-- x --</a>",         // unterminated comment
    ] {
        assert!(parse(bad).is_err(), "should reject: {bad}");
    }
}

#[test]
fn entity_bombs_are_not_possible() {
    // Our subset has no internal entity definitions, so the classic
    // billion-laughs input is simply a parse error (no DOCTYPE).
    let bomb = r#"<!DOCTYPE lolz [<!ENTITY lol "lol">]><lolz>&lol;</lolz>"#;
    assert!(parse(bomb).is_err());
}

#[test]
fn huge_text_nodes() {
    let payload = "x".repeat(1_000_000);
    let src = format!("<r>{payload}</r>");
    let doc = parse_preserving(&src).unwrap();
    assert_eq!(doc.text().len(), 1_000_000);
}

#[test]
fn attribute_value_edge_cases() {
    let doc = parse("<r a='' b='  spaced  ' c='&#9;tab' d=\"q'uote\"/>").unwrap();
    assert_eq!(doc.attribute("a"), Some(""));
    assert_eq!(doc.attribute("b"), Some("  spaced  "));
    assert_eq!(doc.attribute("c"), Some("\ttab"));
    assert_eq!(doc.attribute("d"), Some("q'uote"));
    // And they all survive re-serialisation.
    let rt = parse(&to_string(&doc)).unwrap();
    assert_eq!(rt, doc);
}

#[test]
fn mixed_content_preserved() {
    let src = "<p>one <b>two</b> three <i>four</i> five</p>";
    let doc = parse_preserving(src).unwrap();
    assert_eq!(doc.text(), "one two three four five");
    assert_eq!(doc.children.len(), 5);
    let rt = parse_preserving(&to_string(&doc)).unwrap();
    assert_eq!(rt, doc);
}

#[test]
fn unicode_content() {
    let src = "<r attr='日本語'>причал 🚀 ñcafé</r>";
    let doc = parse_preserving(src).unwrap();
    assert_eq!(doc.attribute("attr"), Some("日本語"));
    assert_eq!(doc.text(), "причал 🚀 ñcafé");
    assert_eq!(parse_preserving(&to_string(&doc)).unwrap(), doc);
}

#[test]
fn xpath_on_pathological_documents_is_safe() {
    // Long sibling chains with predicates that backtrack.
    let mut root = XmlElement::new_local("r");
    for i in 0..2000 {
        root.push(XmlElement::new_local("x").with_attr("i", i.to_string()));
    }
    let expr = dais_xml::XPathExpr::parse("//x[@i = '1999']").unwrap();
    let hits = expr.select_elements(&root).unwrap();
    assert_eq!(hits.len(), 1);
    // A miss over the same fan-out.
    let expr = dais_xml::XPathExpr::parse("//x[@i = 'nope']/following-sibling::x").unwrap();
    assert!(expr.select_elements(&root).unwrap().is_empty());
}
