//! Write→parse round-trip properties for the serialiser/parser pair.
//!
//! The wire-path fast lane rewrote both the parser inner loop (borrowed
//! text, interned names) and the writer (streaming sink, run-based
//! escaping); these properties pin the contract the rewrite must keep:
//! `parse(write(doc)) == doc` for documents full of markup
//! metacharacters, CDATA-lookalike text and deep nesting — and the
//! streaming byte writer must produce exactly the tree writer's bytes.
//!
//! Driven by the in-repo mini property harness (`dais_util::prop`);
//! failing cases print a replay seed.

use dais_util::prop::{run_cases, Gen};
use dais_xml::{parse_preserving, to_bytes_into, to_string, XmlElement, XmlNode};

/// Text fragments biased toward what the escaper must get right:
/// the five metacharacters, CDATA-section delimiters, entity-lookalike
/// runs and multi-byte characters.
const NASTY_PIECES: &[&str] = &[
    "&",
    "<",
    ">",
    "'",
    "\"",
    "]]>",
    "<![CDATA[",
    "&amp;",
    "&#60;",
    "a<b&c>d",
    "plain",
    " ",
    "émile—∂x",
];

fn nasty_text(g: &mut Gen, min_pieces: usize, max_pieces: usize) -> String {
    let mut out = String::new();
    for _ in 0..g.usize_in(min_pieces, max_pieces + 1) {
        let piece = *g.pick(NASTY_PIECES);
        out.push_str(piece);
    }
    out
}

/// A random element tree. Text children are always non-empty and never
/// adjacent (the parser coalesces adjacent character data, so a tree
/// violating that could not round-trip structurally).
fn gen_tree(g: &mut Gen, depth: usize) -> XmlElement {
    let mut e = XmlElement::new_local(format!("e{}", g.usize_in(0, 5)));
    for i in 0..g.usize_in(0, 4) {
        e.set_attr(format!("a{i}"), nasty_text(g, 0, 3));
    }
    let children = if depth == 0 { 0 } else { g.usize_in(0, 4) };
    let mut last_was_text = false;
    for _ in 0..children {
        if !last_was_text && g.bool_any() {
            let mut text = nasty_text(g, 1, 3);
            if text.is_empty() {
                text.push('t');
            }
            e.push_text(text);
            last_was_text = true;
        } else {
            e.push(gen_tree(g, depth - 1));
            last_was_text = false;
        }
    }
    e
}

/// `parse(write(doc)) == doc` over metacharacter-heavy random trees.
#[test]
fn write_parse_roundtrip() {
    run_cases("write_parse_roundtrip", 128, 0x31BE, |g| {
        let doc = gen_tree(g, 4);
        let wire = to_string(&doc);
        let back = parse_preserving(&wire).expect("written document must parse");
        assert_eq!(back, doc, "wire form: {wire}");
    });
}

/// Deeply nested linear chains survive the round trip (the parser
/// tracks depth; the writer's explicit scope stack must match it).
#[test]
fn deep_nesting_roundtrip() {
    run_cases("deep_nesting_roundtrip", 32, 0xDEE9, |g| {
        let depth = g.usize_in(1, 100);
        let mut doc = XmlElement::new_local("leaf").with_text(nasty_text(g, 1, 2));
        for i in 0..depth {
            let mut parent = XmlElement::new_local(format!("n{}", i % 7));
            parent.push(doc);
            doc = parent;
        }
        let wire = to_string(&doc);
        let back = parse_preserving(&wire).expect("deep document must parse");
        assert_eq!(back, doc);
    });
}

/// The streaming byte writer is byte-identical to the tree writer for
/// every generated document, and round-trips through the parser.
#[test]
fn streamed_bytes_match_tree_writer() {
    run_cases("streamed_bytes_match_tree_writer", 64, 0xB17E, |g| {
        let doc = gen_tree(g, 3);
        let mut bytes = Vec::new();
        to_bytes_into(&doc, &mut bytes);
        assert_eq!(bytes, to_string(&doc).into_bytes());
        let text = std::str::from_utf8(&bytes).expect("writer emits UTF-8");
        assert_eq!(parse_preserving(text).expect("streamed bytes must parse"), doc);
    });
}

/// Character data is preserved exactly: whatever nasty run we put in a
/// single text child comes back as that exact string.
#[test]
fn text_content_is_lossless() {
    run_cases("text_content_is_lossless", 128, 0x7E47, |g| {
        let text = nasty_text(g, 1, 6);
        let attr = nasty_text(g, 0, 6);
        let mut e = XmlElement::new_local("r");
        e.set_attr("a", &attr);
        e.push_text(&text);
        let back = parse_preserving(&to_string(&e)).unwrap();
        assert_eq!(back.attribute("a"), Some(attr.as_str()));
        assert_eq!(
            back.children.iter().filter(|c| matches!(c, XmlNode::Text(_))).count(),
            1,
            "text must stay a single node"
        );
        assert_eq!(back.text(), text);
    });
}
