//! Property-based tests of the XML toolkit: escaping laws, XPath
//! coercion laws and engine consistency across equivalent expressions.
//!
//! Driven by the in-repo mini property harness (`dais_util::prop`);
//! failing cases print a replay seed.

use dais_util::prop::run_cases;
use dais_xml::{parse, parse_preserving, to_string, XPathExpr, XPathValue, XmlElement};

/// Printable ASCII, the space through tilde range (proptest's old
/// `[ -~]{0,30}` strategy).
const PRINTABLE: &str = " !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";

/// Attribute and text escaping is lossless for printable ASCII
/// (quotes, angle brackets, ampersands and all).
#[test]
fn escaping_roundtrip() {
    run_cases("escaping_roundtrip", 96, 0xE5C, |g| {
        let attr = g.string_from(PRINTABLE, 0, 30);
        let text = g.string_from(PRINTABLE, 0, 30);
        let mut e = XmlElement::new_local("r");
        e.set_attr("a", &attr);
        e.push_text(&text);
        let wire = to_string(&e);
        let back = parse_preserving(&wire).unwrap();
        assert_eq!(back.attribute("a"), Some(attr.as_str()));
        assert_eq!(back.text(), text);
    });
}

/// XPath numeric coercion laws: string(number(n)) == displayed n for
/// integers; boolean() of a non-zero number is true.
#[test]
fn numeric_coercions() {
    run_cases("numeric_coercions", 96, 0x41C, |g| {
        let n = g.u64_in(0, 200_000) as i64 - 100_000;
        let doc = parse(&format!("<r><v>{n}</v></r>")).unwrap();
        let as_number = XPathExpr::parse("number(/r/v)").unwrap().evaluate(&doc).unwrap();
        assert_eq!(as_number.to_number() as i64, n);
        let as_string = XPathExpr::parse("string(number(/r/v))").unwrap().evaluate(&doc).unwrap();
        assert_eq!(as_string.to_xpath_string(), n.to_string());
        let truthy = XPathExpr::parse("boolean(/r/v != 0) = boolean(number(/r/v))")
            .unwrap()
            .evaluate(&doc)
            .unwrap();
        if n != 0 {
            assert!(truthy.to_bool());
        }
    });
}

/// count(//x) equals the number of x elements we built.
#[test]
fn count_matches_construction() {
    run_cases("count_matches_construction", 96, 0xC07, |g| {
        let n = g.usize_in(0, 30);
        let mut root = XmlElement::new_local("root");
        for i in 0..n {
            root.push(XmlElement::new_local("x").with_text(i.to_string()));
        }
        let v = XPathExpr::parse("count(//x)").unwrap().evaluate(&root).unwrap();
        assert_eq!(v.to_number() as usize, n);
        // Equivalent formulations agree.
        let v2 = XPathExpr::parse("count(/root/x)").unwrap().evaluate(&root).unwrap();
        let v3 = XPathExpr::parse("count(root/x)").unwrap().evaluate(&root).unwrap();
        assert_eq!(v.to_number(), v2.to_number());
        assert_eq!(v.to_number(), v3.to_number());
    });
}

/// Positional predicates slice like ranges: /r/x[position() <= k]
/// returns min(k, n) nodes, and x[i] is the i-th built node.
#[test]
fn positional_predicates() {
    run_cases("positional_predicates", 96, 0x905, |g| {
        let n = g.usize_in(1, 20);
        let k = g.usize_in(1, 25);
        let mut root = XmlElement::new_local("r");
        for i in 0..n {
            root.push(XmlElement::new_local("x").with_text(i.to_string()));
        }
        let expr = XPathExpr::parse(&format!("/r/x[position() <= {k}]")).unwrap();
        match expr.evaluate(&root).unwrap() {
            XPathValue::NodeSet(nodes) => assert_eq!(nodes.len(), k.min(n)),
            other => panic!("unexpected {other:?}"),
        }
        let i = (k - 1) % n + 1;
        let expr = XPathExpr::parse(&format!("string(/r/x[{i}])")).unwrap();
        assert_eq!(expr.evaluate(&root).unwrap().to_xpath_string(), (i - 1).to_string());
    });
}

/// Union is commutative and idempotent in cardinality.
#[test]
fn union_laws() {
    run_cases("union_laws", 96, 0x111, |g| {
        let a = g.usize_in(0, 6);
        let b = g.usize_in(0, 6);
        let mut root = XmlElement::new_local("r");
        for _ in 0..a {
            root.push(XmlElement::new_local("p"));
        }
        for _ in 0..b {
            root.push(XmlElement::new_local("q"));
        }
        let n = |src: &str| -> usize {
            match XPathExpr::parse(src).unwrap().evaluate(&root).unwrap() {
                XPathValue::NodeSet(nodes) => nodes.len(),
                _ => usize::MAX,
            }
        };
        assert_eq!(n("//p | //q"), a + b);
        assert_eq!(n("//q | //p"), a + b);
        assert_eq!(n("//p | //p"), a); // dedup
    });
}

/// The filter `[last()]` selects exactly the final sibling.
#[test]
fn last_selects_final() {
    run_cases("last_selects_final", 96, 0x1A5, |g| {
        let n = g.usize_in(1, 15);
        let mut root = XmlElement::new_local("r");
        for i in 0..n {
            root.push(XmlElement::new_local("x").with_attr("i", i.to_string()));
        }
        let v = XPathExpr::parse("string(/r/x[last()]/@i)").unwrap().evaluate(&root).unwrap();
        assert_eq!(v.to_xpath_string(), (n - 1).to_string());
    });
}

/// Arithmetic in XPath agrees with Rust arithmetic on small ints.
#[test]
fn arithmetic_agrees() {
    run_cases("arithmetic_agrees", 96, 0xA17, |g| {
        let a = g.u64_in(0, 100) as i64 - 50;
        let b = g.u64_in(1, 50) as i64;
        let doc = XmlElement::new_local("r");
        let eval = |src: &str| -> f64 {
            XPathExpr::parse(src).unwrap().evaluate(&doc).unwrap().to_number()
        };
        assert_eq!(eval(&format!("{a} + {b}")), (a + b) as f64);
        assert_eq!(eval(&format!("{a} * {b}")), (a * b) as f64);
        assert_eq!(eval(&format!("{a} div {b}")), a as f64 / b as f64);
        assert_eq!(eval(&format!("{a} mod {b}")), (a % b) as f64);
        assert_eq!(eval(&format!("{a} < {b}")) != 0.0, a < b);
    });
}

/// String-value of an element concatenates descendant text in document
/// order — verified against a hand construction.
#[test]
fn string_value_document_order() {
    let doc = parse("<r>a<b>b<c>c</c>d</b>e</r>").unwrap();
    let v = XPathExpr::parse("string(/r)").unwrap().evaluate(&doc).unwrap();
    assert_eq!(v.to_xpath_string(), "abcde");
}
