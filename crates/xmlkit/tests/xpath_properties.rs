//! Property-based tests of the XML toolkit: escaping laws, XPath
//! coercion laws and engine consistency across equivalent expressions.

use dais_xml::{parse, parse_preserving, to_string, XPathExpr, XPathValue, XmlElement};
use proptest::prelude::*;

fn arb_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,30}").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Attribute and text escaping is lossless for printable ASCII
    /// (quotes, angle brackets, ampersands and all).
    #[test]
    fn escaping_roundtrip(attr in arb_text(), text in arb_text()) {
        let mut e = XmlElement::new_local("r");
        e.set_attr("a", &attr);
        e.push_text(&text);
        let wire = to_string(&e);
        let back = parse_preserving(&wire).unwrap();
        prop_assert_eq!(back.attribute("a"), Some(attr.as_str()));
        prop_assert_eq!(back.text(), text);
    }

    /// XPath numeric coercion laws: string(number(n)) == displayed n for
    /// integers; boolean() of a non-zero number is true.
    #[test]
    fn numeric_coercions(n in -100000i64..100000) {
        let doc = parse(&format!("<r><v>{n}</v></r>")).unwrap();
        let as_number = XPathExpr::parse("number(/r/v)").unwrap().evaluate(&doc).unwrap();
        prop_assert_eq!(as_number.to_number() as i64, n);
        let as_string = XPathExpr::parse("string(number(/r/v))").unwrap().evaluate(&doc).unwrap();
        prop_assert_eq!(as_string.to_xpath_string(), n.to_string());
        let truthy = XPathExpr::parse("boolean(/r/v != 0) = boolean(number(/r/v))")
            .unwrap().evaluate(&doc).unwrap();
        if n != 0 {
            prop_assert!(truthy.to_bool());
        }
    }

    /// count(//x) equals the number of x elements we built.
    #[test]
    fn count_matches_construction(n in 0usize..30) {
        let mut root = XmlElement::new_local("root");
        for i in 0..n {
            root.push(XmlElement::new_local("x").with_text(i.to_string()));
        }
        let v = XPathExpr::parse("count(//x)").unwrap().evaluate(&root).unwrap();
        prop_assert_eq!(v.to_number() as usize, n);
        // Equivalent formulations agree.
        let v2 = XPathExpr::parse("count(/root/x)").unwrap().evaluate(&root).unwrap();
        let v3 = XPathExpr::parse("count(root/x)").unwrap().evaluate(&root).unwrap();
        prop_assert_eq!(v.to_number(), v2.to_number());
        prop_assert_eq!(v.to_number(), v3.to_number());
    }

    /// Positional predicates slice like ranges: /r/x[position() <= k]
    /// returns min(k, n) nodes, and x[i] is the i-th built node.
    #[test]
    fn positional_predicates(n in 1usize..20, k in 1usize..25) {
        let mut root = XmlElement::new_local("r");
        for i in 0..n {
            root.push(XmlElement::new_local("x").with_text(i.to_string()));
        }
        let expr = XPathExpr::parse(&format!("/r/x[position() <= {k}]")).unwrap();
        match expr.evaluate(&root).unwrap() {
            XPathValue::NodeSet(nodes) => prop_assert_eq!(nodes.len(), k.min(n)),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
        let i = (k - 1) % n + 1;
        let expr = XPathExpr::parse(&format!("string(/r/x[{i}])")).unwrap();
        prop_assert_eq!(
            expr.evaluate(&root).unwrap().to_xpath_string(),
            (i - 1).to_string()
        );
    }

    /// Union is commutative and idempotent in cardinality.
    #[test]
    fn union_laws(a in 0usize..6, b in 0usize..6) {
        let mut root = XmlElement::new_local("r");
        for _ in 0..a {
            root.push(XmlElement::new_local("p"));
        }
        for _ in 0..b {
            root.push(XmlElement::new_local("q"));
        }
        let n = |src: &str| -> usize {
            match XPathExpr::parse(src).unwrap().evaluate(&root).unwrap() {
                XPathValue::NodeSet(nodes) => nodes.len(),
                _ => usize::MAX,
            }
        };
        prop_assert_eq!(n("//p | //q"), a + b);
        prop_assert_eq!(n("//q | //p"), a + b);
        prop_assert_eq!(n("//p | //p"), a); // dedup
    }

    /// The filter `[last()]` selects exactly the final sibling.
    #[test]
    fn last_selects_final(n in 1usize..15) {
        let mut root = XmlElement::new_local("r");
        for i in 0..n {
            root.push(XmlElement::new_local("x").with_attr("i", i.to_string()));
        }
        let v = XPathExpr::parse("string(/r/x[last()]/@i)").unwrap().evaluate(&root).unwrap();
        prop_assert_eq!(v.to_xpath_string(), (n - 1).to_string());
    }

    /// Arithmetic in XPath agrees with Rust arithmetic on small ints.
    #[test]
    fn arithmetic_agrees(a in -50i64..50, b in 1i64..50) {
        let doc = XmlElement::new_local("r");
        let eval = |src: &str| -> f64 {
            XPathExpr::parse(src).unwrap().evaluate(&doc).unwrap().to_number()
        };
        prop_assert_eq!(eval(&format!("{a} + {b}")), (a + b) as f64);
        prop_assert_eq!(eval(&format!("{a} * {b}")), (a * b) as f64);
        prop_assert_eq!(eval(&format!("{a} div {b}")), a as f64 / b as f64);
        prop_assert_eq!(eval(&format!("{a} mod {b}")), (a % b) as f64);
        prop_assert_eq!(eval(&format!("{a} < {b}")) != 0.0, a < b);
    }
}

/// String-value of an element concatenates descendant text in document
/// order — verified against a hand construction.
#[test]
fn string_value_document_order() {
    let doc = parse("<r>a<b>b<c>c</c>d</b>e</r>").unwrap();
    let v = XPathExpr::parse("string(/r)").unwrap().evaluate(&doc).unwrap();
    assert_eq!(v.to_xpath_string(), "abcde");
}
