//! # dais-xml
//!
//! XML infoset model, parser, serialiser and an XPath 1.0 subset engine.
//!
//! Everything in the DAIS specification family is expressed as XML: SOAP
//! envelopes, WS-Addressing endpoint references, property documents,
//! WebRowSet-encoded relational results and, of course, the XML data
//! resources themselves. This crate is the shared substrate for all of
//! that. It deliberately implements a *namespace-aware subset* of XML 1.0
//! sufficient for protocol work:
//!
//! * elements, attributes, character data, CDATA sections and comments;
//! * namespace declarations (`xmlns` / `xmlns:prefix`) with prefix
//!   resolution at parse time and automatic re-declaration at
//!   serialisation time;
//! * the five predefined entities plus decimal/hex character references.
//!
//! It does **not** implement DTDs, processing instructions or external
//! entities — none of which appear in DAIS messages (and external
//! entities are a well-known security hazard for service endpoints).
//!
//! The [`xpath`] module implements the XPath 1.0 subset used by
//! WS-ResourceProperties `QueryResourceProperties` and by the WS-DAIX
//! `XPathExecute` operation.
//!
//! ## Quick example
//!
//! ```
//! use dais_xml::parse;
//!
//! let doc = parse("<a xmlns='urn:x'><b attr='1'>hi</b></a>").unwrap();
//! assert_eq!(doc.name.local, "a");
//! assert_eq!(doc.name.namespace, "urn:x");
//! let b = doc.child("urn:x", "b").unwrap();
//! assert_eq!(b.attribute("attr"), Some("1"));
//! assert_eq!(b.text(), "hi");
//! ```

pub mod name;
pub mod node;
pub mod parser;
pub mod pull;
pub mod writer;
pub mod xpath;

pub use dais_util::intern::IStr;
pub use name::QName;
pub use node::{Attribute, XmlElement, XmlNode};
pub use parser::{parse, parse_preserving, XmlError};
pub use pull::{PullEvent, PullParser};
pub use writer::{estimated_size, to_bytes_into, to_pretty_string, to_string, XmlSink, XmlWriter};
pub use xpath::{XPathContext, XPathError, XPathExpr, XPathValue};

/// Well-known namespace URIs used throughout the DAIS stack.
pub mod ns {
    /// SOAP 1.1 envelope namespace.
    pub const SOAP_ENV: &str = "http://schemas.xmlsoap.org/soap/envelope/";
    /// WS-Addressing 1.0 core namespace.
    pub const WSA: &str = "http://www.w3.org/2005/08/addressing";
    /// WS-DAI core specification namespace.
    pub const WSDAI: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAI";
    /// WS-DAIR relational realisation namespace.
    pub const WSDAIR: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIR";
    /// WS-DAIX XML realisation namespace.
    pub const WSDAIX: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIX";
    /// WS-ResourceProperties namespace.
    pub const WSRF_RP: &str = "http://docs.oasis-open.org/wsrf/rp-2";
    /// WS-ResourceLifetime namespace.
    pub const WSRF_RL: &str = "http://docs.oasis-open.org/wsrf/rl-2";
    /// CIM (Common Information Model) XML rendering namespace.
    pub const CIM: &str = "http://schemas.dmtf.org/wbem/wscim/1/cim-schema/2";
    /// WebRowSet-style dataset namespace.
    pub const ROWSET: &str = "http://java.sun.com/xml/ns/jdbc";
}
