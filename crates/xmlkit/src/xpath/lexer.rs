//! XPath tokenizer.

use super::XPathError;

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A name token (axis names, node-test names, function names,
    /// operator keywords — disambiguated by the parser).
    Name(String),
    Literal(String),
    Number(f64),
    Variable(String),
    Slash,
    DoubleSlash,
    Dot,
    DotDot,
    At,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Pipe,
    Star,
    Plus,
    Minus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    ColonColon,
    Colon,
}

pub fn tokenize(input: &str) -> Result<Vec<Token>, XPathError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'/' => {
                if bytes.get(pos + 1) == Some(&b'/') {
                    out.push(Token::DoubleSlash);
                    pos += 2;
                } else {
                    out.push(Token::Slash);
                    pos += 1;
                }
            }
            b'.' => {
                if bytes.get(pos + 1) == Some(&b'.') {
                    out.push(Token::DotDot);
                    pos += 2;
                } else if bytes.get(pos + 1).is_some_and(u8::is_ascii_digit) {
                    let (n, next) = lex_number(bytes, pos)?;
                    out.push(Token::Number(n));
                    pos = next;
                } else {
                    out.push(Token::Dot);
                    pos += 1;
                }
            }
            b'@' => {
                out.push(Token::At);
                pos += 1;
            }
            b'[' => {
                out.push(Token::LBracket);
                pos += 1;
            }
            b']' => {
                out.push(Token::RBracket);
                pos += 1;
            }
            b'(' => {
                out.push(Token::LParen);
                pos += 1;
            }
            b')' => {
                out.push(Token::RParen);
                pos += 1;
            }
            b',' => {
                out.push(Token::Comma);
                pos += 1;
            }
            b'|' => {
                out.push(Token::Pipe);
                pos += 1;
            }
            b'*' => {
                out.push(Token::Star);
                pos += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                pos += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                pos += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                pos += 1;
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    pos += 2;
                } else {
                    return Err(XPathError::new("'!' must be followed by '='"));
                }
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    pos += 2;
                } else {
                    out.push(Token::Lt);
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    pos += 2;
                } else {
                    out.push(Token::Gt);
                    pos += 1;
                }
            }
            b':' => {
                if bytes.get(pos + 1) == Some(&b':') {
                    out.push(Token::ColonColon);
                    pos += 2;
                } else {
                    out.push(Token::Colon);
                    pos += 1;
                }
            }
            b'\'' | b'"' => {
                let quote = b;
                let start = pos + 1;
                let mut end = start;
                while end < bytes.len() && bytes[end] != quote {
                    end += 1;
                }
                if end == bytes.len() {
                    return Err(XPathError::new("unterminated string literal"));
                }
                out.push(Token::Literal(String::from_utf8_lossy(&bytes[start..end]).into_owned()));
                pos = end + 1;
            }
            b'$' => {
                pos += 1;
                let start = pos;
                while pos < bytes.len() && is_name_char(bytes[pos]) {
                    pos += 1;
                }
                if pos == start {
                    return Err(XPathError::new("expected variable name after '$'"));
                }
                out.push(Token::Variable(String::from_utf8_lossy(&bytes[start..pos]).into_owned()));
            }
            b'0'..=b'9' => {
                let (n, next) = lex_number(bytes, pos)?;
                out.push(Token::Number(n));
                pos = next;
            }
            _ if is_name_start(b) => {
                let start = pos;
                while pos < bytes.len() && is_name_char(bytes[pos]) {
                    pos += 1;
                }
                out.push(Token::Name(String::from_utf8_lossy(&bytes[start..pos]).into_owned()));
            }
            other => {
                return Err(XPathError::new(format!(
                    "unexpected character '{}' in XPath expression",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.') || b >= 0x80
}

fn lex_number(bytes: &[u8], start: usize) -> Result<(f64, usize), XPathError> {
    let mut pos = start;
    while pos < bytes.len() && (bytes[pos].is_ascii_digit() || bytes[pos] == b'.') {
        pos += 1;
    }
    let text = String::from_utf8_lossy(&bytes[start..pos]);
    text.parse::<f64>()
        .map(|n| (n, pos))
        .map_err(|_| XPathError::new(format!("invalid number '{text}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_paths() {
        let t = tokenize("/a//b[@id='x']").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Slash,
                Token::Name("a".into()),
                Token::DoubleSlash,
                Token::Name("b".into()),
                Token::LBracket,
                Token::At,
                Token::Name("id".into()),
                Token::Eq,
                Token::Literal("x".into()),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn tokenizes_numbers_and_operators() {
        let t = tokenize("1.5 + .5 >= 2").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Number(1.5),
                Token::Plus,
                Token::Number(0.5),
                Token::Ge,
                Token::Number(2.0)
            ]
        );
    }

    #[test]
    fn tokenizes_axes_and_variables() {
        let t = tokenize("child::p:n | $v").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Name("child".into()),
                Token::ColonColon,
                Token::Name("p".into()),
                Token::Colon,
                Token::Name("n".into()),
                Token::Pipe,
                Token::Variable("v".into()),
            ]
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("#").is_err());
        assert!(tokenize("$").is_err());
    }
}
