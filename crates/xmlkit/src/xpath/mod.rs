//! An XPath 1.0 subset engine.
//!
//! Supports the portions of XPath 1.0 used by DAIS services:
//!
//! * location paths over the `child`, `descendant`, `descendant-or-self`,
//!   `self`, `parent`, `ancestor`, `ancestor-or-self`, `attribute`,
//!   `following-sibling` and `preceding-sibling` axes, including all
//!   abbreviated forms (`//`, `.`, `..`, `@`);
//! * node tests: qualified/wildcard name tests, `node()`, `text()`,
//!   `comment()`;
//! * predicates with positional semantics;
//! * the full expression grammar: `or`/`and`, (in)equality and relational
//!   comparisons with node-set semantics, arithmetic (`+ - * div mod`,
//!   unary minus), union (`|`), filter expressions and parentheses;
//! * the core function library;
//! * scalar variable references (`$name`) — node-set variables are the
//!   business of the XQuery layer, which re-roots relative paths instead.
//!
//! Name tests follow the XPath 1.0 rule: an unprefixed name matches names
//! in *no* namespace; prefixed names are resolved against the
//! [`XPathContext`] namespace bindings (as WSRF `QueryResourceProperties`
//! does with the query element's in-scope namespaces).
//!
//! ```
//! use dais_xml::{parse, XPathExpr, XPathValue};
//!
//! let doc = parse("<inv><item price='3'/><item price='4'/></inv>").unwrap();
//! let expr = XPathExpr::parse("sum(/inv/item/@price)").unwrap();
//! match expr.evaluate(&doc).unwrap() {
//!     XPathValue::Number(n) => assert_eq!(n, 7.0),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

mod ast;
mod eval;
mod lexer;
mod parser;

pub use ast::Expr;
pub use eval::{NodePath, PathStep, XPathContext, XPathNode, XPathValue};

use std::fmt;

/// A parsed, reusable XPath expression.
#[derive(Debug, Clone)]
pub struct XPathExpr {
    pub(crate) ast: ast::Expr,
    source: String,
}

/// A parse- or evaluation-time XPath error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    pub message: String,
}

impl XPathError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        XPathError { message: message.into() }
    }
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error: {}", self.message)
    }
}

impl std::error::Error for XPathError {}

impl XPathExpr {
    /// Parse an expression. The resulting value can be evaluated any
    /// number of times against different documents.
    pub fn parse(source: &str) -> Result<Self, XPathError> {
        let tokens = lexer::tokenize(source)?;
        let ast = parser::parse_tokens(&tokens)?;
        Ok(XPathExpr { ast, source: source.to_string() })
    }

    /// The original expression text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Evaluate against a document rooted at `root`, with an empty context.
    /// The context node is the (virtual) document root, so both `/doc/x`
    /// and `doc/x` address into the tree.
    pub fn evaluate(&self, root: &crate::XmlElement) -> Result<XPathValue, XPathError> {
        self.evaluate_with(root, &XPathContext::default())
    }

    /// Evaluate with namespace bindings and scalar variables.
    pub fn evaluate_with(
        &self,
        root: &crate::XmlElement,
        context: &XPathContext,
    ) -> Result<XPathValue, XPathError> {
        eval::evaluate(&self.ast, root, context)
    }

    /// Evaluate with the document element itself as the context node
    /// (instead of the virtual root). `title` then means "child `title`
    /// of this element" — the mode used for XQuery `$var/path` steps.
    pub fn evaluate_element_context(
        &self,
        element: &crate::XmlElement,
        context: &XPathContext,
    ) -> Result<XPathValue, XPathError> {
        eval::evaluate_element_context(&self.ast, element, context)
    }

    /// Evaluate to the structural paths of the selected nodes (document
    /// order). This is the mutation hook used by XUpdate: paths remain
    /// valid addresses into the unmodified document.
    pub fn select_paths(
        &self,
        root: &crate::XmlElement,
        context: &XPathContext,
    ) -> Result<Vec<NodePath>, XPathError> {
        eval::evaluate_paths(&self.ast, root, context)
    }

    /// Convenience: evaluate and return matching elements (ignoring any
    /// non-element results), cloned out of the document.
    pub fn select_elements(
        &self,
        root: &crate::XmlElement,
    ) -> Result<Vec<crate::XmlElement>, XPathError> {
        match self.evaluate(root)? {
            XPathValue::NodeSet(nodes) => Ok(nodes
                .into_iter()
                .filter_map(|n| match n {
                    XPathNode::Element(e) | XPathNode::Root(e) => Some(e),
                    _ => None,
                })
                .collect()),
            _ => Ok(Vec::new()),
        }
    }
}
