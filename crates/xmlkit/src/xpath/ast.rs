//! XPath abstract syntax.

/// An XPath axis (the supported subset of the thirteen XPath 1.0 axes).
// `SelfAxis`: `Self` is a reserved identifier.
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    SelfAxis,
    Parent,
    Ancestor,
    AncestorOrSelf,
    Attribute,
    FollowingSibling,
    PrecedingSibling,
}

impl Axis {
    /// Parse an axis name as it appears before `::`.
    pub fn from_name(name: &str) -> Option<Axis> {
        Some(match name {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "self" => Axis::SelfAxis,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "attribute" => Axis::Attribute,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            _ => return None,
        })
    }

    /// True for axes that walk in reverse document order (affects the
    /// meaning of positional predicates).
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf | Axis::PrecedingSibling
        )
    }
}

/// A node test within a step.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// `name` or `prefix:name`; prefix resolved via the evaluation context.
    Name { prefix: Option<String>, local: String },
    /// `prefix:*`
    NamespaceWildcard { prefix: String },
    /// `*`
    AnyName,
    /// `node()`
    AnyNode,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
}

/// One location step: `axis::test[pred]*`.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
    pub predicates: Vec<Expr>,
}

/// A location path.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Absolute paths start at the document root.
    pub absolute: bool,
    pub steps: Vec<Step>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Union,
}

/// An XPath expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Path(Path),
    /// A primary expression filtered by predicates and optionally followed
    /// by a relative path, e.g. `(//a)[1]/b`.
    Filter {
        primary: Box<Expr>,
        predicates: Vec<Expr>,
        path: Option<Path>,
    },
    Literal(String),
    Number(f64),
    Variable(String),
    Call {
        name: String,
        args: Vec<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Negate(Box<Expr>),
}
