//! XPath evaluation over an [`XmlElement`] tree.
//!
//! Evaluation builds a transient arena index over the borrowed document so
//! that parent navigation, document order and node identity are available
//! without mutating the value-typed tree. Arena node ids are assigned in
//! document order (pre-order, attributes immediately after their element),
//! so merging node-sets is a sort-and-dedup over ids.

use super::ast::{Axis, BinOp, Expr, NodeTest, Path, Step};
use super::XPathError;
use crate::name::QName;
use crate::node::{XmlElement, XmlNode};
use std::collections::HashMap;

/// The result of evaluating an XPath expression: one of the four XPath 1.0
/// value types. Node-set members are cloned out of the document.
#[derive(Debug, Clone, PartialEq)]
pub enum XPathValue {
    NodeSet(Vec<XPathNode>),
    Boolean(bool),
    Number(f64),
    String(String),
}

/// A node selected by an expression, detached from the source document.
#[derive(Debug, Clone, PartialEq)]
pub enum XPathNode {
    /// The virtual document root (carrying a clone of the root element).
    Root(XmlElement),
    Element(XmlElement),
    Attribute {
        name: QName,
        value: String,
    },
    Text(String),
    Comment(String),
}

impl XPathNode {
    /// The XPath string-value of the node.
    pub fn string_value(&self) -> String {
        match self {
            XPathNode::Root(e) | XPathNode::Element(e) => e.text(),
            XPathNode::Attribute { value, .. } => value.clone(),
            XPathNode::Text(t) | XPathNode::Comment(t) => t.clone(),
        }
    }
}

impl XPathValue {
    /// XPath `boolean()` coercion.
    pub fn to_bool(&self) -> bool {
        match self {
            XPathValue::NodeSet(n) => !n.is_empty(),
            XPathValue::Boolean(b) => *b,
            XPathValue::Number(n) => *n != 0.0 && !n.is_nan(),
            XPathValue::String(s) => !s.is_empty(),
        }
    }

    /// XPath `number()` coercion.
    pub fn to_number(&self) -> f64 {
        match self {
            XPathValue::NodeSet(_) | XPathValue::String(_) => {
                str_to_number(&self.to_xpath_string())
            }
            XPathValue::Boolean(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            XPathValue::Number(n) => *n,
        }
    }

    /// XPath `string()` coercion (first node's string-value for node-sets).
    pub fn to_xpath_string(&self) -> String {
        match self {
            XPathValue::NodeSet(n) => n.first().map(XPathNode::string_value).unwrap_or_default(),
            XPathValue::Boolean(b) => b.to_string(),
            XPathValue::Number(n) => number_to_string(*n),
            XPathValue::String(s) => s.clone(),
        }
    }
}

/// Evaluation context: namespace bindings for prefixed name tests and
/// scalar variable values.
#[derive(Debug, Clone, Default)]
pub struct XPathContext {
    namespaces: HashMap<String, String>,
    variables: HashMap<String, XPathValue>,
}

impl XPathContext {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `prefix` to a namespace URI for name tests.
    pub fn bind_namespace(&mut self, prefix: impl Into<String>, uri: impl Into<String>) {
        self.namespaces.insert(prefix.into(), uri.into());
    }

    /// Bind a scalar variable. Node-set variables are intentionally not
    /// supported (see module docs of [`super`]).
    pub fn bind_variable(&mut self, name: impl Into<String>, value: XPathValue) {
        self.variables.insert(name.into(), value);
    }

    pub fn with_namespace(mut self, prefix: impl Into<String>, uri: impl Into<String>) -> Self {
        self.bind_namespace(prefix, uri);
        self
    }

    pub fn with_variable(mut self, name: impl Into<String>, value: XPathValue) -> Self {
        self.bind_variable(name, value);
        self
    }
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum Kind<'a> {
    Root,
    Element(&'a XmlElement),
    Text(&'a str),
    Comment(&'a str),
    Attribute(&'a crate::node::Attribute),
}

/// One step in a structural path from the document element to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStep {
    /// Index into `XmlElement::children`.
    Child(usize),
    /// Index into `XmlElement::attributes`.
    Attribute(usize),
}

/// A structural address of a node: child/attribute indices starting from
/// the document element (an empty path is the document element itself).
/// Used by XUpdate to mutate the nodes an expression selected.
pub type NodePath = Vec<PathStep>;

struct Entry<'a> {
    kind: Kind<'a>,
    parent: Option<usize>,
    children: Vec<usize>,
    attributes: Vec<usize>,
    /// Structural path from the document element; `None` for the virtual
    /// root node.
    path: Option<NodePath>,
}

struct Arena<'a> {
    entries: Vec<Entry<'a>>,
}

impl<'a> Arena<'a> {
    fn build(root: &'a XmlElement) -> Arena<'a> {
        let mut arena = Arena { entries: Vec::with_capacity(root.node_count() + 1) };
        arena.entries.push(Entry {
            kind: Kind::Root,
            parent: None,
            children: Vec::new(),
            attributes: Vec::new(),
            path: None,
        });
        let id = arena.add_element(root, 0, Vec::new());
        arena.entries[0].children.push(id);
        arena
    }

    fn add_element(&mut self, element: &'a XmlElement, parent: usize, path: NodePath) -> usize {
        let id = self.entries.len();
        self.entries.push(Entry {
            kind: Kind::Element(element),
            parent: Some(parent),
            children: Vec::new(),
            attributes: Vec::new(),
            path: Some(path.clone()),
        });
        for (j, attr) in element.attributes.iter().enumerate() {
            let aid = self.entries.len();
            let mut apath = path.clone();
            apath.push(PathStep::Attribute(j));
            self.entries.push(Entry {
                kind: Kind::Attribute(attr),
                parent: Some(id),
                children: Vec::new(),
                attributes: Vec::new(),
                path: Some(apath),
            });
            self.entries[id].attributes.push(aid);
        }
        for (i, child) in element.children.iter().enumerate() {
            let mut cpath = path.clone();
            cpath.push(PathStep::Child(i));
            let cid = match child {
                XmlNode::Element(e) => self.add_element(e, id, cpath),
                XmlNode::Text(t) | XmlNode::CData(t) => {
                    let cid = self.entries.len();
                    self.entries.push(Entry {
                        kind: Kind::Text(t),
                        parent: Some(id),
                        children: Vec::new(),
                        attributes: Vec::new(),
                        path: Some(cpath),
                    });
                    cid
                }
                XmlNode::Comment(t) => {
                    let cid = self.entries.len();
                    self.entries.push(Entry {
                        kind: Kind::Comment(t),
                        parent: Some(id),
                        children: Vec::new(),
                        attributes: Vec::new(),
                        path: Some(cpath),
                    });
                    cid
                }
            };
            self.entries[id].children.push(cid);
        }
        id
    }

    fn string_value(&self, id: usize) -> String {
        match self.entries[id].kind {
            Kind::Root => self.entries[id].children.iter().map(|&c| self.string_value(c)).collect(),
            Kind::Element(e) => e.text(),
            Kind::Text(t) | Kind::Comment(t) => t.to_string(),
            Kind::Attribute(a) => a.value.clone(),
        }
    }

    fn detach(&self, id: usize) -> XPathNode {
        match self.entries[id].kind {
            Kind::Root => {
                let root = self.entries[0]
                    .children
                    .first()
                    .and_then(|&c| match self.entries[c].kind {
                        Kind::Element(e) => Some(e.clone()),
                        _ => None,
                    })
                    .unwrap_or_default();
                XPathNode::Root(root)
            }
            Kind::Element(e) => XPathNode::Element(e.clone()),
            Kind::Text(t) => XPathNode::Text(t.to_string()),
            Kind::Comment(t) => XPathNode::Comment(t.to_string()),
            Kind::Attribute(a) => {
                XPathNode::Attribute { name: a.name.clone(), value: a.value.clone() }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// Internal value: node-sets as arena ids.
#[derive(Debug, Clone)]
enum V {
    Nodes(Vec<usize>),
    Bool(bool),
    Num(f64),
    Str(String),
}

pub(super) fn evaluate(
    expr: &Expr,
    root: &XmlElement,
    context: &XPathContext,
) -> Result<XPathValue, XPathError> {
    evaluate_from(expr, root, context, false)
}

/// Evaluate with the document *element* (rather than the virtual root) as
/// the context node — the mode the XQuery layer uses for `$var/path`
/// expressions, where the bound element itself is the context.
pub(super) fn evaluate_element_context(
    expr: &Expr,
    root: &XmlElement,
    context: &XPathContext,
) -> Result<XPathValue, XPathError> {
    evaluate_from(expr, root, context, true)
}

fn evaluate_from(
    expr: &Expr,
    root: &XmlElement,
    context: &XPathContext,
    element_context: bool,
) -> Result<XPathValue, XPathError> {
    let arena = Arena::build(root);
    let ev = Evaluator { arena: &arena, ctx: context };
    let start = if element_context { 1 } else { 0 };
    let v = ev.eval(expr, start, 1, 1)?;
    Ok(match v {
        V::Nodes(ids) => XPathValue::NodeSet(ids.iter().map(|&id| arena.detach(id)).collect()),
        V::Bool(b) => XPathValue::Boolean(b),
        V::Num(n) => XPathValue::Number(n),
        V::Str(s) => XPathValue::String(s),
    })
}

/// Evaluate a node-set expression to the structural paths of the selected
/// nodes (document order). Non-node results yield an error; the virtual
/// root maps to the empty path.
pub(super) fn evaluate_paths(
    expr: &Expr,
    root: &XmlElement,
    context: &XPathContext,
) -> Result<Vec<NodePath>, XPathError> {
    let arena = Arena::build(root);
    let ev = Evaluator { arena: &arena, ctx: context };
    match ev.eval(expr, 0, 1, 1)? {
        V::Nodes(ids) => {
            Ok(ids.iter().map(|&id| arena.entries[id].path.clone().unwrap_or_default()).collect())
        }
        _ => Err(XPathError::new("expression does not select nodes")),
    }
}

struct Evaluator<'a, 'c> {
    arena: &'a Arena<'a>,
    ctx: &'c XPathContext,
}

impl<'a, 'c> Evaluator<'a, 'c> {
    fn eval(&self, expr: &Expr, node: usize, pos: usize, size: usize) -> Result<V, XPathError> {
        match expr {
            Expr::Literal(s) => Ok(V::Str(s.clone())),
            Expr::Number(n) => Ok(V::Num(*n)),
            Expr::Variable(name) => match self.ctx.variables.get(name) {
                Some(XPathValue::Boolean(b)) => Ok(V::Bool(*b)),
                Some(XPathValue::Number(n)) => Ok(V::Num(*n)),
                Some(XPathValue::String(s)) => Ok(V::Str(s.clone())),
                Some(XPathValue::NodeSet(_)) => Err(XPathError::new(format!(
                    "variable ${name} holds a node-set; only scalar variables are supported"
                ))),
                None => Err(XPathError::new(format!("undefined variable ${name}"))),
            },
            Expr::Path(path) => Ok(V::Nodes(self.eval_path(path, node)?)),
            Expr::Filter { primary, predicates, path } => {
                let base = self.eval(primary, node, pos, size)?;
                let V::Nodes(mut ids) = base else {
                    return Err(XPathError::new("predicates require a node-set operand"));
                };
                for pred in predicates {
                    ids = self.filter(&ids, pred, false)?;
                }
                if let Some(p) = path {
                    let mut out = Vec::new();
                    for id in ids {
                        out.extend(self.eval_path_from(&p.steps, id)?);
                    }
                    out.sort_unstable();
                    out.dedup();
                    ids = out;
                }
                Ok(V::Nodes(ids))
            }
            Expr::Negate(inner) => {
                let v = self.eval(inner, node, pos, size)?;
                Ok(V::Num(-self.num(v)))
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs, node, pos, size),
            Expr::Call { name, args } => self.eval_call(name, args, node, pos, size),
        }
    }

    fn eval_binary(
        &self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        node: usize,
        pos: usize,
        size: usize,
    ) -> Result<V, XPathError> {
        match op {
            BinOp::Or => {
                let l = self.eval(lhs, node, pos, size)?;
                if self.boolean(&l) {
                    return Ok(V::Bool(true));
                }
                let r = self.eval(rhs, node, pos, size)?;
                Ok(V::Bool(self.boolean(&r)))
            }
            BinOp::And => {
                let l = self.eval(lhs, node, pos, size)?;
                if !self.boolean(&l) {
                    return Ok(V::Bool(false));
                }
                let r = self.eval(rhs, node, pos, size)?;
                Ok(V::Bool(self.boolean(&r)))
            }
            BinOp::Union => {
                let l = self.eval(lhs, node, pos, size)?;
                let r = self.eval(rhs, node, pos, size)?;
                match (l, r) {
                    (V::Nodes(mut a), V::Nodes(b)) => {
                        a.extend(b);
                        a.sort_unstable();
                        a.dedup();
                        Ok(V::Nodes(a))
                    }
                    _ => Err(XPathError::new("'|' requires node-set operands")),
                }
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let l = self.num(self.eval(lhs, node, pos, size)?);
                let r = self.num(self.eval(rhs, node, pos, size)?);
                Ok(V::Num(match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                    BinOp::Div => l / r,
                    BinOp::Mod => l % r,
                    _ => unreachable!(),
                }))
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let l = self.eval(lhs, node, pos, size)?;
                let r = self.eval(rhs, node, pos, size)?;
                Ok(V::Bool(self.compare(op, &l, &r)))
            }
        }
    }

    /// Comparison with XPath node-set existence semantics.
    fn compare(&self, op: BinOp, l: &V, r: &V) -> bool {
        use BinOp::*;
        match (l, r) {
            (V::Nodes(a), V::Nodes(b)) => a.iter().any(|&x| {
                let xs = self.arena.string_value(x);
                b.iter().any(|&y| {
                    let ys = self.arena.string_value(y);
                    match op {
                        Eq => xs == ys,
                        Ne => xs != ys,
                        _ => cmp_num(op, str_to_number(&xs), str_to_number(&ys)),
                    }
                })
            }),
            (V::Nodes(a), other) | (other, V::Nodes(a)) => {
                // Orient so the node-set is on the left for relational ops.
                let flipped = !matches!(l, V::Nodes(_));
                a.iter().any(|&x| {
                    let xs = self.arena.string_value(x);
                    match (op, other) {
                        (Eq, V::Bool(b)) => a.is_empty() != *b,
                        (Ne, V::Bool(b)) => a.is_empty() == *b,
                        (Eq, V::Num(n)) => str_to_number(&xs) == *n,
                        (Ne, V::Num(n)) => str_to_number(&xs) != *n,
                        (Eq, V::Str(s)) => &xs == s,
                        (Ne, V::Str(s)) => &xs != s,
                        (_, v) => {
                            let n = match v {
                                V::Num(n) => *n,
                                V::Str(s) => str_to_number(s),
                                V::Bool(b) => {
                                    if *b {
                                        1.0
                                    } else {
                                        0.0
                                    }
                                }
                                V::Nodes(_) => unreachable!(),
                            };
                            let x = str_to_number(&xs);
                            if flipped {
                                cmp_num(op, n, x)
                            } else {
                                cmp_num(op, x, n)
                            }
                        }
                    }
                })
            }
            _ => match op {
                Eq | Ne => {
                    let eq = match (l, r) {
                        (V::Bool(_), _) | (_, V::Bool(_)) => self.boolean(l) == self.boolean(r),
                        (V::Num(_), _) | (_, V::Num(_)) => {
                            self.num(l.clone()) == self.num(r.clone())
                        }
                        _ => self.string(l.clone()) == self.string(r.clone()),
                    };
                    if op == Eq {
                        eq
                    } else {
                        !eq
                    }
                }
                _ => cmp_num(op, self.num(l.clone()), self.num(r.clone())),
            },
        }
    }

    // -- paths --------------------------------------------------------------

    fn eval_path(&self, path: &Path, context_node: usize) -> Result<Vec<usize>, XPathError> {
        let start = if path.absolute { 0 } else { context_node };
        self.eval_path_from(&path.steps, start)
    }

    fn eval_path_from(&self, steps: &[Step], start: usize) -> Result<Vec<usize>, XPathError> {
        let mut current = vec![start];
        for step in steps {
            let mut next: Vec<usize> = Vec::new();
            for &node in &current {
                let mut candidates = self.axis_nodes(step.axis, node);
                candidates.retain(|&c| self.matches_test(&step.test, step.axis, c));
                let reverse = step.axis.is_reverse();
                let mut selected = candidates;
                for pred in &step.predicates {
                    selected = self.filter(&selected, pred, reverse)?;
                }
                next.extend(selected);
            }
            next.sort_unstable();
            next.dedup();
            current = next;
        }
        Ok(current)
    }

    /// Apply one predicate to a candidate list (in axis order).
    fn filter(
        &self,
        nodes: &[usize],
        pred: &Expr,
        reverse: bool,
    ) -> Result<Vec<usize>, XPathError> {
        let size = nodes.len();
        let mut out = Vec::with_capacity(size);
        // Axis order for positional predicates: reverse axes count from the end.
        let order: Vec<usize> = if reverse {
            let mut v: Vec<usize> = nodes.to_vec();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v
        } else {
            nodes.to_vec()
        };
        for (i, &node) in order.iter().enumerate() {
            let v = self.eval(pred, node, i + 1, size)?;
            let keep = match v {
                // A numeric predicate selects by position.
                V::Num(n) => (i + 1) as f64 == n,
                other => self.boolean(&other),
            };
            if keep {
                out.push(node);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn axis_nodes(&self, axis: Axis, node: usize) -> Vec<usize> {
        let entry = &self.arena.entries[node];
        match axis {
            Axis::Child => entry.children.clone(),
            Axis::Attribute => entry.attributes.clone(),
            Axis::SelfAxis => vec![node],
            Axis::Parent => entry.parent.into_iter().collect(),
            Axis::Ancestor => {
                let mut out = Vec::new();
                let mut cur = entry.parent;
                while let Some(p) = cur {
                    out.push(p);
                    cur = self.arena.entries[p].parent;
                }
                out
            }
            Axis::AncestorOrSelf => {
                let mut out = vec![node];
                out.extend(self.axis_nodes(Axis::Ancestor, node));
                out
            }
            Axis::Descendant => {
                let mut out = Vec::new();
                self.collect_descendants(node, &mut out);
                out
            }
            Axis::DescendantOrSelf => {
                let mut out = vec![node];
                self.collect_descendants(node, &mut out);
                out
            }
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                let Some(parent) = entry.parent else { return Vec::new() };
                let siblings = &self.arena.entries[parent].children;
                let Some(idx) = siblings.iter().position(|&s| s == node) else {
                    return Vec::new(); // attributes have no siblings
                };
                if axis == Axis::FollowingSibling {
                    siblings[idx + 1..].to_vec()
                } else {
                    siblings[..idx].to_vec()
                }
            }
        }
    }

    fn collect_descendants(&self, node: usize, out: &mut Vec<usize>) {
        for &c in &self.arena.entries[node].children {
            out.push(c);
            self.collect_descendants(c, out);
        }
    }

    fn matches_test(&self, test: &NodeTest, axis: Axis, node: usize) -> bool {
        let kind = self.arena.entries[node].kind;
        let name: Option<&QName> = match kind {
            Kind::Element(e) => Some(&e.name),
            Kind::Attribute(a) => Some(&a.name),
            _ => None,
        };
        match test {
            NodeTest::AnyNode => true,
            NodeTest::Text => matches!(kind, Kind::Text(_)),
            NodeTest::Comment => matches!(kind, Kind::Comment(_)),
            NodeTest::AnyName => {
                // The principal node type: attributes on the attribute
                // axis, elements elsewhere.
                if axis == Axis::Attribute {
                    matches!(kind, Kind::Attribute(_))
                } else {
                    matches!(kind, Kind::Element(_))
                }
            }
            NodeTest::NamespaceWildcard { prefix } => {
                let Some(name) = name else { return false };
                let principal_ok = if axis == Axis::Attribute {
                    matches!(kind, Kind::Attribute(_))
                } else {
                    matches!(kind, Kind::Element(_))
                };
                principal_ok
                    && self.ctx.namespaces.get(prefix).map(String::as_str)
                        == Some(name.namespace.as_str())
            }
            NodeTest::Name { prefix, local } => {
                let Some(name) = name else { return false };
                let principal_ok = if axis == Axis::Attribute {
                    matches!(kind, Kind::Attribute(_))
                } else {
                    matches!(kind, Kind::Element(_))
                };
                if !principal_ok || &name.local != local {
                    return false;
                }
                match prefix {
                    None => name.namespace.is_empty(),
                    Some(p) => {
                        self.ctx.namespaces.get(p).map(String::as_str)
                            == Some(name.namespace.as_str())
                    }
                }
            }
        }
    }

    // -- functions ------------------------------------------------------------

    fn eval_call(
        &self,
        name: &str,
        args: &[Expr],
        node: usize,
        pos: usize,
        size: usize,
    ) -> Result<V, XPathError> {
        let arity = |n: usize| -> Result<(), XPathError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(XPathError::new(format!(
                    "{name}() expects {n} argument(s), got {}",
                    args.len()
                )))
            }
        };
        let eval_arg = |i: usize| self.eval(&args[i], node, pos, size);

        match name {
            "last" => {
                arity(0)?;
                Ok(V::Num(size as f64))
            }
            "position" => {
                arity(0)?;
                Ok(V::Num(pos as f64))
            }
            "count" => {
                arity(1)?;
                match eval_arg(0)? {
                    V::Nodes(n) => Ok(V::Num(n.len() as f64)),
                    _ => Err(XPathError::new("count() requires a node-set")),
                }
            }
            "name" | "local-name" | "namespace-uri" => {
                let target = if args.is_empty() {
                    Some(node)
                } else {
                    arity(1)?;
                    match eval_arg(0)? {
                        V::Nodes(n) => n.first().copied(),
                        _ => return Err(XPathError::new(format!("{name}() requires a node-set"))),
                    }
                };
                let qname: Option<QName> = target.and_then(|t| match self.arena.entries[t].kind {
                    Kind::Element(e) => Some(e.name.clone()),
                    Kind::Attribute(a) => Some(a.name.clone()),
                    _ => None,
                });
                Ok(V::Str(match (name, qname) {
                    (_, None) => String::new(),
                    ("name", Some(q)) => q.lexical(),
                    ("local-name", Some(q)) => q.local.into(),
                    ("namespace-uri", Some(q)) => q.namespace.into(),
                    _ => unreachable!(),
                }))
            }
            "string" => {
                if args.is_empty() {
                    Ok(V::Str(self.arena.string_value(node)))
                } else {
                    arity(1)?;
                    Ok(V::Str(self.string(eval_arg(0)?)))
                }
            }
            "concat" => {
                if args.len() < 2 {
                    return Err(XPathError::new("concat() expects at least 2 arguments"));
                }
                let mut out = String::new();
                for i in 0..args.len() {
                    out.push_str(&self.string(eval_arg(i)?));
                }
                Ok(V::Str(out))
            }
            "starts-with" => {
                arity(2)?;
                let a = self.string(eval_arg(0)?);
                let b = self.string(eval_arg(1)?);
                Ok(V::Bool(a.starts_with(&b)))
            }
            "contains" => {
                arity(2)?;
                let a = self.string(eval_arg(0)?);
                let b = self.string(eval_arg(1)?);
                Ok(V::Bool(a.contains(&b)))
            }
            "substring-before" => {
                arity(2)?;
                let a = self.string(eval_arg(0)?);
                let b = self.string(eval_arg(1)?);
                Ok(V::Str(a.split_once(&b).map(|(x, _)| x.to_string()).unwrap_or_default()))
            }
            "substring-after" => {
                arity(2)?;
                let a = self.string(eval_arg(0)?);
                let b = self.string(eval_arg(1)?);
                Ok(V::Str(a.split_once(&b).map(|(_, y)| y.to_string()).unwrap_or_default()))
            }
            "substring" => {
                if args.len() != 2 && args.len() != 3 {
                    return Err(XPathError::new("substring() expects 2 or 3 arguments"));
                }
                let s: Vec<char> = self.string(eval_arg(0)?).chars().collect();
                let start = self.num(eval_arg(1)?);
                let len = if args.len() == 3 { self.num(eval_arg(2)?) } else { f64::INFINITY };
                // XPath rounds and uses 1-based positions.
                let begin = round_half_up(start);
                let end =
                    if len.is_infinite() { f64::INFINITY } else { begin + round_half_up(len) };
                let mut out = String::new();
                for (i, c) in s.iter().enumerate() {
                    let p = (i + 1) as f64;
                    if p >= begin && p < end {
                        out.push(*c);
                    }
                }
                Ok(V::Str(out))
            }
            "string-length" => {
                let s = if args.is_empty() {
                    self.arena.string_value(node)
                } else {
                    arity(1)?;
                    self.string(eval_arg(0)?)
                };
                Ok(V::Num(s.chars().count() as f64))
            }
            "normalize-space" => {
                let s = if args.is_empty() {
                    self.arena.string_value(node)
                } else {
                    arity(1)?;
                    self.string(eval_arg(0)?)
                };
                Ok(V::Str(s.split_whitespace().collect::<Vec<_>>().join(" ")))
            }
            "translate" => {
                arity(3)?;
                let s = self.string(eval_arg(0)?);
                let from: Vec<char> = self.string(eval_arg(1)?).chars().collect();
                let to: Vec<char> = self.string(eval_arg(2)?).chars().collect();
                let mut out = String::new();
                for c in s.chars() {
                    match from.iter().position(|&f| f == c) {
                        Some(i) => {
                            if let Some(&r) = to.get(i) {
                                out.push(r);
                            } // else: dropped
                        }
                        None => out.push(c),
                    }
                }
                Ok(V::Str(out))
            }
            "boolean" => {
                arity(1)?;
                let v = eval_arg(0)?;
                Ok(V::Bool(self.boolean(&v)))
            }
            "not" => {
                arity(1)?;
                let v = eval_arg(0)?;
                Ok(V::Bool(!self.boolean(&v)))
            }
            "true" => {
                arity(0)?;
                Ok(V::Bool(true))
            }
            "false" => {
                arity(0)?;
                Ok(V::Bool(false))
            }
            "number" => {
                if args.is_empty() {
                    Ok(V::Num(str_to_number(&self.arena.string_value(node))))
                } else {
                    arity(1)?;
                    Ok(V::Num(self.num(eval_arg(0)?)))
                }
            }
            "sum" => {
                arity(1)?;
                match eval_arg(0)? {
                    V::Nodes(n) => Ok(V::Num(
                        n.iter().map(|&id| str_to_number(&self.arena.string_value(id))).sum(),
                    )),
                    _ => Err(XPathError::new("sum() requires a node-set")),
                }
            }
            "floor" => {
                arity(1)?;
                Ok(V::Num(self.num(eval_arg(0)?).floor()))
            }
            "ceiling" => {
                arity(1)?;
                Ok(V::Num(self.num(eval_arg(0)?).ceil()))
            }
            "round" => {
                arity(1)?;
                Ok(V::Num(round_half_up(self.num(eval_arg(0)?))))
            }
            other => Err(XPathError::new(format!("unknown function {other}()"))),
        }
    }

    // -- coercions over internal values --------------------------------------

    fn boolean(&self, v: &V) -> bool {
        match v {
            V::Nodes(n) => !n.is_empty(),
            V::Bool(b) => *b,
            V::Num(n) => *n != 0.0 && !n.is_nan(),
            V::Str(s) => !s.is_empty(),
        }
    }

    fn num(&self, v: V) -> f64 {
        match v {
            V::Nodes(_) => str_to_number(&self.string(v)),
            V::Bool(b) => {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
            V::Num(n) => n,
            V::Str(s) => str_to_number(&s),
        }
    }

    fn string(&self, v: V) -> String {
        match v {
            V::Nodes(n) => n.first().map(|&id| self.arena.string_value(id)).unwrap_or_default(),
            V::Bool(b) => b.to_string(),
            V::Num(n) => number_to_string(n),
            V::Str(s) => s,
        }
    }
}

fn cmp_num(op: BinOp, l: f64, r: f64) -> bool {
    match op {
        BinOp::Lt => l < r,
        BinOp::Le => l <= r,
        BinOp::Gt => l > r,
        BinOp::Ge => l >= r,
        BinOp::Eq => l == r,
        BinOp::Ne => l != r,
        _ => false,
    }
}

/// XPath `number()` from string: trimmed decimal or NaN.
pub(crate) fn str_to_number(s: &str) -> f64 {
    let t = s.trim();
    if t.is_empty() {
        return f64::NAN;
    }
    t.parse::<f64>().unwrap_or(f64::NAN)
}

/// XPath number-to-string: integers without a decimal point.
pub(crate) fn number_to_string(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 {
            "Infinity".to_string()
        } else {
            "-Infinity".to_string()
        }
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// XPath round(): half rounds towards positive infinity.
fn round_half_up(n: f64) -> f64 {
    (n + 0.5).floor()
}

#[cfg(test)]
mod tests {
    use super::super::{XPathContext, XPathExpr, XPathValue};
    use crate::parse;
    use crate::XmlElement;

    fn doc() -> XmlElement {
        parse(
            "<library>\
               <book id='1' genre='db'><title>TP</title><price>50</price></book>\
               <book id='2' genre='db'><title>DDIA</title><price>40</price></book>\
               <book id='3' genre='os'><title>OSTEP</title><price>0</price></book>\
               <meta><count>3</count></meta>\
             </library>",
        )
        .unwrap()
    }

    fn eval(expr: &str) -> XPathValue {
        XPathExpr::parse(expr).unwrap().evaluate(&doc()).unwrap()
    }

    fn count(expr: &str) -> usize {
        match eval(expr) {
            XPathValue::NodeSet(n) => n.len(),
            other => panic!("expected node-set, got {other:?}"),
        }
    }

    fn num(expr: &str) -> f64 {
        eval(expr).to_number()
    }

    fn s(expr: &str) -> String {
        eval(expr).to_xpath_string()
    }

    fn b(expr: &str) -> bool {
        eval(expr).to_bool()
    }

    #[test]
    fn basic_selection() {
        assert_eq!(count("/library/book"), 3);
        assert_eq!(count("//book"), 3);
        assert_eq!(count("//title"), 3);
        assert_eq!(count("/library/meta"), 1);
        assert_eq!(count("/nothing"), 0);
    }

    #[test]
    fn attribute_axis() {
        assert_eq!(count("//book/@id"), 3);
        assert_eq!(s("/library/book[1]/@id"), "1");
        assert_eq!(count("//book[@genre='db']"), 2);
    }

    #[test]
    fn positional_predicates() {
        assert_eq!(s("/library/book[1]/title"), "TP");
        assert_eq!(s("/library/book[last()]/title"), "OSTEP");
        assert_eq!(s("/library/book[position()=2]/title"), "DDIA");
    }

    #[test]
    fn value_predicates() {
        assert_eq!(count("//book[price > 30]"), 2);
        assert_eq!(s("//book[price=40]/title"), "DDIA");
        assert_eq!(count("//book[title='TP' or title='OSTEP']"), 2);
        assert_eq!(count("//book[@genre='db' and price < 45]"), 1);
    }

    #[test]
    fn arithmetic_and_functions() {
        assert_eq!(num("sum(//price)"), 90.0);
        assert_eq!(num("count(//book) * 2 + 1"), 7.0);
        assert_eq!(num("10 div 4"), 2.5);
        assert_eq!(num("10 mod 4"), 2.0);
        assert_eq!(num("-(3)"), -3.0);
        assert_eq!(num("floor(2.7)"), 2.0);
        assert_eq!(num("ceiling(2.1)"), 3.0);
        assert_eq!(num("round(2.5)"), 3.0);
        assert_eq!(num("round(-2.5)"), -2.0);
    }

    #[test]
    fn string_functions() {
        assert_eq!(s("concat('a', 'b', 'c')"), "abc");
        assert!(b("starts-with('hello', 'he')"));
        assert!(b("contains(//book[1]/title, 'T')"));
        assert_eq!(s("substring('12345', 2, 3)"), "234");
        assert_eq!(s("substring('12345', 0)"), "12345");
        assert_eq!(num("string-length('abcd')"), 4.0);
        assert_eq!(s("normalize-space('  a   b ')"), "a b");
        assert_eq!(s("translate('bar', 'abc', 'ABC')"), "BAr");
        assert_eq!(s("translate('-abc-', '-', '')"), "abc");
        assert_eq!(s("substring-before('a=b', '=')"), "a");
        assert_eq!(s("substring-after('a=b', '=')"), "b");
    }

    #[test]
    fn name_functions() {
        assert_eq!(s("name(/library)"), "library");
        assert_eq!(s("local-name(//book[1])"), "book");
    }

    #[test]
    fn parent_and_ancestor_axes() {
        assert_eq!(count("//title/.."), 3);
        assert_eq!(s("//price[.='40']/../title"), "DDIA");
        assert_eq!(count("//title/ancestor::library"), 1);
        assert_eq!(count("//title/ancestor-or-self::*"), 7); // 3 titles + 3 books + library
    }

    #[test]
    fn sibling_axes() {
        assert_eq!(count("/library/book[1]/following-sibling::book"), 2);
        assert_eq!(count("/library/book[3]/preceding-sibling::book"), 2);
        // Positional predicate on a reverse axis counts backwards.
        assert_eq!(s("/library/book[3]/preceding-sibling::book[1]/title"), "DDIA");
    }

    #[test]
    fn text_nodes() {
        assert_eq!(count("//title/text()"), 3);
        match eval("//title[1]/text()") {
            XPathValue::NodeSet(n) => assert_eq!(n[0].string_value(), "TP"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn union_and_filter() {
        assert_eq!(count("//title | //price"), 6);
        assert_eq!(count("(//book)[1]"), 1);
        assert_eq!(s("(//book)[2]/title"), "DDIA");
        assert_eq!(s("(//book)[price=50]/title"), "TP");
    }

    #[test]
    fn node_set_comparisons() {
        // Existence semantics: true if any node matches.
        assert!(b("//price = 40"));
        assert!(b("//price != 40")); // other prices differ
        assert!(!b("//price = 39"));
        assert!(b("//book/@id = '2'"));
    }

    #[test]
    fn boolean_functions() {
        assert!(b("not(//book[price=1000])"));
        assert!(b("boolean(//book)"));
        assert!(b("true()"));
        assert!(!b("false()"));
    }

    #[test]
    fn number_string_conversions() {
        assert_eq!(s("string(12)"), "12");
        assert_eq!(s("string(12.5)"), "12.5");
        assert_eq!(s("string(1 div 0)"), "Infinity");
        assert_eq!(s("string(0 div 0)"), "NaN");
        assert!(num("number('abc')").is_nan());
        assert_eq!(num("number(' 42 ')"), 42.0);
        assert_eq!(num("number(//meta/count)"), 3.0);
    }

    #[test]
    fn namespace_name_tests() {
        let doc = parse("<r xmlns:a='urn:a'><a:x>1</a:x><x>2</x></r>").unwrap();
        let expr = XPathExpr::parse("//p:x").unwrap();
        let ctx = XPathContext::new().with_namespace("p", "urn:a");
        match expr.evaluate_with(&doc, &ctx).unwrap() {
            XPathValue::NodeSet(n) => {
                assert_eq!(n.len(), 1);
                assert_eq!(n[0].string_value(), "1");
            }
            other => panic!("{other:?}"),
        }
        // Unprefixed test matches only the no-namespace element.
        let expr = XPathExpr::parse("//x").unwrap();
        match expr.evaluate_with(&doc, &ctx).unwrap() {
            XPathValue::NodeSet(n) => {
                assert_eq!(n.len(), 1);
                assert_eq!(n[0].string_value(), "2");
            }
            other => panic!("{other:?}"),
        }
        // Namespace wildcard.
        let expr = XPathExpr::parse("count(//p:*)").unwrap();
        assert_eq!(expr.evaluate_with(&doc, &ctx).unwrap().to_number(), 1.0);
    }

    #[test]
    fn variables() {
        let doc = doc();
        let expr = XPathExpr::parse("//book[price > $min]").unwrap();
        let ctx = XPathContext::new().with_variable("min", XPathValue::Number(45.0));
        match expr.evaluate_with(&doc, &ctx).unwrap() {
            XPathValue::NodeSet(n) => assert_eq!(n.len(), 1),
            other => panic!("{other:?}"),
        }
        assert!(XPathExpr::parse("$missing").unwrap().evaluate(&doc).is_err());
    }

    #[test]
    fn select_elements_helper() {
        let books = XPathExpr::parse("//book").unwrap().select_elements(&doc()).unwrap();
        assert_eq!(books.len(), 3);
        assert_eq!(books[0].attribute("id"), Some("1"));
    }

    #[test]
    fn descendant_axis_explicit() {
        assert_eq!(count("/library/descendant::price"), 3);
        assert_eq!(count("self::node()"), 1);
    }

    #[test]
    fn document_order_of_results() {
        match eval("//book/@id") {
            XPathValue::NodeSet(n) => {
                let vals: Vec<String> = n.iter().map(|x| x.string_value()).collect();
                assert_eq!(vals, vec!["1", "2", "3"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wildcard_star() {
        assert_eq!(count("/library/*"), 4);
        assert_eq!(count("//book/*"), 6);
    }
}
