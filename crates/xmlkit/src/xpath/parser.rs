//! Recursive-descent parser from tokens to the XPath AST.
//!
//! Follows the XPath 1.0 grammar's precedence levels:
//! `or < and < equality < relational < additive < multiplicative <
//! unary < union < path`.

use super::ast::{Axis, BinOp, Expr, NodeTest, Path, Step};
use super::lexer::Token;
use super::XPathError;

pub fn parse_tokens(tokens: &[Token]) -> Result<Expr, XPathError> {
    let mut p = P { tokens, pos: 0 };
    let expr = p.or_expr()?;
    if p.pos != tokens.len() {
        return Err(XPathError::new(format!("unexpected trailing tokens at position {}", p.pos)));
    }
    Ok(expr)
}

struct P<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), XPathError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(XPathError::new(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    /// True when the next token is the keyword `kw` used as an operator —
    /// only valid where a binary operator may appear.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Name(n)) = self.peek() {
            if n == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn or_expr(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.equality_expr()?;
        while self.eat_keyword("and") {
            let rhs = self.equality_expr()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.relational_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Eq) => BinOp::Eq,
                Some(Token::Ne) => BinOp::Ne,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.relational_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn relational_expr(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.additive_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Lt) => BinOp::Lt,
                Some(Token::Le) => BinOp::Le,
                Some(Token::Gt) => BinOp::Gt,
                Some(Token::Ge) => BinOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.additive_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = if self.peek() == Some(&Token::Star) {
                self.pos += 1;
                BinOp::Mul
            } else if self.eat_keyword("div") {
                BinOp::Div
            } else if self.eat_keyword("mod") {
                BinOp::Mod
            } else {
                break;
            };
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, XPathError> {
        if self.eat(&Token::Minus) {
            Ok(Expr::Negate(Box::new(self.unary_expr()?)))
        } else {
            self.union_expr()
        }
    }

    fn union_expr(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.path_expr()?;
        while self.eat(&Token::Pipe) {
            let rhs = self.path_expr()?;
            lhs = Expr::Binary { op: BinOp::Union, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    /// PathExpr: LocationPath | FilterExpr (('/' | '//') RelativePath)?
    fn path_expr(&mut self) -> Result<Expr, XPathError> {
        if self.starts_primary() {
            let primary = self.primary_expr()?;
            let mut predicates = Vec::new();
            while self.peek() == Some(&Token::LBracket) {
                predicates.push(self.predicate()?);
            }
            let path =
                if self.peek() == Some(&Token::Slash) || self.peek() == Some(&Token::DoubleSlash) {
                    Some(self.relative_path_after_filter()?)
                } else {
                    None
                };
            if predicates.is_empty() && path.is_none() {
                return Ok(primary);
            }
            return Ok(Expr::Filter { primary: Box::new(primary), predicates, path });
        }
        Ok(Expr::Path(self.location_path()?))
    }

    /// Does the upcoming token start a primary (non-path) expression?
    fn starts_primary(&self) -> bool {
        match self.peek() {
            Some(Token::Literal(_) | Token::Number(_) | Token::Variable(_) | Token::LParen) => true,
            // A name followed by '(' is a function call unless it is a
            // node-type test (node/text/comment).
            Some(Token::Name(n)) => {
                self.peek2() == Some(&Token::LParen)
                    && !matches!(n.as_str(), "node" | "text" | "comment")
            }
            _ => false,
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, XPathError> {
        match self.bump().cloned() {
            Some(Token::Literal(s)) => Ok(Expr::Literal(s)),
            Some(Token::Number(n)) => Ok(Expr::Number(n)),
            Some(Token::Variable(v)) => Ok(Expr::Variable(v)),
            Some(Token::LParen) => {
                let e = self.or_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Name(name)) => {
                self.expect(&Token::LParen)?;
                let mut args = Vec::new();
                if self.peek() != Some(&Token::RParen) {
                    loop {
                        args.push(self.or_expr()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                Ok(Expr::Call { name, args })
            }
            other => Err(XPathError::new(format!("unexpected token {other:?}"))),
        }
    }

    fn predicate(&mut self) -> Result<Expr, XPathError> {
        self.expect(&Token::LBracket)?;
        let e = self.or_expr()?;
        self.expect(&Token::RBracket)?;
        Ok(e)
    }

    fn relative_path_after_filter(&mut self) -> Result<Path, XPathError> {
        let mut steps = Vec::new();
        loop {
            if self.eat(&Token::DoubleSlash) {
                steps.push(descendant_or_self_node());
                steps.push(self.step()?);
            } else if self.eat(&Token::Slash) {
                steps.push(self.step()?);
            } else {
                break;
            }
        }
        Ok(Path { absolute: false, steps })
    }

    fn location_path(&mut self) -> Result<Path, XPathError> {
        let mut absolute = false;
        let mut steps = Vec::new();
        if self.eat(&Token::DoubleSlash) {
            absolute = true;
            steps.push(descendant_or_self_node());
            steps.push(self.step()?);
        } else if self.eat(&Token::Slash) {
            absolute = true;
            // A bare '/' selects the root.
            if !self.starts_step() {
                return Ok(Path { absolute, steps });
            }
            steps.push(self.step()?);
        } else {
            steps.push(self.step()?);
        }
        loop {
            if self.eat(&Token::DoubleSlash) {
                steps.push(descendant_or_self_node());
                steps.push(self.step()?);
            } else if self.eat(&Token::Slash) {
                steps.push(self.step()?);
            } else {
                break;
            }
        }
        Ok(Path { absolute, steps })
    }

    fn starts_step(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Name(_) | Token::Star | Token::At | Token::Dot | Token::DotDot)
        )
    }

    fn step(&mut self) -> Result<Step, XPathError> {
        // Abbreviations first.
        if self.eat(&Token::Dot) {
            return Ok(Step {
                axis: Axis::SelfAxis,
                test: NodeTest::AnyNode,
                predicates: self.predicates()?,
            });
        }
        if self.eat(&Token::DotDot) {
            return Ok(Step {
                axis: Axis::Parent,
                test: NodeTest::AnyNode,
                predicates: self.predicates()?,
            });
        }
        let mut axis = Axis::Child;
        if self.eat(&Token::At) {
            axis = Axis::Attribute;
        } else if let Some(Token::Name(n)) = self.peek() {
            if self.peek2() == Some(&Token::ColonColon) {
                let n = n.clone();
                match Axis::from_name(&n) {
                    Some(a) => {
                        axis = a;
                        self.pos += 2;
                    }
                    None => return Err(XPathError::new(format!("unknown axis '{n}'"))),
                }
            }
        }
        let test = self.node_test()?;
        let predicates = self.predicates()?;
        Ok(Step { axis, test, predicates })
    }

    fn predicates(&mut self) -> Result<Vec<Expr>, XPathError> {
        let mut out = Vec::new();
        while self.peek() == Some(&Token::LBracket) {
            out.push(self.predicate()?);
        }
        Ok(out)
    }

    fn node_test(&mut self) -> Result<NodeTest, XPathError> {
        match self.bump().cloned() {
            Some(Token::Star) => Ok(NodeTest::AnyName),
            Some(Token::Name(n)) => {
                // Node-type tests.
                if self.peek() == Some(&Token::LParen) {
                    let test = match n.as_str() {
                        "node" => NodeTest::AnyNode,
                        "text" => NodeTest::Text,
                        "comment" => NodeTest::Comment,
                        other => {
                            return Err(XPathError::new(format!(
                                "unknown node type test '{other}()'"
                            )))
                        }
                    };
                    self.pos += 1;
                    self.expect(&Token::RParen)?;
                    return Ok(test);
                }
                // prefix:local or prefix:*
                if self.eat(&Token::Colon) {
                    match self.bump().cloned() {
                        Some(Token::Name(local)) => Ok(NodeTest::Name { prefix: Some(n), local }),
                        Some(Token::Star) => Ok(NodeTest::NamespaceWildcard { prefix: n }),
                        other => Err(XPathError::new(format!(
                            "expected local name after '{n}:', found {other:?}"
                        ))),
                    }
                } else {
                    Ok(NodeTest::Name { prefix: None, local: n })
                }
            }
            other => Err(XPathError::new(format!("expected a node test, found {other:?}"))),
        }
    }
}

fn descendant_or_self_node() -> Step {
    Step { axis: Axis::DescendantOrSelf, test: NodeTest::AnyNode, predicates: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::tokenize;
    use super::*;

    fn parse(s: &str) -> Expr {
        parse_tokens(&tokenize(s).unwrap()).unwrap()
    }

    #[test]
    fn parses_absolute_path() {
        match parse("/a/b") {
            Expr::Path(p) => {
                assert!(p.absolute);
                assert_eq!(p.steps.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn double_slash_expands() {
        match parse("//a") {
            Expr::Path(p) => {
                assert_eq!(p.steps.len(), 2);
                assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn axis_syntax() {
        match parse("ancestor-or-self::x") {
            Expr::Path(p) => assert_eq!(p.steps[0].axis, Axis::AncestorOrSelf),
            other => panic!("{other:?}"),
        }
        assert!(parse_tokens(&tokenize("bogus::x").unwrap()).is_err());
    }

    #[test]
    fn operator_precedence() {
        // 1 + 2 * 3 = 7 structure: Add(1, Mul(2,3))
        match parse("1 + 2 * 3") {
            Expr::Binary { op: BinOp::Add, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn keyword_names_usable_as_element_names() {
        // 'div' as the first token is an element name, not an operator.
        match parse("div") {
            Expr::Path(p) => {
                assert!(matches!(&p.steps[0].test, NodeTest::Name { local, .. } if local == "div"))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_calls_and_args() {
        match parse("contains(a, 'x')") {
            Expr::Call { name, args } => {
                assert_eq!(name, "contains");
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn filter_expression_with_path() {
        match parse("(//a)[1]/b") {
            Expr::Filter { predicates, path, .. } => {
                assert_eq!(predicates.len(), 1);
                assert_eq!(path.unwrap().steps.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prefixed_and_wildcard_tests() {
        match parse("p:x/p:*/*") {
            Expr::Path(p) => {
                assert!(
                    matches!(&p.steps[0].test, NodeTest::Name { prefix: Some(px), .. } if px == "p")
                );
                assert!(matches!(&p.steps[1].test, NodeTest::NamespaceWildcard { .. }));
                assert!(matches!(&p.steps[2].test, NodeTest::AnyName));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_root() {
        match parse("/") {
            Expr::Path(p) => {
                assert!(p.absolute);
                assert!(p.steps.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_tokens(&tokenize("a b").unwrap()).is_err());
    }

    #[test]
    fn union_of_paths() {
        assert!(matches!(parse("a | b"), Expr::Binary { op: BinOp::Union, .. }));
    }
}
