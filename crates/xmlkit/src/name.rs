//! Qualified names and namespace declarations.

use dais_util::intern::IStr;
use std::fmt;

/// An expanded XML qualified name.
///
/// Equality and hashing consider only the `(namespace, local)` pair — the
/// prefix is a serialisation hint, exactly as in the XML namespaces
/// recommendation. An empty `namespace` means "no namespace".
///
/// All three components are interned [`IStr`]s: the recurring WS-DAI
/// vocabulary shares one allocation process-wide, and cloning a `QName`
/// is three refcount bumps rather than three string copies.
#[derive(Debug, Clone, Default)]
pub struct QName {
    /// Namespace URI; empty string when the name is in no namespace.
    pub namespace: IStr,
    /// Local part of the name.
    pub local: IStr,
    /// Preferred prefix for serialisation; empty means default/none.
    pub prefix: IStr,
}

impl QName {
    /// A name in no namespace.
    pub fn local(local: impl Into<IStr>) -> Self {
        QName { namespace: IStr::default(), local: local.into(), prefix: IStr::default() }
    }

    /// A namespaced name with a preferred serialisation prefix.
    pub fn new(
        namespace: impl Into<IStr>,
        prefix: impl Into<IStr>,
        local: impl Into<IStr>,
    ) -> Self {
        QName { namespace: namespace.into(), local: local.into(), prefix: prefix.into() }
    }

    /// True when this name matches the given `(namespace, local)` pair.
    pub fn is(&self, namespace: &str, local: &str) -> bool {
        self.namespace == namespace && self.local == local
    }

    /// The lexical `prefix:local` form (or bare local part).
    pub fn lexical(&self) -> String {
        if self.prefix.is_empty() {
            self.local.as_str().to_string()
        } else {
            format!("{}:{}", self.prefix, self.local)
        }
    }
}

impl PartialEq for QName {
    fn eq(&self, other: &Self) -> bool {
        self.namespace == other.namespace && self.local == other.local
    }
}

impl Eq for QName {}

impl std::hash::Hash for QName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.namespace.hash(state);
        self.local.hash(state);
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.namespace.is_empty() {
            write!(f, "{}", self.local)
        } else {
            write!(f, "{{{}}}{}", self.namespace, self.local)
        }
    }
}

/// Validate an XML NCName (no-colon name). Used by parser and builders to
/// reject names that could not round-trip through serialisation.
pub fn is_ncname(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_prefix() {
        let a = QName::new("urn:x", "p", "name");
        let b = QName::new("urn:x", "q", "name");
        assert_eq!(a, b);
        let c = QName::new("urn:y", "p", "name");
        assert_ne!(a, c);
    }

    #[test]
    fn lexical_form() {
        assert_eq!(QName::local("foo").lexical(), "foo");
        assert_eq!(QName::new("urn:x", "p", "foo").lexical(), "p:foo");
    }

    #[test]
    fn display_expanded_form() {
        assert_eq!(QName::new("urn:x", "p", "foo").to_string(), "{urn:x}foo");
        assert_eq!(QName::local("foo").to_string(), "foo");
    }

    #[test]
    fn ncname_validation() {
        assert!(is_ncname("abc"));
        assert!(is_ncname("_a-b.c1"));
        assert!(!is_ncname("1abc"));
        assert!(!is_ncname(""));
        assert!(!is_ncname("a:b"));
        assert!(!is_ncname("a b"));
    }

    #[test]
    fn hash_matches_equality() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(QName::new("urn:x", "p", "n"));
        assert!(set.contains(&QName::new("urn:x", "other", "n")));
        assert!(!set.contains(&QName::local("n")));
    }

    #[test]
    fn well_known_names_share_storage() {
        let a = QName::new("http://www.ggf.org/namespaces/2005/12/WS-DAI", "wsdai", "Readable");
        let b = QName::new("http://www.ggf.org/namespaces/2005/12/WS-DAI", "wsdai", "Readable");
        assert!(IStr::ptr_eq(&a.namespace, &b.namespace));
        assert!(IStr::ptr_eq(&a.local, &b.local));
        assert!(IStr::ptr_eq(&a.prefix, &b.prefix));
    }
}
