//! A namespace-aware recursive-descent XML parser.
//!
//! The parser resolves namespace prefixes to URIs as it goes, so the
//! resulting tree carries expanded [`QName`]s and no longer depends on the
//! particular prefixes used on the wire. Namespace *declarations* are not
//! kept in the tree; the serialiser re-derives them (see [`crate::writer`]).
//!
//! ## The fast lane
//!
//! The inner loop lexes over `&[u8]` and borrows from the input wherever
//! the bytes can be used verbatim:
//!
//! - name tokens are `&str` slices of the input, interned into [`IStr`]s
//!   only at the point a [`QName`] is built — recurring protocol names
//!   resolve to `Arc`-shared strings without allocating;
//! - text segments and attribute values lex to [`Cow::Borrowed`] unless
//!   they contain an entity reference (the only case that needs rewriting);
//! - namespace scopes are a flat vector of `(prefix, uri)` bindings with
//!   per-element truncation marks instead of a stack of hash maps;
//! - line/column positions are computed lazily, only when an error is
//!   actually reported, so the hot path never counts newlines.

use crate::name::QName;
use crate::node::{Attribute, XmlElement, XmlNode};
use dais_util::intern::{intern, IStr};
use std::borrow::Cow;
use std::fmt;

/// An XML well-formedness or namespace error, with 1-based position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub message: String,
    pub line: usize,
    pub column: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at {}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parse a document, dropping whitespace-only text nodes that sit between
/// elements (the right default for protocol messages).
pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
    Parser::new(input, true).parse_document()
}

/// Parse a document preserving all character data exactly.
pub fn parse_preserving(input: &str) -> Result<XmlElement, XmlError> {
    Parser::new(input, false).parse_document()
}

/// Maximum element nesting depth. DAIS protocol messages are shallow;
/// the cap turns stack-exhaustion attacks from hostile documents into
/// clean parse errors (the parser, XPath arena and serialiser all recurse
/// over element depth).
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    strip_ws: bool,
    depth: usize,
}

/// Namespace scope: a flat list of `(prefix, uri)` bindings with marks
/// recording where each element's declarations start. Lookup walks the
/// list backwards, so inner declarations shadow outer ones; popping an
/// element truncates back to its mark. No per-element map allocation.
struct NsScope<'a> {
    bindings: Vec<(&'a str, IStr)>,
    marks: Vec<usize>,
}

impl<'a> NsScope<'a> {
    fn new() -> Self {
        NsScope {
            bindings: vec![
                // The xml prefix is implicitly bound per the namespaces rec.
                ("xml", intern("http://www.w3.org/XML/1998/namespace")),
                // Default namespace: none.
                ("", IStr::default()),
            ],
            marks: Vec::new(),
        }
    }

    fn push(&mut self) {
        self.marks.push(self.bindings.len());
    }

    fn pop(&mut self) {
        // The base scope (xml prefix, empty default) must survive, so an
        // unbalanced pop is a no-op rather than an empty list.
        if let Some(mark) = self.marks.pop() {
            self.bindings.truncate(mark);
        }
    }

    fn declare(&mut self, prefix: &'a str, uri: IStr) {
        self.bindings.push((prefix, uri));
    }

    fn resolve(&self, prefix: &str) -> Option<&IStr> {
        self.bindings.iter().rev().find(|(p, _)| *p == prefix).map(|(_, u)| u)
    }
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, strip_ws: bool) -> Self {
        Parser { text: input, bytes: input.as_bytes(), pos: 0, strip_ws, depth: 0 }
    }

    /// Report an error at the current position. Line/column are derived
    /// here, on the cold path, by one scan of the consumed prefix.
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, XmlError> {
        let upto = &self.bytes[..self.pos];
        let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
        let column = match upto.iter().rposition(|&b| b == b'\n') {
            Some(nl) => self.pos - nl,
            None => self.pos + 1,
        };
        Err(XmlError { message: msg.into(), line, column })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
    }

    /// Byte offset of the next occurrence of `delim` at or after the
    /// current position, if any.
    fn find(&self, delim: &str) -> Option<usize> {
        let d = delim.as_bytes();
        self.bytes[self.pos..].windows(d.len()).position(|w| w == d).map(|i| self.pos + i)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), XmlError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn parse_document(&mut self) -> Result<XmlElement, XmlError> {
        self.skip_prolog()?;
        let mut scope = NsScope::new();
        let root = self.parse_element(&mut scope)?;
        // Trailing misc: whitespace and comments only.
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.parse_comment()?;
            } else {
                break;
            }
        }
        if self.pos != self.bytes.len() {
            return self.err("content after document element");
        }
        Ok(root)
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?xml") {
                match self.find("?>") {
                    Some(end) => self.pos = end + 2,
                    None => {
                        self.pos = self.bytes.len();
                        return self.err("unterminated XML declaration");
                    }
                }
            } else if self.starts_with("<!--") {
                self.parse_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                return self.err("DOCTYPE is not supported");
            } else {
                return Ok(());
            }
        }
    }

    /// Parse a name token (possibly prefixed), borrowed from the input.
    /// Names end at an ASCII delimiter, so the slice boundaries always
    /// fall on character boundaries.
    fn parse_name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            let ok = if self.pos == start {
                b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
            } else {
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80
            };
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(&self.text[start..self.pos])
    }

    fn split_name(&self, raw: &'a str) -> Result<(&'a str, &'a str), XmlError> {
        match raw.split_once(':') {
            None => Ok(("", raw)),
            Some((p, l)) if !p.is_empty() && !l.is_empty() && !l.contains(':') => Ok((p, l)),
            _ => self.err(format!("malformed qualified name '{raw}'")),
        }
    }

    fn parse_element(&mut self, scope: &mut NsScope<'a>) -> Result<XmlElement, XmlError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err(format!("element nesting exceeds the maximum depth of {MAX_DEPTH}"));
        }
        let result = self.parse_element_inner(scope);
        self.depth -= 1;
        result
    }

    fn parse_element_inner(&mut self, scope: &mut NsScope<'a>) -> Result<XmlElement, XmlError> {
        self.expect(b'<')?;
        let raw_name = self.parse_name()?;
        scope.push();

        // First pass: collect raw attributes, registering xmlns decls.
        let mut raw_attrs: Vec<(&'a str, Cow<'a, str>)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') => break,
                Some(_) => {
                    let an = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let av = self.parse_attr_value()?;
                    if an == "xmlns" {
                        scope.declare("", intern(&av));
                    } else if let Some(p) = an.strip_prefix("xmlns:") {
                        if p.is_empty() {
                            return self.err("empty namespace prefix declaration");
                        }
                        if av.is_empty() {
                            return self.err("cannot bind a prefix to the empty namespace");
                        }
                        scope.declare(p, intern(&av));
                    } else {
                        if raw_attrs.iter().any(|(n, _)| *n == an) {
                            return self.err(format!("duplicate attribute '{an}'"));
                        }
                        raw_attrs.push((an, av));
                    }
                }
                None => return self.err("unexpected end of input in tag"),
            }
        }

        // Resolve element name.
        let (prefix, local) = self.split_name(raw_name)?;
        let namespace = match scope.resolve(prefix) {
            Some(u) => u.clone(),
            None => return self.err(format!("undeclared namespace prefix '{prefix}'")),
        };
        let mut element = XmlElement {
            name: QName { namespace, local: intern(local), prefix: intern(prefix) },
            attributes: Vec::with_capacity(raw_attrs.len()),
            children: Vec::new(),
        };

        // Resolve attribute names (unprefixed attrs are in no namespace).
        for (an, av) in raw_attrs {
            let (prefix, local) = self.split_name(an)?;
            let namespace = if prefix.is_empty() {
                IStr::default()
            } else {
                match scope.resolve(prefix) {
                    Some(u) => u.clone(),
                    None => return self.err(format!("undeclared namespace prefix '{prefix}'")),
                }
            };
            element.attributes.push(Attribute {
                name: QName { namespace, local: intern(local), prefix: intern(prefix) },
                value: av.into_owned(),
            });
        }

        // Empty element?
        if self.peek() == Some(b'/') {
            self.pos += 1;
            self.expect(b'>')?;
            scope.pop();
            return Ok(element);
        }
        self.expect(b'>')?;

        // Content.
        loop {
            if self.starts_with("</") {
                self.advance(2);
                let close = self.parse_name()?;
                if close != raw_name {
                    return self.err(format!("mismatched close tag </{close}> for <{raw_name}>"));
                }
                self.skip_ws();
                self.expect(b'>')?;
                scope.pop();
                self.coalesce_text(&mut element);
                return Ok(element);
            } else if self.starts_with("<!--") {
                let c = self.parse_comment()?;
                element.children.push(XmlNode::Comment(c));
            } else if self.starts_with("<![CDATA[") {
                self.advance(9);
                let start = self.pos;
                match self.find("]]>") {
                    Some(end) => {
                        let text = self.text[start..end].to_string();
                        self.pos = end + 3;
                        element.children.push(XmlNode::CData(text));
                    }
                    None => {
                        self.pos = self.bytes.len();
                        return self.err("unterminated CDATA section");
                    }
                }
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element(scope)?;
                element.children.push(XmlNode::Element(child));
            } else if self.peek().is_none() {
                return self.err(format!("unexpected end of input inside <{raw_name}>"));
            } else {
                let text = self.parse_text()?;
                if !(self.strip_ws && text.trim().is_empty()) {
                    element.children.push(XmlNode::Text(text.into_owned()));
                }
            }
        }
    }

    /// Merge adjacent text nodes produced by entity splitting.
    fn coalesce_text(&self, element: &mut XmlElement) {
        if element.children.windows(2).all(|w| !matches!(w, [XmlNode::Text(_), XmlNode::Text(_)])) {
            return;
        }
        let mut out: Vec<XmlNode> = Vec::with_capacity(element.children.len());
        for node in element.children.drain(..) {
            match (&mut out.last_mut(), node) {
                (Some(XmlNode::Text(prev)), XmlNode::Text(next)) => prev.push_str(&next),
                (_, node) => out.push(node),
            }
        }
        element.children = out;
    }

    fn parse_comment(&mut self) -> Result<String, XmlError> {
        self.advance(4); // <!--
        let start = self.pos;
        match self.find("-->") {
            Some(end) => {
                let text = self.text[start..end].to_string();
                self.pos = end + 3;
                Ok(text)
            }
            None => {
                self.pos = self.bytes.len();
                self.err("unterminated comment")
            }
        }
    }

    /// Character data up to the next `<`. Escape-free segments borrow
    /// straight from the input; only entity references force a rebuild.
    fn parse_text(&mut self) -> Result<Cow<'a, str>, XmlError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'<' => return Ok(Cow::Borrowed(&self.text[start..self.pos])),
                b'&' => break,
                _ => self.pos += 1,
            }
        }
        if self.pos >= self.bytes.len() {
            return Ok(Cow::Borrowed(&self.text[start..self.pos]));
        }
        // Slow path: an entity reference appeared.
        let mut out = String::with_capacity(self.pos - start + 16);
        out.push_str(&self.text[start..self.pos]);
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'<' => break,
                b'&' => out.push(self.parse_entity()?),
                _ => {
                    let run = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.text[run..self.pos]);
                }
            }
        }
        Ok(Cow::Owned(out))
    }

    /// A quoted attribute value. Escape-free values borrow straight from
    /// the input; only entity references force a rebuild.
    fn parse_attr_value(&mut self) -> Result<Cow<'a, str>, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                q
            }
            _ => return self.err("expected quoted attribute value"),
        };
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == quote {
                let v = &self.text[start..self.pos];
                self.pos += 1;
                return Ok(Cow::Borrowed(v));
            }
            match b {
                b'&' => break,
                b'<' => return self.err("'<' is not allowed in attribute values"),
                _ => self.pos += 1,
            }
        }
        if self.pos >= self.bytes.len() {
            return self.err("unterminated attribute value");
        }
        // Slow path: an entity reference appeared.
        let mut out = String::with_capacity(self.pos - start + 16);
        out.push_str(&self.text[start..self.pos]);
        loop {
            match self.peek() {
                Some(b) if b == quote => {
                    self.pos += 1;
                    return Ok(Cow::Owned(out));
                }
                Some(b'&') => out.push(self.parse_entity()?),
                Some(b'<') => return self.err("'<' is not allowed in attribute values"),
                Some(_) => {
                    let run = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == quote || b == b'&' || b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.text[run..self.pos]);
                }
                None => return self.err("unterminated attribute value"),
            }
        }
    }

    fn parse_entity(&mut self) -> Result<char, XmlError> {
        self.expect(b'&')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                break;
            }
            if self.pos - start > 10 {
                return self.err("unterminated entity reference");
            }
            self.pos += 1;
        }
        let name = &self.text[start..self.pos];
        self.expect(b';')?;
        match name {
            "amp" => Ok('&'),
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                u32::from_str_radix(&name[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or(())
                    .or_else(|_| self.err(format!("invalid character reference &{name};")))
            }
            _ if name.starts_with('#') => name[1..]
                .parse::<u32>()
                .ok()
                .and_then(char::from_u32)
                .ok_or(())
                .or_else(|_| self.err(format!("invalid character reference &{name};"))),
            _ => self.err(format!("unknown entity &{name};")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::XmlNode;

    #[test]
    fn parses_simple_document() {
        let e = parse("<r><a>1</a><b/></r>").unwrap();
        assert_eq!(e.name.local, "r");
        assert_eq!(e.elements().count(), 2);
        assert_eq!(e.child("", "a").unwrap().text(), "1");
    }

    #[test]
    fn resolves_namespaces() {
        let e = parse("<p:r xmlns:p='urn:a' xmlns='urn:d'><c/><p:c/></p:r>").unwrap();
        assert!(e.name.is("urn:a", "r"));
        assert!(e.child("urn:d", "c").is_some());
        assert!(e.child("urn:a", "c").is_some());
    }

    #[test]
    fn default_namespace_does_not_apply_to_attributes() {
        let e = parse("<r xmlns='urn:d' a='1'/>").unwrap();
        assert_eq!(e.attribute("a"), Some("1"));
        assert!(e.attribute_ns("urn:d", "a").is_none());
    }

    #[test]
    fn namespace_scoping_and_shadowing() {
        let e = parse("<r xmlns:p='urn:1'><c xmlns:p='urn:2'><p:x/></c><p:y/></r>").unwrap();
        let c = e.child("", "c").unwrap();
        assert!(c.child("urn:2", "x").is_some());
        assert!(e.child("urn:1", "y").is_some());
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        assert!(parse("<p:r/>").is_err());
        assert!(parse("<r p:a='1'/>").is_err());
    }

    #[test]
    fn entities_decode() {
        let e = parse("<r a='&lt;&amp;&quot;'>x &gt; y &#65;&#x42;</r>").unwrap();
        assert_eq!(e.attribute("a"), Some("<&\""));
        assert_eq!(e.text(), "x > y AB");
    }

    #[test]
    fn unknown_entity_is_error() {
        assert!(parse("<r>&nbsp;</r>").is_err());
    }

    #[test]
    fn cdata_sections() {
        let e = parse_preserving("<r><![CDATA[<not & parsed>]]></r>").unwrap();
        assert_eq!(e.text(), "<not & parsed>");
        assert!(matches!(e.children[0], XmlNode::CData(_)));
    }

    #[test]
    fn comments_preserved() {
        let e = parse("<r><!-- hi --><a/></r>").unwrap();
        assert!(matches!(e.children[0], XmlNode::Comment(_)));
    }

    #[test]
    fn mismatched_tags_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn duplicate_attribute_error() {
        assert!(parse("<r a='1' a='2'/>").is_err());
    }

    #[test]
    fn whitespace_stripping_modes() {
        let src = "<r>\n  <a>x</a>\n</r>";
        assert_eq!(parse(src).unwrap().children.len(), 1);
        assert_eq!(parse_preserving(src).unwrap().children.len(), 3);
    }

    #[test]
    fn prolog_and_trailing_misc() {
        let e = parse("<?xml version='1.0'?>\n<!-- head --><r/><!-- tail -->\n").unwrap();
        assert_eq!(e.name.local, "r");
    }

    #[test]
    fn content_after_root_is_error() {
        assert!(parse("<r/><r/>").is_err());
    }

    #[test]
    fn doctype_rejected() {
        assert!(parse("<!DOCTYPE r><r/>").is_err());
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = parse("<r>\n  <bad").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn error_columns_are_tracked() {
        // Error surfaces at the unexpected '<' inside the attribute value,
        // column 7 of line 1 (1-based).
        let err = parse("<r a='<'/>").unwrap_err();
        assert_eq!((err.line, err.column), (1, 7));
    }

    #[test]
    fn text_coalesced_across_entities() {
        let e = parse("<r>a&amp;b</r>").unwrap();
        assert_eq!(e.children.len(), 1);
        assert_eq!(e.text(), "a&b");
    }

    #[test]
    fn escape_free_text_lexes_borrowed() {
        let mut p = Parser::new("plain segment<", false);
        assert!(matches!(p.parse_text().unwrap(), Cow::Borrowed("plain segment")));
        let mut p = Parser::new("a&amp;b<", false);
        assert!(matches!(p.parse_text().unwrap(), Cow::Owned(_)));
    }

    #[test]
    fn escape_free_attr_values_lex_borrowed() {
        let mut p = Parser::new("'no escapes here'", false);
        assert!(matches!(p.parse_attr_value().unwrap(), Cow::Borrowed("no escapes here")));
        let mut p = Parser::new("'one &lt; two'", false);
        assert!(matches!(p.parse_attr_value().unwrap(), Cow::Owned(_)));
    }

    #[test]
    fn parsed_names_are_interned() {
        use dais_util::intern::IStr;
        let a = parse("<Envelope xmlns='http://schemas.xmlsoap.org/soap/envelope/'/>").unwrap();
        let b = parse("<Envelope xmlns='http://schemas.xmlsoap.org/soap/envelope/'/>").unwrap();
        assert!(IStr::ptr_eq(&a.name.local, &b.name.local));
        assert!(IStr::ptr_eq(&a.name.namespace, &b.name.namespace));
    }

    #[test]
    fn multibyte_text_and_names_survive() {
        let e = parse("<r\u{e9}><c>caf\u{e9} \u{2603}</c></r\u{e9}>").unwrap();
        assert_eq!(e.name.local, "r\u{e9}");
        assert_eq!(e.child("", "c").unwrap().text(), "caf\u{e9} \u{2603}");
    }
}
