//! A namespace-aware recursive-descent XML parser.
//!
//! The parser resolves namespace prefixes to URIs as it goes, so the
//! resulting tree carries expanded [`QName`]s and no longer depends on the
//! particular prefixes used on the wire. Namespace *declarations* are not
//! kept in the tree; the serialiser re-derives them (see [`crate::writer`]).

use crate::name::QName;
use crate::node::{Attribute, XmlElement, XmlNode};
use std::collections::HashMap;
use std::fmt;

/// An XML well-formedness or namespace error, with 1-based position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub message: String,
    pub line: usize,
    pub column: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at {}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parse a document, dropping whitespace-only text nodes that sit between
/// elements (the right default for protocol messages).
pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
    Parser::new(input, true).parse_document()
}

/// Parse a document preserving all character data exactly.
pub fn parse_preserving(input: &str) -> Result<XmlElement, XmlError> {
    Parser::new(input, false).parse_document()
}

/// Maximum element nesting depth. DAIS protocol messages are shallow;
/// the cap turns stack-exhaustion attacks from hostile documents into
/// clean parse errors (the parser, XPath arena and serialiser all recurse
/// over element depth).
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
    strip_ws: bool,
    depth: usize,
}

/// Namespace scope: a stack of prefix→URI maps.
struct NsScope {
    stack: Vec<HashMap<String, String>>,
}

impl NsScope {
    fn new() -> Self {
        let mut base = HashMap::new();
        // The xml prefix is implicitly bound per the namespaces rec.
        base.insert("xml".to_string(), "http://www.w3.org/XML/1998/namespace".to_string());
        base.insert(String::new(), String::new()); // default namespace: none
        NsScope { stack: vec![base] }
    }

    fn push(&mut self) {
        self.stack.push(HashMap::new());
    }

    fn pop(&mut self) {
        // The base scope (xml prefix, empty default) must survive, so an
        // unbalanced pop is a no-op rather than an empty stack.
        if self.stack.len() > 1 {
            self.stack.pop();
        }
    }

    fn declare(&mut self, prefix: &str, uri: &str) {
        if let Some(scope) = self.stack.last_mut() {
            scope.insert(prefix.to_string(), uri.to_string());
        }
    }

    fn resolve(&self, prefix: &str) -> Option<&str> {
        self.stack.iter().rev().find_map(|m| m.get(prefix)).map(String::as_str)
    }
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, strip_ws: bool) -> Self {
        Parser { bytes: input.as_bytes(), pos: 0, line: 1, col: 1, strip_ws, depth: 0 }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError { message: msg.into(), line: self.line, column: self.col })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), XmlError> {
        if self.peek() == Some(b) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn parse_document(&mut self) -> Result<XmlElement, XmlError> {
        self.skip_prolog()?;
        let mut scope = NsScope::new();
        let root = self.parse_element(&mut scope)?;
        // Trailing misc: whitespace and comments only.
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.parse_comment()?;
            } else {
                break;
            }
        }
        if self.pos != self.bytes.len() {
            return self.err("content after document element");
        }
        Ok(root)
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?xml") {
                // XML declaration: scan to ?>
                while !self.starts_with("?>") {
                    if self.bump().is_none() {
                        return self.err("unterminated XML declaration");
                    }
                }
                self.bump_n(2);
            } else if self.starts_with("<!--") {
                self.parse_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                return self.err("DOCTYPE is not supported");
            } else {
                return Ok(());
            }
        }
    }

    /// Parse a name token (possibly prefixed).
    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            let ok = if self.pos == start {
                c.is_ascii_alphabetic() || c == '_' || b >= 0x80
            } else {
                c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') || b >= 0x80
            };
            if ok {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn split_name(&self, raw: &str) -> Result<(String, String), XmlError> {
        match raw.split_once(':') {
            None => Ok((String::new(), raw.to_string())),
            Some((p, l)) if !p.is_empty() && !l.is_empty() && !l.contains(':') => {
                Ok((p.to_string(), l.to_string()))
            }
            _ => Err(XmlError {
                message: format!("malformed qualified name '{raw}'"),
                line: self.line,
                column: self.col,
            }),
        }
    }

    fn parse_element(&mut self, scope: &mut NsScope) -> Result<XmlElement, XmlError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err(format!("element nesting exceeds the maximum depth of {MAX_DEPTH}"));
        }
        let result = self.parse_element_inner(scope);
        self.depth -= 1;
        result
    }

    fn parse_element_inner(&mut self, scope: &mut NsScope) -> Result<XmlElement, XmlError> {
        self.expect(b'<')?;
        let raw_name = self.parse_name()?;
        scope.push();

        // First pass: collect raw attributes, registering xmlns decls.
        let mut raw_attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') => break,
                Some(_) => {
                    let an = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let av = self.parse_attr_value()?;
                    if an == "xmlns" {
                        scope.declare("", &av);
                    } else if let Some(p) = an.strip_prefix("xmlns:") {
                        if p.is_empty() {
                            return self.err("empty namespace prefix declaration");
                        }
                        if av.is_empty() {
                            return self.err("cannot bind a prefix to the empty namespace");
                        }
                        scope.declare(p, &av);
                    } else {
                        if raw_attrs.iter().any(|(n, _)| n == &an) {
                            return self.err(format!("duplicate attribute '{an}'"));
                        }
                        raw_attrs.push((an, av));
                    }
                }
                None => return self.err("unexpected end of input in tag"),
            }
        }

        // Resolve element name.
        let (prefix, local) = self.split_name(&raw_name)?;
        let namespace = match scope.resolve(&prefix) {
            Some(u) => u.to_string(),
            None => return self.err(format!("undeclared namespace prefix '{prefix}'")),
        };
        let mut element = XmlElement {
            name: QName { namespace, local, prefix },
            attributes: Vec::with_capacity(raw_attrs.len()),
            children: Vec::new(),
        };

        // Resolve attribute names (unprefixed attrs are in no namespace).
        for (an, av) in raw_attrs {
            let (prefix, local) = self.split_name(&an)?;
            let namespace = if prefix.is_empty() {
                String::new()
            } else {
                match scope.resolve(&prefix) {
                    Some(u) => u.to_string(),
                    None => return self.err(format!("undeclared namespace prefix '{prefix}'")),
                }
            };
            element
                .attributes
                .push(Attribute { name: QName { namespace, local, prefix }, value: av });
        }

        // Empty element?
        if self.peek() == Some(b'/') {
            self.bump();
            self.expect(b'>')?;
            scope.pop();
            return Ok(element);
        }
        self.expect(b'>')?;

        // Content.
        loop {
            if self.starts_with("</") {
                self.bump_n(2);
                let close = self.parse_name()?;
                if close != raw_name {
                    return self.err(format!("mismatched close tag </{close}> for <{raw_name}>"));
                }
                self.skip_ws();
                self.expect(b'>')?;
                scope.pop();
                self.coalesce_text(&mut element);
                return Ok(element);
            } else if self.starts_with("<!--") {
                let c = self.parse_comment()?;
                element.children.push(XmlNode::Comment(c));
            } else if self.starts_with("<![CDATA[") {
                self.bump_n(9);
                let start = self.pos;
                while !self.starts_with("]]>") {
                    if self.bump().is_none() {
                        return self.err("unterminated CDATA section");
                    }
                }
                let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                self.bump_n(3);
                element.children.push(XmlNode::CData(text));
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element(scope)?;
                element.children.push(XmlNode::Element(child));
            } else if self.peek().is_none() {
                return self.err(format!("unexpected end of input inside <{raw_name}>"));
            } else {
                let text = self.parse_text()?;
                if !(self.strip_ws && text.trim().is_empty()) {
                    element.children.push(XmlNode::Text(text));
                }
            }
        }
    }

    /// Merge adjacent text nodes produced by entity splitting.
    fn coalesce_text(&self, element: &mut XmlElement) {
        let mut out: Vec<XmlNode> = Vec::with_capacity(element.children.len());
        for node in element.children.drain(..) {
            match (&mut out.last_mut(), node) {
                (Some(XmlNode::Text(prev)), XmlNode::Text(next)) => prev.push_str(&next),
                (_, node) => out.push(node),
            }
        }
        element.children = out;
    }

    fn parse_comment(&mut self) -> Result<String, XmlError> {
        self.bump_n(4); // <!--
        let start = self.pos;
        while !self.starts_with("-->") {
            if self.bump().is_none() {
                return self.err("unterminated comment");
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.bump_n(3);
        Ok(text)
    }

    fn parse_text(&mut self) -> Result<String, XmlError> {
        let mut out = String::new();
        while let Some(b) = self.peek() {
            match b {
                b'<' => break,
                b'&' => out.push(self.parse_entity()?),
                _ => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        self.bump();
                    }
                    out.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
                }
            }
        }
        Ok(out)
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            _ => return self.err("expected quoted attribute value"),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b) if b == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'&') => out.push(self.parse_entity()?),
                Some(b'<') => return self.err("'<' is not allowed in attribute values"),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' || b == b'<' {
                            break;
                        }
                        self.bump();
                    }
                    out.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
                }
                None => return self.err("unterminated attribute value"),
            }
        }
    }

    fn parse_entity(&mut self) -> Result<char, XmlError> {
        self.expect(b'&')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                break;
            }
            if self.pos - start > 10 {
                return self.err("unterminated entity reference");
            }
            self.bump();
        }
        let name = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.expect(b';')?;
        match name.as_str() {
            "amp" => Ok('&'),
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                u32::from_str_radix(&name[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or(())
                    .or_else(|_| self.err(format!("invalid character reference &{name};")))
            }
            _ if name.starts_with('#') => name[1..]
                .parse::<u32>()
                .ok()
                .and_then(char::from_u32)
                .ok_or(())
                .or_else(|_| self.err(format!("invalid character reference &{name};"))),
            _ => self.err(format!("unknown entity &{name};")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::XmlNode;

    #[test]
    fn parses_simple_document() {
        let e = parse("<r><a>1</a><b/></r>").unwrap();
        assert_eq!(e.name.local, "r");
        assert_eq!(e.elements().count(), 2);
        assert_eq!(e.child("", "a").unwrap().text(), "1");
    }

    #[test]
    fn resolves_namespaces() {
        let e = parse("<p:r xmlns:p='urn:a' xmlns='urn:d'><c/><p:c/></p:r>").unwrap();
        assert!(e.name.is("urn:a", "r"));
        assert!(e.child("urn:d", "c").is_some());
        assert!(e.child("urn:a", "c").is_some());
    }

    #[test]
    fn default_namespace_does_not_apply_to_attributes() {
        let e = parse("<r xmlns='urn:d' a='1'/>").unwrap();
        assert_eq!(e.attribute("a"), Some("1"));
        assert!(e.attribute_ns("urn:d", "a").is_none());
    }

    #[test]
    fn namespace_scoping_and_shadowing() {
        let e = parse("<r xmlns:p='urn:1'><c xmlns:p='urn:2'><p:x/></c><p:y/></r>").unwrap();
        let c = e.child("", "c").unwrap();
        assert!(c.child("urn:2", "x").is_some());
        assert!(e.child("urn:1", "y").is_some());
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        assert!(parse("<p:r/>").is_err());
        assert!(parse("<r p:a='1'/>").is_err());
    }

    #[test]
    fn entities_decode() {
        let e = parse("<r a='&lt;&amp;&quot;'>x &gt; y &#65;&#x42;</r>").unwrap();
        assert_eq!(e.attribute("a"), Some("<&\""));
        assert_eq!(e.text(), "x > y AB");
    }

    #[test]
    fn unknown_entity_is_error() {
        assert!(parse("<r>&nbsp;</r>").is_err());
    }

    #[test]
    fn cdata_sections() {
        let e = parse_preserving("<r><![CDATA[<not & parsed>]]></r>").unwrap();
        assert_eq!(e.text(), "<not & parsed>");
        assert!(matches!(e.children[0], XmlNode::CData(_)));
    }

    #[test]
    fn comments_preserved() {
        let e = parse("<r><!-- hi --><a/></r>").unwrap();
        assert!(matches!(e.children[0], XmlNode::Comment(_)));
    }

    #[test]
    fn mismatched_tags_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn duplicate_attribute_error() {
        assert!(parse("<r a='1' a='2'/>").is_err());
    }

    #[test]
    fn whitespace_stripping_modes() {
        let src = "<r>\n  <a>x</a>\n</r>";
        assert_eq!(parse(src).unwrap().children.len(), 1);
        assert_eq!(parse_preserving(src).unwrap().children.len(), 3);
    }

    #[test]
    fn prolog_and_trailing_misc() {
        let e = parse("<?xml version='1.0'?>\n<!-- head --><r/><!-- tail -->\n").unwrap();
        assert_eq!(e.name.local, "r");
    }

    #[test]
    fn content_after_root_is_error() {
        assert!(parse("<r/><r/>").is_err());
    }

    #[test]
    fn doctype_rejected() {
        assert!(parse("<!DOCTYPE r><r/>").is_err());
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = parse("<r>\n  <bad").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn text_coalesced_across_entities() {
        let e = parse("<r>a&amp;b</r>").unwrap();
        assert_eq!(e.children.len(), 1);
        assert_eq!(e.text(), "a&b");
    }
}
