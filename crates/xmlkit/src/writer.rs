//! XML serialisation.
//!
//! The tree model carries expanded names only, so the serialiser derives
//! the namespace declarations: walking the tree it keeps the in-scope
//! `prefix → uri` map and emits an `xmlns`/`xmlns:p` declaration at the
//! first element where a binding is needed. Prefixes come from each
//! [`QName`]'s preferred prefix; clashes (same prefix bound to a different
//! URI in scope) are resolved by generating `ns1`, `ns2`, ….

use crate::name::QName;
use crate::node::{XmlElement, XmlNode};

/// Serialise compactly (no added whitespace).
pub fn to_string(element: &XmlElement) -> String {
    let mut w = Writer { out: String::new(), indent: None };
    let mut scope = vec![(String::new(), String::new())];
    w.write_element(element, &mut scope, 0);
    w.out
}

/// Serialise with two-space indentation, for human consumption.
pub fn to_pretty_string(element: &XmlElement) -> String {
    let mut w = Writer { out: String::new(), indent: Some(2) };
    let mut scope = vec![(String::new(), String::new())];
    w.write_element(element, &mut scope, 0);
    w.out.push('\n');
    w.out
}

struct Writer {
    out: String,
    indent: Option<usize>,
}

/// Scope is a stack of (prefix, uri) bindings; later entries shadow earlier.
type Scope = Vec<(String, String)>;

fn lookup<'a>(scope: &'a Scope, prefix: &str) -> Option<&'a str> {
    scope.iter().rev().find(|(p, _)| p == prefix).map(|(_, u)| u.as_str())
}

impl Writer {
    fn write_element(&mut self, element: &XmlElement, scope: &mut Scope, depth: usize) {
        let scope_mark = scope.len();
        let mut decls: Vec<(String, String)> = Vec::new();

        // Resolve element prefix.
        let elem_prefix = self.assign_prefix(&element.name, false, scope, &mut decls);
        // Resolve attribute prefixes (attributes may not use the default ns).
        let attr_prefixes: Vec<String> = element
            .attributes
            .iter()
            .map(|a| self.assign_prefix(&a.name, true, scope, &mut decls))
            .collect();

        self.write_indent(depth);
        self.out.push('<');
        self.push_name(&elem_prefix, &element.name.local);
        for (prefix, uri) in &decls {
            if prefix.is_empty() {
                self.out.push_str(" xmlns=\"");
            } else {
                self.out.push_str(" xmlns:");
                self.out.push_str(prefix);
                self.out.push_str("=\"");
            }
            escape_into(uri, true, &mut self.out);
            self.out.push('"');
        }
        for (attr, prefix) in element.attributes.iter().zip(&attr_prefixes) {
            self.out.push(' ');
            self.push_name(prefix, &attr.name.local);
            self.out.push_str("=\"");
            escape_into(&attr.value, true, &mut self.out);
            self.out.push('"');
        }

        if element.children.is_empty() {
            self.out.push_str("/>");
            self.newline();
            scope.truncate(scope_mark);
            return;
        }
        self.out.push('>');

        let text_only = element.children.iter().all(|c| !matches!(c, XmlNode::Element(_)));
        if !text_only {
            self.newline();
        }
        for child in &element.children {
            match child {
                XmlNode::Element(e) => self.write_element(e, scope, depth + 1),
                XmlNode::Text(t) => {
                    if !text_only {
                        self.write_indent(depth + 1);
                    }
                    escape_into(t, false, &mut self.out);
                    if !text_only {
                        self.newline();
                    }
                }
                XmlNode::CData(t) => {
                    if !text_only {
                        self.write_indent(depth + 1);
                    }
                    self.out.push_str("<![CDATA[");
                    self.out.push_str(t);
                    self.out.push_str("]]>");
                    if !text_only {
                        self.newline();
                    }
                }
                XmlNode::Comment(t) => {
                    self.write_indent(depth + 1);
                    self.out.push_str("<!--");
                    self.out.push_str(t);
                    self.out.push_str("-->");
                    self.newline();
                }
            }
        }
        if !text_only {
            self.write_indent(depth);
        }
        self.out.push_str("</");
        self.push_name(&elem_prefix, &element.name.local);
        self.out.push('>');
        self.newline();
        scope.truncate(scope_mark);
    }

    /// Choose a prefix for `name`, adding a declaration if necessary, and
    /// return the prefix to serialise with.
    fn assign_prefix(
        &mut self,
        name: &QName,
        is_attribute: bool,
        scope: &mut Scope,
        decls: &mut Vec<(String, String)>,
    ) -> String {
        if name.namespace.is_empty() {
            // No namespace. For elements the default namespace must not be
            // bound to a URI in scope; if it is, that only happens when a
            // parent declared one — re-declare the empty default.
            if !is_attribute {
                if let Some(uri) = lookup(scope, "") {
                    if !uri.is_empty() {
                        scope.push((String::new(), String::new()));
                        decls.push((String::new(), String::new()));
                    }
                }
            }
            return String::new();
        }

        // Attributes cannot use the default (empty) prefix for a namespace.
        let preferred = if name.prefix.is_empty() && is_attribute {
            "ns".to_string()
        } else {
            name.prefix.clone()
        };

        // Already bound to the right URI?
        if lookup(scope, &preferred) == Some(name.namespace.as_str())
            && !(is_attribute && preferred.is_empty())
        {
            return preferred;
        }
        // Is some other prefix already bound to this URI?
        if let Some((p, _)) = scope
            .iter()
            .rev()
            .find(|(p, u)| u == &name.namespace && !(is_attribute && p.is_empty()))
        {
            // Make sure that binding is not shadowed.
            if lookup(scope, p) == Some(name.namespace.as_str()) {
                return p.clone();
            }
        }
        // Need a new declaration; avoid clobbering an in-scope binding of
        // the preferred prefix to a different URI.
        let mut prefix = preferred;
        if !prefix.is_empty() && lookup(scope, &prefix).is_some() {
            let mut n = 1;
            let base = if prefix.is_empty() { "ns".to_string() } else { prefix.clone() };
            while lookup(scope, &prefix).is_some() {
                prefix = format!("{base}{n}");
                n += 1;
            }
        }
        scope.push((prefix.clone(), name.namespace.clone()));
        decls.push((prefix.clone(), name.namespace.clone()));
        prefix
    }

    fn push_name(&mut self, prefix: &str, local: &str) {
        if !prefix.is_empty() {
            self.out.push_str(prefix);
            self.out.push(':');
        }
        self.out.push_str(local);
    }

    fn write_indent(&mut self, depth: usize) {
        if let Some(n) = self.indent {
            for _ in 0..depth * n {
                self.out.push(' ');
            }
        }
    }

    fn newline(&mut self) {
        if self.indent.is_some() {
            self.out.push('\n');
        }
    }
}

/// Escape text for element content or attribute values.
fn escape_into(s: &str, in_attribute: bool, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if in_attribute => out.push_str("&quot;"),
            '\n' | '\t' if in_attribute => {
                out.push_str(&format!("&#{};", c as u32));
            }
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::XmlElement;

    fn roundtrip(e: &XmlElement) -> XmlElement {
        parse(&to_string(e)).unwrap()
    }

    #[test]
    fn simple_roundtrip() {
        let e = XmlElement::new_local("r")
            .with_attr("a", "v<&\"")
            .with_child(XmlElement::new_local("c").with_text("x & y < z"));
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn namespaced_roundtrip() {
        let e = XmlElement::new("urn:a", "p", "r")
            .with_child(XmlElement::new("urn:b", "q", "c").with_text("t"))
            .with_child(XmlElement::new("urn:a", "p", "d"));
        let rt = roundtrip(&e);
        assert_eq!(rt, e);
        // The second urn:a child should not trigger a new declaration.
        let s = to_string(&e);
        assert_eq!(s.matches("xmlns:p=").count(), 1);
    }

    #[test]
    fn default_namespace_emitted() {
        let e = XmlElement::new("urn:a", "", "r");
        let s = to_string(&e);
        assert!(s.contains("xmlns=\"urn:a\""), "{s}");
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn no_namespace_child_inside_default_ns_parent() {
        let e = XmlElement::new("urn:a", "", "r").with_child(XmlElement::new_local("c"));
        let rt = roundtrip(&e);
        assert_eq!(rt, e, "{}", to_string(&e));
    }

    #[test]
    fn prefix_clash_renames() {
        // Same preferred prefix bound to two URIs in nested scopes.
        let e = XmlElement::new("urn:a", "p", "r").with_child(XmlElement::new("urn:b", "p", "c"));
        let rt = roundtrip(&e);
        assert_eq!(rt, e, "{}", to_string(&e));
    }

    #[test]
    fn namespaced_attributes() {
        let mut e = XmlElement::new_local("r");
        e.set_attr_ns(crate::QName::new("urn:a", "p", "attr"), "v");
        let rt = roundtrip(&e);
        assert_eq!(rt.attribute_ns("urn:a", "attr"), Some("v"));
    }

    #[test]
    fn attribute_in_ns_with_empty_prefix_gets_generated_prefix() {
        let mut e = XmlElement::new_local("r");
        e.set_attr_ns(crate::QName::new("urn:a", "", "attr"), "v");
        let rt = roundtrip(&e);
        assert_eq!(rt.attribute_ns("urn:a", "attr"), Some("v"));
    }

    #[test]
    fn pretty_print_is_reparseable() {
        let e = XmlElement::new_local("r")
            .with_child(XmlElement::new_local("a").with_text("1"))
            .with_child(XmlElement::new_local("b"));
        let pretty = to_pretty_string(&e);
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), e);
    }

    #[test]
    fn cdata_roundtrip() {
        let e = crate::parse_preserving("<r><![CDATA[a<b]]></r>").unwrap();
        let s = to_string(&e);
        assert!(s.contains("<![CDATA[a<b]]>"));
        assert_eq!(crate::parse_preserving(&s).unwrap(), e);
    }

    #[test]
    fn empty_element_uses_self_closing_form() {
        assert_eq!(to_string(&XmlElement::new_local("r")), "<r/>");
    }
}
