//! XML serialisation.
//!
//! The tree model carries expanded names only, so the serialiser derives
//! the namespace declarations: walking the tree it keeps the in-scope
//! `prefix → uri` bindings and emits an `xmlns`/`xmlns:p` declaration at
//! the first element where a binding is needed. Prefixes come from each
//! [`QName`]'s preferred prefix; clashes (same prefix bound to a different
//! URI in scope) are resolved by generating `ns1`, `ns2`, ….
//!
//! Serialisation targets any [`XmlSink`] — `String` for the classic
//! [`to_string`]/[`to_pretty_string`] API, `Vec<u8>` for the wire path's
//! [`to_bytes_into`], which appends into a caller-supplied (typically
//! pooled) buffer after one [`estimated_size`] reservation so steady-state
//! traffic serialises without regrowth. [`XmlWriter`] streams a document
//! out element-by-element without ever building the tree; its output for
//! tree fragments (via [`XmlWriter::element`]) is byte-identical to the
//! tree serialiser because it *is* the tree serialiser, run in the
//! streamed scope.

use crate::name::QName;
use crate::node::{XmlElement, XmlNode};
use dais_util::intern::{intern, IStr};

/// Serialise compactly (no added whitespace).
pub fn to_string(element: &XmlElement) -> String {
    let mut out = String::with_capacity(estimated_size(element));
    let mut w = TreeWriter { out: &mut out, indent: None };
    w.write_element(element, &mut base_scope(), 0);
    out
}

/// Serialise with two-space indentation, for human consumption.
pub fn to_pretty_string(element: &XmlElement) -> String {
    let mut out = String::new();
    let mut w = TreeWriter { out: &mut out, indent: Some(2) };
    w.write_element(element, &mut base_scope(), 0);
    out.push('\n');
    out
}

/// Serialise compactly, appending UTF-8 bytes to `out`. Produces exactly
/// the bytes of [`to_string`]; the buffer is grown once up front from the
/// size-estimation pass, so a reused (pooled) buffer reaches steady state
/// with no reallocation.
pub fn to_bytes_into(element: &XmlElement, out: &mut Vec<u8>) {
    out.reserve(estimated_size(element));
    let mut w = TreeWriter { out, indent: None };
    w.write_element(element, &mut base_scope(), 0);
}

/// Estimate the compact serialised size of `element` in bytes: exact for
/// markup and escape-free content, slightly low when escaping or
/// namespace declarations expand the output. Used as a `reserve` hint.
pub fn estimated_size(element: &XmlElement) -> usize {
    let name = element.name.prefix.len() + element.name.local.len() + 1;
    // `<name ...>` + `</name>` (or `/>`), plus slack for declarations.
    let mut n = 2 * name + 6;
    for a in &element.attributes {
        // ` name="value"`
        n += a.name.prefix.len() + a.name.local.len() + a.value.len() + 5;
    }
    for c in &element.children {
        n += match c {
            XmlNode::Element(e) => estimated_size(e),
            XmlNode::Text(t) => t.len(),
            XmlNode::CData(t) => t.len() + 12,
            XmlNode::Comment(t) => t.len() + 7,
        };
    }
    n
}

/// An output target for the serialiser: `String` or `Vec<u8>` (UTF-8).
pub trait XmlSink {
    fn push_str(&mut self, s: &str);
    fn push(&mut self, c: char);
}

impl XmlSink for String {
    fn push_str(&mut self, s: &str) {
        self.push_str(s);
    }

    fn push(&mut self, c: char) {
        self.push(c);
    }
}

impl XmlSink for Vec<u8> {
    fn push_str(&mut self, s: &str) {
        self.extend_from_slice(s.as_bytes());
    }

    fn push(&mut self, c: char) {
        let mut buf = [0u8; 4];
        self.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
    }
}

/// Scope is a stack of (prefix, uri) bindings; later entries shadow earlier.
type Scope = Vec<(IStr, IStr)>;

fn base_scope() -> Scope {
    vec![(IStr::default(), IStr::default())]
}

fn lookup<'a>(scope: &'a Scope, prefix: &str) -> Option<&'a IStr> {
    scope.iter().rev().find(|(p, _)| *p == prefix).map(|(_, u)| u)
}

/// Choose a prefix for `name`, adding a declaration if necessary, and
/// return the prefix to serialise with.
fn assign_prefix(
    name: &QName,
    is_attribute: bool,
    scope: &mut Scope,
    decls: &mut Vec<(IStr, IStr)>,
) -> IStr {
    if name.namespace.is_empty() {
        // No namespace. For elements the default namespace must not be
        // bound to a URI in scope; if it is, that only happens when a
        // parent declared one — re-declare the empty default.
        if !is_attribute {
            if let Some(uri) = lookup(scope, "") {
                if !uri.is_empty() {
                    scope.push((IStr::default(), IStr::default()));
                    decls.push((IStr::default(), IStr::default()));
                }
            }
        }
        return IStr::default();
    }

    // Attributes cannot use the default (empty) prefix for a namespace.
    let preferred =
        if name.prefix.is_empty() && is_attribute { intern("ns") } else { name.prefix.clone() };

    // Already bound to the right URI?
    if lookup(scope, &preferred).is_some_and(|u| *u == name.namespace)
        && !(is_attribute && preferred.is_empty())
    {
        return preferred;
    }
    // Is some other prefix already bound to this URI?
    if let Some((p, _)) =
        scope.iter().rev().find(|(p, u)| *u == name.namespace && !(is_attribute && p.is_empty()))
    {
        // Make sure that binding is not shadowed.
        if lookup(scope, p).is_some_and(|u| *u == name.namespace) {
            return p.clone();
        }
    }
    // Need a new declaration; avoid clobbering an in-scope binding of
    // the preferred prefix to a different URI.
    let mut prefix = preferred;
    if !prefix.is_empty() && lookup(scope, &prefix).is_some() {
        let base = prefix.clone();
        let mut n = 1;
        while lookup(scope, &prefix).is_some() {
            prefix = IStr::from(format!("{base}{n}"));
            n += 1;
        }
    }
    scope.push((prefix.clone(), name.namespace.clone()));
    decls.push((prefix.clone(), name.namespace.clone()));
    prefix
}

fn push_name<S: XmlSink>(out: &mut S, prefix: &str, local: &str) {
    if !prefix.is_empty() {
        out.push_str(prefix);
        out.push(':');
    }
    out.push_str(local);
}

fn write_decls<S: XmlSink>(out: &mut S, decls: &[(IStr, IStr)]) {
    for (prefix, uri) in decls {
        if prefix.is_empty() {
            out.push_str(" xmlns=\"");
        } else {
            out.push_str(" xmlns:");
            out.push_str(prefix);
            out.push_str("=\"");
        }
        escape_into(uri, true, out);
        out.push('"');
    }
}

struct TreeWriter<'s, S: XmlSink> {
    out: &'s mut S,
    indent: Option<usize>,
}

impl<S: XmlSink> TreeWriter<'_, S> {
    fn write_element(&mut self, element: &XmlElement, scope: &mut Scope, depth: usize) {
        let scope_mark = scope.len();
        let mut decls: Vec<(IStr, IStr)> = Vec::new();

        // Resolve element prefix.
        let elem_prefix = assign_prefix(&element.name, false, scope, &mut decls);
        // Resolve attribute prefixes (attributes may not use the default ns).
        let attr_prefixes: Vec<IStr> = element
            .attributes
            .iter()
            .map(|a| assign_prefix(&a.name, true, scope, &mut decls))
            .collect();

        self.write_indent(depth);
        self.out.push('<');
        push_name(self.out, &elem_prefix, &element.name.local);
        write_decls(self.out, &decls);
        for (attr, prefix) in element.attributes.iter().zip(&attr_prefixes) {
            self.out.push(' ');
            push_name(self.out, prefix, &attr.name.local);
            self.out.push_str("=\"");
            escape_into(&attr.value, true, self.out);
            self.out.push('"');
        }

        if element.children.is_empty() {
            self.out.push_str("/>");
            self.newline();
            scope.truncate(scope_mark);
            return;
        }
        self.out.push('>');

        let text_only = element.children.iter().all(|c| !matches!(c, XmlNode::Element(_)));
        if !text_only {
            self.newline();
        }
        for child in &element.children {
            match child {
                XmlNode::Element(e) => self.write_element(e, scope, depth + 1),
                XmlNode::Text(t) => {
                    if !text_only {
                        self.write_indent(depth + 1);
                    }
                    escape_into(t, false, self.out);
                    if !text_only {
                        self.newline();
                    }
                }
                XmlNode::CData(t) => {
                    if !text_only {
                        self.write_indent(depth + 1);
                    }
                    self.out.push_str("<![CDATA[");
                    self.out.push_str(t);
                    self.out.push_str("]]>");
                    if !text_only {
                        self.newline();
                    }
                }
                XmlNode::Comment(t) => {
                    self.write_indent(depth + 1);
                    self.out.push_str("<!--");
                    self.out.push_str(t);
                    self.out.push_str("-->");
                    self.newline();
                }
            }
        }
        if !text_only {
            self.write_indent(depth);
        }
        self.out.push_str("</");
        push_name(self.out, &elem_prefix, &element.name.local);
        self.out.push('>');
        self.newline();
        scope.truncate(scope_mark);
    }

    fn write_indent(&mut self, depth: usize) {
        if let Some(n) = self.indent {
            for _ in 0..depth * n {
                self.out.push(' ');
            }
        }
    }

    fn newline(&mut self) {
        if self.indent.is_some() {
            self.out.push('\n');
        }
    }
}

/// A streaming, compact XML writer: open elements, write attributes and
/// text, close them — without building an [`XmlElement`] tree first.
///
/// Namespace handling matches the tree serialiser: declarations are
/// derived from the expanded names as they stream past, and whole tree
/// fragments written via [`element`](Self::element) come out byte-for-byte
/// as the tree serialiser would emit them in the same scope. The one
/// divergence is a *namespaced* attribute whose binding is not yet in
/// scope ([`attr_qname`](Self::attr_qname)): its declaration is emitted
/// inline, just before the attribute, rather than grouped with the
/// element-name declarations. Wire-path documents only use un-namespaced
/// attributes, so their streamed bytes are identical to the tree form.
///
/// The closing `>` of a start tag is deferred until content (or the
/// matching [`end`](Self::end)) arrives, so childless elements serialise
/// in the self-closing `<name/>` form exactly like the tree writer.
pub struct XmlWriter<'s, S: XmlSink> {
    out: &'s mut S,
    scope: Scope,
    frames: Vec<Frame>,
    tag_open: bool,
}

struct Frame {
    prefix: IStr,
    local: IStr,
    scope_mark: usize,
}

impl<'s, S: XmlSink> XmlWriter<'s, S> {
    /// A writer appending compact XML to `out`.
    pub fn new(out: &'s mut S) -> Self {
        XmlWriter { out, scope: base_scope(), frames: Vec::new(), tag_open: false }
    }

    /// Open an element; emits `<name` plus any namespace declaration the
    /// name needs. Attributes may follow until content is written.
    pub fn start(&mut self, name: &QName) {
        self.seal_tag();
        let scope_mark = self.scope.len();
        let mut decls: Vec<(IStr, IStr)> = Vec::new();
        let prefix = assign_prefix(name, false, &mut self.scope, &mut decls);
        self.out.push('<');
        push_name(self.out, &prefix, &name.local);
        write_decls(self.out, &decls);
        self.frames.push(Frame { prefix, local: name.local.clone(), scope_mark });
        self.tag_open = true;
    }

    /// Write an un-namespaced attribute on the just-opened element.
    pub fn attr(&mut self, name: &str, value: &str) {
        debug_assert!(self.tag_open, "attr() outside a start tag");
        self.out.push(' ');
        self.out.push_str(name);
        self.out.push_str("=\"");
        escape_into(value, true, self.out);
        self.out.push('"');
    }

    /// Write a namespaced attribute on the just-opened element. A binding
    /// not yet in scope is declared inline before the attribute.
    pub fn attr_qname(&mut self, name: &QName, value: &str) {
        debug_assert!(self.tag_open, "attr_qname() outside a start tag");
        let mut decls: Vec<(IStr, IStr)> = Vec::new();
        let prefix = assign_prefix(name, true, &mut self.scope, &mut decls);
        write_decls(self.out, &decls);
        self.out.push(' ');
        push_name(self.out, &prefix, &name.local);
        self.out.push_str("=\"");
        escape_into(value, true, self.out);
        self.out.push('"');
    }

    /// Write escaped character data inside the current element.
    pub fn text(&mut self, text: &str) {
        self.seal_tag();
        escape_into(text, false, self.out);
    }

    /// Write a whole tree fragment as a child, in the streamed scope.
    pub fn element(&mut self, element: &XmlElement) {
        self.seal_tag();
        let mut w = TreeWriter { out: &mut *self.out, indent: None };
        w.write_element(element, &mut self.scope, 0);
    }

    /// Splice pre-serialised markup into the stream verbatim (no
    /// escaping). The fragment must be well-formed on its own and carry
    /// its own namespace declarations: the surrounding scope is neither
    /// consulted nor extended, so a fragment that relies on an outer
    /// binding — or declares a prefix the enclosing document also uses
    /// for a *different* URI — would serialise differently than the tree
    /// writer. Wire-path fragments (WS-DAIR response bodies) are
    /// self-contained, which is what makes envelope raw-body splicing
    /// byte-identical.
    pub fn raw(&mut self, fragment: &str) {
        self.seal_tag();
        self.out.push_str(fragment);
    }

    /// Close the current element: `/>` if it had no content, `</name>`
    /// otherwise. Bindings it declared go out of scope.
    pub fn end(&mut self) {
        let frame = self.frames.pop().expect("XmlWriter::end without a matching start");
        if self.tag_open {
            self.out.push_str("/>");
            self.tag_open = false;
        } else {
            self.out.push_str("</");
            push_name(self.out, &frame.prefix, &frame.local);
            self.out.push('>');
        }
        self.scope.truncate(frame.scope_mark);
    }

    /// Finish writing. Panics (debug) if elements remain open.
    pub fn finish(self) {
        debug_assert!(self.frames.is_empty(), "XmlWriter dropped with open elements");
    }

    fn seal_tag(&mut self) {
        if self.tag_open {
            self.out.push('>');
            self.tag_open = false;
        }
    }
}

/// Escape text for element content or attribute values. Escape-free runs
/// are copied as whole slices; only the escaped byte itself is rewritten.
fn escape_into<S: XmlSink>(s: &str, in_attribute: bool, out: &mut S) {
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let replacement = match b {
            b'&' => "&amp;",
            b'<' => "&lt;",
            b'>' => "&gt;",
            b'"' if in_attribute => "&quot;",
            b'\n' if in_attribute => "&#10;",
            b'\t' if in_attribute => "&#9;",
            _ => continue,
        };
        if start < i {
            out.push_str(&s[start..i]);
        }
        out.push_str(replacement);
        start = i + 1;
    }
    if start < s.len() {
        out.push_str(&s[start..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::XmlElement;

    fn roundtrip(e: &XmlElement) -> XmlElement {
        parse(&to_string(e)).unwrap()
    }

    #[test]
    fn simple_roundtrip() {
        let e = XmlElement::new_local("r")
            .with_attr("a", "v<&\"")
            .with_child(XmlElement::new_local("c").with_text("x & y < z"));
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn namespaced_roundtrip() {
        let e = XmlElement::new("urn:a", "p", "r")
            .with_child(XmlElement::new("urn:b", "q", "c").with_text("t"))
            .with_child(XmlElement::new("urn:a", "p", "d"));
        let rt = roundtrip(&e);
        assert_eq!(rt, e);
        // The second urn:a child should not trigger a new declaration.
        let s = to_string(&e);
        assert_eq!(s.matches("xmlns:p=").count(), 1);
    }

    #[test]
    fn default_namespace_emitted() {
        let e = XmlElement::new("urn:a", "", "r");
        let s = to_string(&e);
        assert!(s.contains("xmlns=\"urn:a\""), "{s}");
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn no_namespace_child_inside_default_ns_parent() {
        let e = XmlElement::new("urn:a", "", "r").with_child(XmlElement::new_local("c"));
        let rt = roundtrip(&e);
        assert_eq!(rt, e, "{}", to_string(&e));
    }

    #[test]
    fn prefix_clash_renames() {
        // Same preferred prefix bound to two URIs in nested scopes.
        let e = XmlElement::new("urn:a", "p", "r").with_child(XmlElement::new("urn:b", "p", "c"));
        let rt = roundtrip(&e);
        assert_eq!(rt, e, "{}", to_string(&e));
    }

    #[test]
    fn namespaced_attributes() {
        let mut e = XmlElement::new_local("r");
        e.set_attr_ns(crate::QName::new("urn:a", "p", "attr"), "v");
        let rt = roundtrip(&e);
        assert_eq!(rt.attribute_ns("urn:a", "attr"), Some("v"));
    }

    #[test]
    fn attribute_in_ns_with_empty_prefix_gets_generated_prefix() {
        let mut e = XmlElement::new_local("r");
        e.set_attr_ns(crate::QName::new("urn:a", "", "attr"), "v");
        let rt = roundtrip(&e);
        assert_eq!(rt.attribute_ns("urn:a", "attr"), Some("v"));
    }

    #[test]
    fn pretty_print_is_reparseable() {
        let e = XmlElement::new_local("r")
            .with_child(XmlElement::new_local("a").with_text("1"))
            .with_child(XmlElement::new_local("b"));
        let pretty = to_pretty_string(&e);
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), e);
    }

    #[test]
    fn cdata_roundtrip() {
        let e = crate::parse_preserving("<r><![CDATA[a<b]]></r>").unwrap();
        let s = to_string(&e);
        assert!(s.contains("<![CDATA[a<b]]>"));
        assert_eq!(crate::parse_preserving(&s).unwrap(), e);
    }

    #[test]
    fn empty_element_uses_self_closing_form() {
        assert_eq!(to_string(&XmlElement::new_local("r")), "<r/>");
    }

    #[test]
    fn to_bytes_into_matches_to_string() {
        let e = XmlElement::new("urn:a", "p", "r")
            .with_attr("a", "x & y\n")
            .with_child(XmlElement::new("urn:b", "", "c").with_text("1 < 2"))
            .with_child(XmlElement::new_local("d"));
        let mut buf = Vec::new();
        to_bytes_into(&e, &mut buf);
        assert_eq!(buf, to_string(&e).into_bytes());
    }

    #[test]
    fn to_bytes_into_appends() {
        let mut buf = b"prefix:".to_vec();
        to_bytes_into(&XmlElement::new_local("r"), &mut buf);
        assert_eq!(buf, b"prefix:<r/>");
    }

    #[test]
    fn estimated_size_is_close_for_escape_free_documents() {
        let e = XmlElement::new_local("root")
            .with_attr("a", "value")
            .with_child(XmlElement::new_local("child").with_text("some text"));
        let actual = to_string(&e).len();
        let estimate = estimated_size(&e);
        assert!(estimate >= actual, "estimate {estimate} below actual {actual}");
        assert!(estimate <= actual + 16, "estimate {estimate} far above actual {actual}");
    }

    #[test]
    fn streaming_writer_matches_tree_writer() {
        // The envelope shape the wire path streams: nested namespaced
        // frames with tree fragments written inside them.
        let header = XmlElement::new("urn:wsa", "wsa", "To").with_text("bus://x");
        let payload = XmlElement::new("urn:req", "q", "Req")
            .with_attr("language", "urn:sql")
            .with_text("SELECT 'a<b&c'");

        let tree = XmlElement::new("urn:env", "env", "Envelope")
            .with_child(XmlElement::new("urn:env", "env", "Header").with_child(header.clone()))
            .with_child(XmlElement::new("urn:env", "env", "Body").with_child(payload.clone()));

        let mut streamed = String::new();
        let mut w = XmlWriter::new(&mut streamed);
        w.start(&QName::new("urn:env", "env", "Envelope"));
        w.start(&QName::new("urn:env", "env", "Header"));
        w.element(&header);
        w.end();
        w.start(&QName::new("urn:env", "env", "Body"));
        w.element(&payload);
        w.end();
        w.end();
        w.finish();
        assert_eq!(streamed, to_string(&tree));
    }

    #[test]
    fn streaming_writer_childless_elements_self_close() {
        let mut out = String::new();
        let mut w = XmlWriter::new(&mut out);
        w.start(&QName::local("r"));
        w.start(&QName::local("empty"));
        w.attr("k", "a\"b");
        w.end();
        w.start(&QName::local("full"));
        w.text("x < y");
        w.end();
        w.end();
        w.finish();
        assert_eq!(out, "<r><empty k=\"a&quot;b\"/><full>x &lt; y</full></r>");
    }

    #[test]
    fn streaming_writer_scopes_namespace_declarations() {
        let mut out = String::new();
        let mut w = XmlWriter::new(&mut out);
        w.start(&QName::new("urn:a", "p", "r"));
        w.start(&QName::new("urn:a", "p", "c"));
        w.end();
        w.end();
        w.finish();
        // One declaration, on the root; the child reuses it.
        assert_eq!(out, "<p:r xmlns:p=\"urn:a\"><p:c/></p:r>");
    }
}
