//! A namespace-aware pull (event) parser.
//!
//! The tree parser in [`crate::parser`] materialises every element,
//! attribute and text node before the caller sees any of them — the
//! right shape for small protocol messages, and exactly the wrong shape
//! for a 200 KB WebRowSet page whose cells are consumed once and
//! discarded. [`PullParser`] walks the same grammar with the same
//! lexing rules (borrowed names and text, entity rewriting only when an
//! escape actually appears, flat namespace scope with truncation marks,
//! [`crate::parser::MAX_DEPTH`] nesting cap) but yields a stream of
//! [`PullEvent`]s instead of a tree: the caller decodes rows as the
//! bytes stream past and nothing outlives its event.
//!
//! Whitespace-only text between elements is skipped, matching
//! [`crate::parse`]; meaningful whitespace travels in attributes on the
//! DAIS wire, so nothing is lost.

use crate::parser::{XmlError, MAX_DEPTH};
use dais_util::intern::{intern, IStr};
use std::borrow::Cow;

/// One parse event. `Start` carries the resolved namespace and the
/// local name borrowed from the input; the element's attributes are
/// available through [`PullParser::attr`] until the next event.
#[derive(Debug, Clone, PartialEq)]
pub enum PullEvent<'a> {
    /// An element opened. For an empty element (`<x/>`), the matching
    /// [`PullEvent::End`] is delivered by the next call.
    Start { namespace: IStr, local: &'a str },
    /// Character data (text or CDATA) inside the current element.
    Text(Cow<'a, str>),
    /// The most recently opened element closed.
    End,
}

/// Namespace scope: flat `(prefix, uri)` bindings with per-element
/// truncation marks — the same shape the tree parser uses.
struct NsScope<'a> {
    bindings: Vec<(&'a str, IStr)>,
    marks: Vec<usize>,
}

impl<'a> NsScope<'a> {
    fn new() -> Self {
        NsScope {
            bindings: vec![
                ("xml", intern("http://www.w3.org/XML/1998/namespace")),
                ("", IStr::default()),
            ],
            marks: Vec::new(),
        }
    }

    fn push(&mut self) {
        self.marks.push(self.bindings.len());
    }

    fn pop(&mut self) {
        if let Some(mark) = self.marks.pop() {
            self.bindings.truncate(mark);
        }
    }

    fn declare(&mut self, prefix: &'a str, uri: IStr) {
        self.bindings.push((prefix, uri));
    }

    fn resolve(&self, prefix: &str) -> Option<&IStr> {
        self.bindings.iter().rev().find(|(p, _)| *p == prefix).map(|(_, u)| u)
    }
}

/// The pull parser. Create with [`PullParser::new`], then drive with
/// [`next`](Self::next) until it returns `Ok(None)` (document done).
pub struct PullParser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    scope: NsScope<'a>,
    /// Raw (prefixed) names of the open elements, for close-tag checks.
    open: Vec<&'a str>,
    /// The just-started element self-closed: deliver `End` next.
    pending_end: bool,
    /// The root element has closed; only trailing misc may remain.
    done: bool,
    /// Attributes of the most recent `Start`, raw names as written
    /// (xmlns declarations excluded — they go into the scope).
    attrs: Vec<(&'a str, Cow<'a, str>)>,
}

impl<'a> PullParser<'a> {
    /// Start parsing a document; consumes the prolog immediately.
    pub fn new(input: &'a str) -> Result<Self, XmlError> {
        let mut p = PullParser {
            text: input,
            bytes: input.as_bytes(),
            pos: 0,
            scope: NsScope::new(),
            open: Vec::new(),
            pending_end: false,
            done: false,
            attrs: Vec::new(),
        };
        p.skip_prolog()?;
        Ok(p)
    }

    /// The next event, or `None` when the document is fully consumed.
    /// Not `Iterator::next`: events borrow the input and errors must
    /// surface per call, which the trait's signature cannot express.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<PullEvent<'a>>, XmlError> {
        if self.pending_end {
            self.pending_end = false;
            self.scope.pop();
            self.open.pop();
            if self.open.is_empty() {
                self.done = true;
            }
            return Ok(Some(PullEvent::End));
        }
        loop {
            if self.done {
                // Trailing misc: whitespace and comments only.
                self.skip_ws();
                if self.starts_with("<!--") {
                    self.skip_comment()?;
                    continue;
                }
                if self.pos != self.bytes.len() {
                    return self.err("content after document element");
                }
                return Ok(None);
            }
            if self.starts_with("</") {
                self.advance(2);
                let close = self.parse_name()?;
                let Some(expected) = self.open.pop() else {
                    return self.err(format!("unmatched close tag </{close}>"));
                };
                if close != expected {
                    return self.err(format!("mismatched close tag </{close}> for <{expected}>"));
                }
                self.skip_ws();
                self.expect(b'>')?;
                self.scope.pop();
                if self.open.is_empty() {
                    self.done = true;
                }
                return Ok(Some(PullEvent::End));
            }
            if self.starts_with("<!--") {
                self.skip_comment()?;
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.advance(9);
                let start = self.pos;
                let Some(end) = self.find("]]>") else {
                    self.pos = self.bytes.len();
                    return self.err("unterminated CDATA section");
                };
                let text = &self.text[start..end];
                self.pos = end + 3;
                if self.open.is_empty() {
                    return self.err("character data outside the document element");
                }
                return Ok(Some(PullEvent::Text(Cow::Borrowed(text))));
            }
            if self.peek() == Some(b'<') {
                return self.parse_start_tag().map(Some);
            }
            if self.peek().is_none() {
                return match self.open.last() {
                    Some(name) => self.err(format!("unexpected end of input inside <{name}>")),
                    None => self.err("unexpected end of input"),
                };
            }
            let text = self.parse_text()?;
            if self.open.is_empty() {
                if text.trim().is_empty() {
                    continue;
                }
                return self.err("character data outside the document element");
            }
            if text.trim().is_empty() {
                continue;
            }
            return Ok(Some(PullEvent::Text(text)));
        }
    }

    /// Look up an attribute of the most recent `Start` event by its raw
    /// (as-written) name. Valid until the next call to `next`.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_ref())
    }

    /// Skip the rest of the current element: consumes events until the
    /// `End` matching the most recent `Start` has been delivered.
    pub fn skip_element(&mut self) -> Result<(), XmlError> {
        let mut depth = 1usize;
        while depth > 0 {
            match self.next()? {
                Some(PullEvent::Start { .. }) => depth += 1,
                Some(PullEvent::End) => depth -= 1,
                Some(PullEvent::Text(_)) => {}
                None => return self.err("unexpected end of input while skipping an element"),
            }
        }
        Ok(())
    }

    /// Accumulate the current element's character data into `out` and
    /// consume its `End`. Child elements are rejected — this is for leaf
    /// cells whose content is text only.
    pub fn text_content_into(&mut self, out: &mut String) -> Result<(), XmlError> {
        loop {
            match self.next()? {
                Some(PullEvent::Text(t)) => out.push_str(&t),
                Some(PullEvent::End) => return Ok(()),
                Some(PullEvent::Start { local, .. }) => {
                    return self.err(format!("unexpected child element <{local}> in a text cell"))
                }
                None => return self.err("unexpected end of input in a text cell"),
            }
        }
    }

    // ---- Lexing (mirrors crate::parser's rules). ------------------------

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, XmlError> {
        let upto = &self.bytes[..self.pos];
        let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
        let column = match upto.iter().rposition(|&b| b == b'\n') {
            Some(nl) => self.pos - nl,
            None => self.pos + 1,
        };
        Err(XmlError { message: msg.into(), line, column })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
    }

    fn find(&self, delim: &str) -> Option<usize> {
        let d = delim.as_bytes();
        self.bytes[self.pos..].windows(d.len()).position(|w| w == d).map(|i| self.pos + i)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), XmlError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?xml") {
                match self.find("?>") {
                    Some(end) => self.pos = end + 2,
                    None => {
                        self.pos = self.bytes.len();
                        return self.err("unterminated XML declaration");
                    }
                }
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                return self.err("DOCTYPE is not supported");
            } else {
                return Ok(());
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), XmlError> {
        self.advance(4); // <!--
        match self.find("-->") {
            Some(end) => {
                self.pos = end + 3;
                Ok(())
            }
            None => {
                self.pos = self.bytes.len();
                self.err("unterminated comment")
            }
        }
    }

    fn parse_name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            let ok = if self.pos == start {
                b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
            } else {
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80
            };
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(&self.text[start..self.pos])
    }

    fn split_name(&self, raw: &'a str) -> Result<(&'a str, &'a str), XmlError> {
        match raw.split_once(':') {
            None => Ok(("", raw)),
            Some((p, l)) if !p.is_empty() && !l.is_empty() && !l.contains(':') => Ok((p, l)),
            _ => self.err(format!("malformed qualified name '{raw}'")),
        }
    }

    fn parse_start_tag(&mut self) -> Result<PullEvent<'a>, XmlError> {
        if self.open.len() >= MAX_DEPTH {
            return self.err(format!("element nesting exceeds the maximum depth of {MAX_DEPTH}"));
        }
        self.expect(b'<')?;
        let raw_name = self.parse_name()?;
        self.scope.push();
        self.attrs.clear();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') => break,
                Some(_) => {
                    let an = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let av = self.parse_attr_value()?;
                    if an == "xmlns" {
                        self.scope.declare("", intern(&av));
                    } else if let Some(p) = an.strip_prefix("xmlns:") {
                        if p.is_empty() {
                            return self.err("empty namespace prefix declaration");
                        }
                        if av.is_empty() {
                            return self.err("cannot bind a prefix to the empty namespace");
                        }
                        self.scope.declare(p, intern(&av));
                    } else {
                        if self.attrs.iter().any(|(n, _)| *n == an) {
                            return self.err(format!("duplicate attribute '{an}'"));
                        }
                        self.attrs.push((an, av));
                    }
                }
                None => return self.err("unexpected end of input in tag"),
            }
        }
        let (prefix, local) = self.split_name(raw_name)?;
        let namespace = match self.scope.resolve(prefix) {
            Some(u) => u.clone(),
            None => return self.err(format!("undeclared namespace prefix '{prefix}'")),
        };
        self.open.push(raw_name);
        if self.peek() == Some(b'/') {
            self.pos += 1;
            self.expect(b'>')?;
            self.pending_end = true;
        } else {
            self.expect(b'>')?;
        }
        Ok(PullEvent::Start { namespace, local })
    }

    fn parse_text(&mut self) -> Result<Cow<'a, str>, XmlError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'<' => return Ok(Cow::Borrowed(&self.text[start..self.pos])),
                b'&' => break,
                _ => self.pos += 1,
            }
        }
        if self.pos >= self.bytes.len() {
            return Ok(Cow::Borrowed(&self.text[start..self.pos]));
        }
        let mut out = String::with_capacity(self.pos - start + 16);
        out.push_str(&self.text[start..self.pos]);
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'<' => break,
                b'&' => out.push(self.parse_entity()?),
                _ => {
                    let run = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.text[run..self.pos]);
                }
            }
        }
        Ok(Cow::Owned(out))
    }

    fn parse_attr_value(&mut self) -> Result<Cow<'a, str>, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                q
            }
            _ => return self.err("expected quoted attribute value"),
        };
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == quote {
                let v = &self.text[start..self.pos];
                self.pos += 1;
                return Ok(Cow::Borrowed(v));
            }
            match b {
                b'&' => break,
                b'<' => return self.err("'<' is not allowed in attribute values"),
                _ => self.pos += 1,
            }
        }
        if self.pos >= self.bytes.len() {
            return self.err("unterminated attribute value");
        }
        let mut out = String::with_capacity(self.pos - start + 16);
        out.push_str(&self.text[start..self.pos]);
        loop {
            match self.peek() {
                Some(b) if b == quote => {
                    self.pos += 1;
                    return Ok(Cow::Owned(out));
                }
                Some(b'&') => out.push(self.parse_entity()?),
                Some(b'<') => return self.err("'<' is not allowed in attribute values"),
                Some(_) => {
                    let run = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == quote || b == b'&' || b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.text[run..self.pos]);
                }
                None => return self.err("unterminated attribute value"),
            }
        }
    }

    fn parse_entity(&mut self) -> Result<char, XmlError> {
        self.expect(b'&')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                break;
            }
            if self.pos - start > 10 {
                return self.err("unterminated entity reference");
            }
            self.pos += 1;
        }
        let name = &self.text[start..self.pos];
        self.expect(b';')?;
        match name {
            "amp" => Ok('&'),
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                u32::from_str_radix(&name[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or(())
                    .or_else(|_| self.err(format!("invalid character reference &{name};")))
            }
            _ if name.starts_with('#') => name[1..]
                .parse::<u32>()
                .ok()
                .and_then(char::from_u32)
                .ok_or(())
                .or_else(|_| self.err(format!("invalid character reference &{name};"))),
            _ => self.err(format!("unknown entity &{name};")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(input: &str) -> Vec<String> {
        let mut p = PullParser::new(input).unwrap();
        let mut out = Vec::new();
        while let Some(ev) = p.next().unwrap() {
            out.push(match ev {
                PullEvent::Start { namespace, local } => format!("<{namespace}|{local}"),
                PullEvent::Text(t) => format!("'{t}'"),
                PullEvent::End => ">".to_string(),
            });
        }
        out
    }

    #[test]
    fn simple_event_stream() {
        assert_eq!(drain("<r><a>1</a><b/></r>"), ["<|r", "<|a", "'1'", ">", "<|b", ">", ">"]);
    }

    #[test]
    fn namespaces_resolve_and_scope() {
        let evs = drain("<p:r xmlns:p='urn:a' xmlns='urn:d'><c/><p:c/></p:r>");
        assert_eq!(evs, ["<urn:a|r", "<urn:d|c", ">", "<urn:a|c", ">", ">"]);
    }

    #[test]
    fn attributes_are_available_after_start() {
        let mut p = PullParser::new("<r a='1' b='x &amp; y'><c/></r>").unwrap();
        assert!(matches!(p.next().unwrap(), Some(PullEvent::Start { .. })));
        assert_eq!(p.attr("a"), Some("1"));
        assert_eq!(p.attr("b"), Some("x & y"));
        assert_eq!(p.attr("missing"), None);
        // Attrs are replaced by the next Start.
        assert!(matches!(p.next().unwrap(), Some(PullEvent::Start { .. })));
        assert_eq!(p.attr("a"), None);
    }

    #[test]
    fn entities_decode_in_text() {
        assert_eq!(drain("<r>x &gt; y &#65;&#x42;</r>"), ["<|r", "'x > y AB'", ">"]);
    }

    #[test]
    fn whitespace_between_elements_is_skipped() {
        assert_eq!(drain("<r>\n  <a>x</a>\n</r>"), ["<|r", "<|a", "'x'", ">", ">"]);
    }

    #[test]
    fn comments_and_cdata() {
        assert_eq!(
            drain("<!-- head --><r><!-- mid --><![CDATA[a<b]]></r><!-- tail -->"),
            ["<|r", "'a<b'", ">"]
        );
    }

    #[test]
    fn skip_element_consumes_the_subtree() {
        let mut p = PullParser::new("<r><skip><deep><er/>text</deep></skip><keep/></r>").unwrap();
        p.next().unwrap(); // <r
        p.next().unwrap(); // <skip
        p.skip_element().unwrap();
        match p.next().unwrap() {
            Some(PullEvent::Start { local, .. }) => assert_eq!(local, "keep"),
            other => panic!("expected <keep>, got {other:?}"),
        }
    }

    #[test]
    fn text_content_into_accumulates_across_entities() {
        let mut p = PullParser::new("<r><c>a&amp;b</c></r>").unwrap();
        p.next().unwrap(); // <r
        p.next().unwrap(); // <c
        let mut s = String::new();
        p.text_content_into(&mut s).unwrap();
        assert_eq!(s, "a&b");
        assert!(matches!(p.next().unwrap(), Some(PullEvent::End))); // </r>
        assert!(p.next().unwrap().is_none());
    }

    #[test]
    fn malformed_documents_error() {
        for bad in [
            "<r><a></r></a>",
            "<r a='1' a='2'/>",
            "<p:r/>",
            "<r>&nbsp;</r>",
            "<r/><r/>",
            "<!DOCTYPE r><r/>",
            "<r",
        ] {
            let mut p = match PullParser::new(bad) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let mut errored = false;
            for _ in 0..64 {
                match p.next() {
                    Err(_) => {
                        errored = true;
                        break;
                    }
                    Ok(None) => break,
                    Ok(Some(_)) => {}
                }
            }
            assert!(errored, "expected a parse error for {bad:?}");
        }
    }

    #[test]
    fn depth_cap_holds() {
        let mut doc = String::new();
        for _ in 0..(MAX_DEPTH + 2) {
            doc.push_str("<d>");
        }
        let mut p = PullParser::new(&doc).unwrap();
        let mut errored = false;
        for _ in 0..(MAX_DEPTH + 4) {
            if let Err(e) = p.next() {
                assert!(e.message.contains("depth"), "{e}");
                errored = true;
                break;
            }
        }
        assert!(errored);
    }

    #[test]
    fn agrees_with_the_tree_parser_on_wire_shaped_documents() {
        // The streamed decoder and the tree parser must see the same
        // logical content for the document shapes the wire produces.
        let doc = "<w:root xmlns:w='urn:w'><w:row a='1'><w:cell>v &lt; 2</w:cell>\
                   <w:cell null='true'/></w:row></w:root>";
        let tree = crate::parse(doc).unwrap();
        assert_eq!(
            drain(doc),
            [
                "<urn:w|root",
                "<urn:w|row",
                "<urn:w|cell",
                "'v < 2'",
                ">",
                "<urn:w|cell",
                ">",
                ">",
                ">"
            ]
        );
        assert_eq!(tree.name.local, "root");
    }
}
