//! The XML tree model: elements, attributes and child nodes.

use crate::name::QName;
use dais_util::intern::IStr;

/// An attribute on an element. Attribute names follow the same expanded
/// naming rules as element names; un-prefixed attributes are in no
/// namespace (per the XML namespaces recommendation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: QName,
    pub value: String,
}

/// A child node of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    Element(XmlElement),
    /// Character data (entity references already resolved).
    Text(String),
    /// A CDATA section; semantically text, kept distinct so serialisation
    /// can preserve the section form.
    CData(String),
    Comment(String),
}

impl XmlNode {
    /// The element inside this node, if it is one.
    pub fn as_element(&self) -> Option<&XmlElement> {
        match self {
            XmlNode::Element(e) => Some(e),
            _ => None,
        }
    }

    /// The textual content if this node is text or CDATA.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            XmlNode::Text(t) | XmlNode::CData(t) => Some(t),
            _ => None,
        }
    }
}

/// An XML element: a name, attributes and ordered children.
///
/// Elements are plain values: cheap to build, clone and compare. Structural
/// equality ignores nothing — two elements are equal iff names, attributes
/// (in order) and children (in order) are equal. Protocol code that wants
/// whitespace-insensitive comparison should parse with [`crate::parse`]
/// (which drops ignorable whitespace) or call [`XmlElement::normalized`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    pub name: QName,
    pub attributes: Vec<Attribute>,
    pub children: Vec<XmlNode>,
}

impl XmlElement {
    /// Create an empty element in no namespace.
    pub fn new_local(local: impl Into<IStr>) -> Self {
        XmlElement { name: QName::local(local), ..Default::default() }
    }

    /// Create an empty element with a namespaced name.
    pub fn new(
        namespace: impl Into<IStr>,
        prefix: impl Into<IStr>,
        local: impl Into<IStr>,
    ) -> Self {
        XmlElement { name: QName::new(namespace, prefix, local), ..Default::default() }
    }

    /// Builder: add an attribute (no namespace) and return `self`.
    pub fn with_attr(mut self, name: impl Into<IStr>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder: append a child element and return `self`.
    pub fn with_child(mut self, child: XmlElement) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Builder: append a text node and return `self`.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Set (or replace) an un-namespaced attribute.
    pub fn set_attr(&mut self, name: impl Into<IStr>, value: impl Into<String>) {
        let name = QName::local(name);
        let value = value.into();
        if let Some(a) = self.attributes.iter_mut().find(|a| a.name == name) {
            a.value = value;
        } else {
            self.attributes.push(Attribute { name, value });
        }
    }

    /// Set (or replace) a namespaced attribute.
    pub fn set_attr_ns(&mut self, name: QName, value: impl Into<String>) {
        let value = value.into();
        if let Some(a) = self.attributes.iter_mut().find(|a| a.name == name) {
            a.value = value;
        } else {
            self.attributes.push(Attribute { name, value });
        }
    }

    /// Look up an un-namespaced attribute value.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name.namespace.is_empty() && a.name.local == name)
            .map(|a| a.value.as_str())
    }

    /// Look up a namespaced attribute value.
    pub fn attribute_ns(&self, namespace: &str, local: &str) -> Option<&str> {
        self.attributes.iter().find(|a| a.name.is(namespace, local)).map(|a| a.value.as_str())
    }

    /// Append a child element.
    pub fn push(&mut self, child: XmlElement) {
        self.children.push(XmlNode::Element(child));
    }

    /// Append a text node.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(XmlNode::Text(text.into()));
    }

    /// Iterate over child elements.
    pub fn elements(&self) -> impl Iterator<Item = &XmlElement> {
        self.children.iter().filter_map(XmlNode::as_element)
    }

    /// First child element with the given expanded name.
    pub fn child(&self, namespace: &str, local: &str) -> Option<&XmlElement> {
        self.elements().find(|e| e.name.is(namespace, local))
    }

    /// All child elements with the given expanded name.
    pub fn children_named<'a>(
        &'a self,
        namespace: &'a str,
        local: &'a str,
    ) -> impl Iterator<Item = &'a XmlElement> + 'a {
        self.elements().filter(move |e| e.name.is(namespace, local))
    }

    /// First child element with the given local name, ignoring namespace.
    /// Useful for lax protocol parsing.
    pub fn child_local(&self, local: &str) -> Option<&XmlElement> {
        self.elements().find(|e| e.name.local == local)
    }

    /// The *string value* of this element per XPath: the concatenation of
    /// all descendant text, in document order.
    pub fn text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for c in &self.children {
            match c {
                XmlNode::Text(t) | XmlNode::CData(t) => out.push_str(t),
                XmlNode::Element(e) => e.collect_text(out),
                XmlNode::Comment(_) => {}
            }
        }
    }

    /// Text of the first child element with the given expanded name, if any.
    pub fn child_text(&self, namespace: &str, local: &str) -> Option<String> {
        self.child(namespace, local).map(XmlElement::text)
    }

    /// A copy with whitespace-only text nodes removed (recursively) and
    /// remaining text trimmed when it sits beside element siblings. This
    /// yields the canonical form used for message comparison in tests.
    pub fn normalized(&self) -> XmlElement {
        let has_elem = self.children.iter().any(|c| matches!(c, XmlNode::Element(_)));
        let mut out = XmlElement {
            name: self.name.clone(),
            attributes: self.attributes.clone(),
            children: Vec::with_capacity(self.children.len()),
        };
        for c in &self.children {
            match c {
                XmlNode::Element(e) => out.children.push(XmlNode::Element(e.normalized())),
                XmlNode::Text(t) | XmlNode::CData(t) => {
                    if t.trim().is_empty() {
                        // Whitespace-only text is never significant in
                        // protocol messages (matches `parse`'s default).
                    } else if has_elem {
                        out.children.push(XmlNode::Text(t.trim().to_string()));
                    } else {
                        out.children.push(XmlNode::Text(t.clone()));
                    }
                }
                XmlNode::Comment(_) => {}
            }
        }
        out
    }

    /// Number of descendant nodes (elements + text + comments), used by
    /// size-sensitive experiments.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| match c {
                XmlNode::Element(e) => e.node_count(),
                _ => 1,
            })
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> XmlElement {
        XmlElement::new_local("root")
            .with_attr("id", "1")
            .with_child(XmlElement::new_local("a").with_text("one"))
            .with_child(XmlElement::new("urn:x", "x", "b").with_text("two"))
    }

    #[test]
    fn builder_and_navigation() {
        let e = sample();
        assert_eq!(e.attribute("id"), Some("1"));
        assert_eq!(e.child("", "a").unwrap().text(), "one");
        assert_eq!(e.child("urn:x", "b").unwrap().text(), "two");
        assert!(e.child("urn:y", "b").is_none());
        assert_eq!(e.elements().count(), 2);
    }

    #[test]
    fn string_value_concatenates_descendants() {
        let e = XmlElement::new_local("r")
            .with_text("a")
            .with_child(XmlElement::new_local("c").with_text("b"))
            .with_text("c");
        assert_eq!(e.text(), "abc");
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = XmlElement::new_local("r");
        e.set_attr("k", "1");
        e.set_attr("k", "2");
        assert_eq!(e.attributes.len(), 1);
        assert_eq!(e.attribute("k"), Some("2"));
    }

    #[test]
    fn normalized_strips_ignorable_whitespace() {
        let e = XmlElement::new_local("r")
            .with_text("\n  ")
            .with_child(XmlElement::new_local("c").with_text("  keep  "))
            .with_text("\n");
        let n = e.normalized();
        assert_eq!(n.children.len(), 1);
        // text inside a text-only element is preserved verbatim
        assert_eq!(n.child("", "c").unwrap().text(), "  keep  ");
    }

    #[test]
    fn child_text_helper() {
        let e = sample();
        assert_eq!(e.child_text("", "a").as_deref(), Some("one"));
        assert_eq!(e.child_text("", "zz"), None);
    }

    #[test]
    fn node_count_counts_all() {
        // root + a + text + b + text = 5
        assert_eq!(sample().node_count(), 5);
    }

    #[test]
    fn children_named_filters() {
        let e = XmlElement::new_local("r")
            .with_child(XmlElement::new_local("i").with_text("1"))
            .with_child(XmlElement::new_local("j"))
            .with_child(XmlElement::new_local("i").with_text("2"));
        let texts: Vec<String> = e.children_named("", "i").map(|c| c.text()).collect();
        assert_eq!(texts, vec!["1", "2"]);
    }
}
