//! Self-tests: the fixture tree under `fixtures/violations/` seeds one
//! deliberate violation of every lint, and the real workspace stays
//! clean. One test per lint so a regression names the broken check.

use dais_check::{check_workspace, Report, Violation};
use std::path::{Path, PathBuf};

fn fixtures_report() -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/violations");
    check_workspace(&root).expect("fixture scan")
}

fn find<'a>(report: &'a Report, lint: &str) -> Vec<&'a Violation> {
    report.violations.iter().filter(|v| v.lint == lint).collect()
}

fn assert_fires(lint: &str, in_file: &str) -> Vec<(PathBuf, usize, String)> {
    let report = fixtures_report();
    let hits = find(&report, lint);
    assert!(
        !hits.is_empty(),
        "fixtures did not trip `{lint}`; tripped: {:?}",
        report.violations.iter().map(|v| v.lint).collect::<Vec<_>>()
    );
    assert!(
        hits.iter().any(|v| v.file.to_string_lossy().replace('\\', "/").contains(in_file)),
        "`{lint}` did not fire in {in_file}: {hits:?}"
    );
    hits.iter().map(|v| (v.file.clone(), v.line, v.message.clone())).collect()
}

#[test]
fn trips_unregistered_send() {
    assert_fires("unregistered-send", "alpha/src/client.rs");
}

#[test]
fn trips_unreachable_registration() {
    let hits = assert_fires("unreachable-registration", "alpha/src/service.rs");
    assert!(hits[0].2.contains("LonelyRegistered"));
}

#[test]
fn trips_unknown_idempotency_action() {
    let hits = assert_fires("unknown-idempotency-action", "alpha/src/client.rs");
    assert!(hits[0].2.contains("NOT_A_CONST"));
}

#[test]
fn trips_non_idempotent_marked() {
    let hits = assert_fires("non-idempotent-marked", "alpha/src/client.rs");
    assert!(hits[0].2.contains("DELETE_THING"));
}

#[test]
fn trips_raw_action_literal() {
    assert_fires("raw-action-literal", "alpha/src/client.rs");
}

#[test]
fn trips_action_uri_mismatch() {
    let hits = assert_fires("action-uri-mismatch", "alpha/src/client.rs");
    assert!(hits[0].2.contains("GetThingg"));
}

#[test]
fn trips_duplicate_action_uri() {
    let hits = assert_fires("duplicate-action-uri", "alpha/src/messages.rs");
    assert!(hits[0].2.contains("GET_THING_ALIAS"));
}

#[test]
fn trips_inventory_missing() {
    let hits = assert_fires("inventory-missing", "alpha/src/messages.rs");
    assert!(hits[0].2.contains("ORPHAN_OP"));
}

#[test]
fn trips_unknown_fault_name() {
    let hits = assert_fires("unknown-fault-name", "alpha/src/faults.rs");
    assert!(hits[0].2.contains("BogusFault"));
}

#[test]
fn trips_unknown_property_name() {
    let hits = assert_fires("unknown-property-name", "alpha/src/properties.rs");
    assert!(hits[0].2.contains("MadeUpProperty"));
    // The canonical name on the next line stays silent.
    assert_eq!(hits.len(), 1);
}

#[test]
fn trips_unwrap_in_library() {
    assert_fires("unwrap-in-library", "alpha/src/client.rs");
}

#[test]
fn trips_pooled_buffer_bypass() {
    let hits = assert_fires("pooled-buffer-bypass", "soap/src/transport.rs");
    assert!(hits[0].2.contains("to_bytes_into"));
}

#[test]
fn trips_rowset_materialise_bypass() {
    let hits = assert_fires("rowset-materialise-bypass", "dair/src/service.rs");
    assert!(hits[0].2.contains("`.tuples(`"), "{hits:?}");
    assert!(hits[0].2.contains("write_window_into"), "{hits:?}");
    // One violation per file: the `.to_wire_bytes()` on the next line is
    // covered by the same ratchet count.
    assert_eq!(hits.len(), 1, "{hits:?}");
}

#[test]
fn trips_executor_bypass() {
    let hits = assert_fires("executor-bypass", "alpha/src/driver.rs");
    assert!(hits[0].2.contains("Bus::call"));
}

#[test]
fn trips_transport_bypass() {
    let hits = assert_fires("transport-bypass", "alpha/src/socket.rs");
    assert!(hits[0].2.contains("crates/soap/src/tcp.rs"));
    assert!(hits[0].2.contains("Transport"));
    // The fixture's own soap/src/tcp.rs uses sockets too and stays
    // silent: the exemption holds.
    assert_eq!(hits.len(), 1, "{hits:?}");
}

#[test]
fn trips_span_name_literal() {
    let hits = assert_fires("span-name-literal", "alpha/src/tracing.rs");
    assert!(hits[0].2.contains("rogue.span"));
    assert!(hits[0].2.contains("span_names"));
    // The inventory-constant call in the same fixture stays silent.
    assert_eq!(hits.len(), 1);
}

#[test]
fn trips_event_name_literal() {
    let hits = assert_fires("event-name-literal", "alpha/src/journal.rs");
    assert!(hits[0].2.contains("rogue.event"));
    assert!(hits[0].2.contains("event_names"));
    // The inventory-constant calls in the same fixture stay silent.
    assert_eq!(hits.len(), 1);
}

#[test]
fn trips_guard_across_dispatch() {
    let hits = assert_fires("guard-across-dispatch", "alpha/src/guards.rs");
    assert!(hits[0].2.contains("guard `guard`"), "{hits:?}");
    assert!(hits[0].2.contains("`.call(`"), "{hits:?}");
    assert!(hits[0].2.contains("drop the guard first"), "{hits:?}");
    // The scoped-block variant in the same fixture stays silent.
    assert_eq!(hits.len(), 1, "{hits:?}");
}

#[test]
fn trips_guard_across_sleep() {
    let hits = assert_fires("guard-across-sleep", "alpha/src/sleepy.rs");
    assert!(hits[0].2.contains("`sleep(`"), "{hits:?}");
    assert!(hits[0].2.contains("drop the guard before pausing"), "{hits:?}");
    // The sleep-then-lock variant stays silent.
    assert_eq!(hits.len(), 1, "{hits:?}");
}

#[test]
fn trips_raw_sync_primitive() {
    let hits = assert_fires("raw-sync-primitive", "alpha/src/rawsync.rs");
    assert!(hits[0].2.contains("std::sync::Mutex"), "{hits:?}");
    assert!(hits[0].2.contains("dais_util::sync::Mutex"), "{hits:?}");
}

#[test]
fn trips_federation_bypass() {
    let hits = assert_fires("federation-bypass", "alpha/src/bypass.rs");
    assert!(hits[0].2.contains("ShardRouter"), "{hits:?}");
    assert!(hits[0].2.contains("/shard/"), "{hits:?}");
}

#[test]
fn trips_stale_allowlist_both_ways() {
    let report = fixtures_report();
    let hits = find(&report, "stale-allowlist");
    // One undershot entry (store.rs) and one entry naming no file.
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().any(|v| v.message.contains("store.rs")));
    assert!(hits.iter().any(|v| v.message.contains("missing.rs")));
}

#[test]
fn fixture_scan_is_not_clean_and_renders_rustc_style() {
    let report = fixtures_report();
    assert!(!report.is_clean());
    let rendered = report.render();
    assert!(rendered.contains("error[dais-check::unregistered-send]:"));
    assert!(rendered.contains("  --> "));
    assert!(rendered.contains("violation(s)"));
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = check_workspace(&root).expect("workspace scan");
    assert!(report.is_clean(), "\n{}", report.render());
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}
