//! # dais-check
//!
//! Static analysis over this workspace's own source. The DAIS stack is
//! stringly-typed at its edges — SOAP action URIs select dispatch
//! handlers, fault names classify errors, property QNames address
//! document fragments — so the compiler cannot tell when a client sends
//! an action no dispatcher registered, or when a retry layer declares a
//! write idempotent. This crate closes that gap with a self-contained
//! token scanner (no syn, no external deps: the workspace builds
//! offline) and a set of cross-checks; see DESIGN.md §9 for the lint
//! catalogue.
//!
//! Run it with `cargo run -p dais-check`. Exit status is non-zero when
//! any violation is found; `crates/check/dais-check.allow` holds the
//! ratchet allowlist for the `unwrap-in-library` lint.

pub mod lexer;
pub mod lints;
pub mod scan;

pub use lints::{Allowlist, Severity, Violation};

use scan::FileFacts;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The outcome of a workspace scan.
#[derive(Debug)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render all diagnostics rustc-style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}[dais-check::{}]: {}\n  --> {}:{}\n",
                v.severity,
                v.lint,
                v.message,
                v.file.display(),
                v.line
            ));
        }
        if self.is_clean() {
            out.push_str(&format!("dais-check: clean ({} files scanned)\n", self.files_scanned));
        } else {
            out.push_str(&format!(
                "dais-check: {} violation(s) across {} files scanned\n",
                self.violations.len(),
                self.files_scanned
            ));
        }
        out
    }

    /// Render the report as a single JSON object for machine consumers
    /// (CI annotations, dashboards). The schema is stable: a `violations`
    /// array of `{lint, severity, file, line, message}` objects plus
    /// `files_scanned` and `clean`. Written by hand — the workspace
    /// builds offline, so no serde.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"lint\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\"}}",
                esc(v.lint),
                v.severity,
                esc(&v.file.display().to_string()),
                v.line,
                esc(&v.message)
            ));
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.is_clean()
        ));
        out
    }
}

/// Scan the workspace rooted at `root` (the directory containing
/// `crates/`) and run every lint.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let allowlist = load_allowlist(root)?;
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs_files(root, &src, &mut files)?;
        }
    }
    let files_scanned = files.len();
    let violations = lints::run_lints(&files, &allowlist);
    Ok(Report { violations, files_scanned })
}

/// The allowlist lives next to this crate in the real workspace; fixture
/// trees keep one at their own root.
fn load_allowlist(root: &Path) -> io::Result<Allowlist> {
    for candidate in [root.join("crates/check/dais-check.allow"), root.join("dais-check.allow")] {
        if candidate.is_file() {
            let content = fs::read_to_string(&candidate)?;
            return Ok(Allowlist::parse(candidate, &content));
        }
    }
    Ok(Allowlist { path: root.join("dais-check.allow"), ..Allowlist::default() })
}

/// Recursively collect and scan `.rs` files under `dir`, skipping `bin/`
/// directories (binaries are experiment drivers, not library surface).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<FileFacts>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(scan::scan_file(root, &rel, &src));
        }
    }
    Ok(())
}
