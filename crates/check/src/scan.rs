//! Per-file fact extraction.
//!
//! Walks a token stream (with `#[cfg(test)]` items stripped) and pulls
//! out the facts the lints cross-check: SOAP action constants and their
//! use sites, fault-name and property-name literals, and
//! `unwrap()`/`expect()` calls.

use crate::lexer::{tokenize, Token, TokenKind};
use std::path::{Path, PathBuf};

/// Where an action reference appears, which determines what the
/// cross-checks expect of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// A client sends this action (`*client.rs` outside special fns).
    Send,
    /// A dispatcher registers a handler for it (`*service.rs`).
    Register,
    /// Listed in an `idempotent_actions()` declaration.
    IdempotencyDecl,
    /// Anything else (re-exports, docs-adjacent helpers).
    Other,
}

/// A `pub const NAME: &str = "uri"` inside a `pub mod actions` block.
#[derive(Debug, Clone)]
pub struct ActionConst {
    pub name: String,
    pub uri: String,
    pub line: usize,
}

/// A path reference ending in `actions::NAME` outside the defining mod.
#[derive(Debug, Clone)]
pub struct ActionSite {
    /// `dais_<crate>` qualifier if the path named one explicitly.
    pub crate_hint: Option<String>,
    pub const_name: String,
    pub kind: SiteKind,
    pub line: usize,
}

/// A string literal with its line.
#[derive(Debug, Clone)]
pub struct Literal {
    pub value: String,
    pub line: usize,
}

/// A lock guard observed live across a blocking call: the binding, where
/// it was taken, and the first offending call inside its live range.
#[derive(Debug, Clone)]
pub struct GuardCrossing {
    /// The guard binding's name.
    pub guard: String,
    /// Line of the `let guard = ….lock()/read()/write()` binding.
    pub guard_line: usize,
    /// Line of the call the guard is live across.
    pub line: usize,
    /// What the guard crossed, e.g. `.call(` or `thread::sleep(`.
    pub what: String,
}

/// Everything extracted from one source file.
#[derive(Debug, Default)]
pub struct FileFacts {
    /// Path relative to the scan root.
    pub path: PathBuf,
    /// The crate directory name under `crates/`.
    pub crate_name: String,
    pub consts: Vec<ActionConst>,
    /// Const names listed in the mod's `ALL` inventory, if it has one.
    pub all_members: Option<Vec<String>>,
    /// Line of the `ALL` inventory declaration.
    pub all_line: usize,
    pub sites: Vec<ActionSite>,
    /// Literals shaped like DAIS fault names (`UpperCamelFault`).
    pub fault_literals: Vec<Literal>,
    /// Upper-camel literals in `properties.rs` files (property QNames).
    pub property_literals: Vec<Literal>,
    /// String literals outside `mod actions` (checked against action URIs).
    pub string_literals: Vec<Literal>,
    /// Lines of `.unwrap()` / `.expect("...")` calls in library code.
    pub unwrap_sites: Vec<usize>,
    /// Lines of `.to_bytes()` calls (checked on the soap wire path,
    /// where the pooled `to_bytes_into` variant avoids the allocation).
    pub to_bytes_sites: Vec<usize>,
    /// `.span("...")` / `.child_span("...")` calls whose name argument is
    /// a string literal instead of a `span_names::` inventory constant.
    pub span_literal_sites: Vec<Literal>,
    /// `.event("...")` / `.event_ctx("...")` calls whose name argument is
    /// a string literal instead of an `event_names::` inventory constant.
    pub event_literal_sites: Vec<Literal>,
    /// Lines of `.dispatch(` calls (checked outside `crates/soap`, where
    /// every exchange must go through `Bus::call` and the executor path).
    pub dispatch_sites: Vec<usize>,
    /// Lines mentioning `TcpStream`/`TcpListener` (raw sockets are
    /// confined to `crates/soap/src/tcp.rs`, behind the Transport seam).
    pub tcp_stream_sites: Vec<usize>,
    /// Lock guards live across a dispatch/transport call (`.call(`,
    /// `.dispatch(`, socket I/O, …): the deadlock-by-blocking shape the
    /// dynamic lock-order detector cannot see.
    pub guard_dispatch_sites: Vec<GuardCrossing>,
    /// Lock guards live across a sleep (`thread::sleep`, `recv_timeout`,
    /// injected-sleep call sites): every contender stalls for the nap.
    pub guard_sleep_sites: Vec<GuardCrossing>,
    /// `std::sync::Mutex`/`RwLock`/`Condvar` references (imports or
    /// qualified paths); raw primitives bypass the lock-order detector
    /// in `dais_util::sync`. `value` holds the primitive's name.
    pub raw_sync_sites: Vec<Literal>,
    /// Materialising rowset calls (`.tuples(`, `.to_wire_bytes(`,
    /// `.collect_rowset(`) — checked on the dair wire path, where pages
    /// and query results stream straight off the backing rowset/cursor.
    /// `value` holds the method name.
    pub rowset_materialise_sites: Vec<Literal>,
}

/// Tokenise and strip `#[cfg(test)]` items, then extract facts.
pub fn scan_file(root: &Path, rel_path: &Path, src: &str) -> FileFacts {
    let tokens = strip_cfg_test(tokenize(src));
    let crate_name = rel_path
        .components()
        .nth(1)
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .unwrap_or_default();
    let _ = root;
    let file_name = rel_path.file_name().map(|f| f.to_string_lossy().into_owned());
    let file_name = file_name.unwrap_or_default();
    let default_kind = if file_name.ends_with("client.rs") {
        SiteKind::Send
    } else if file_name.ends_with("service.rs") {
        SiteKind::Register
    } else {
        SiteKind::Other
    };

    let mut facts = FileFacts { path: rel_path.to_path_buf(), crate_name, ..FileFacts::default() };

    // Byte-offset-free context tracking: ranges are token indexes.
    let actions_mod = find_block(&tokens, |w| {
        w.len() >= 3 && w[0].is_ident("pub") && w[1].is_ident("mod") && w[2].is_ident("actions")
    });
    let idem_fn = find_block(&tokens, |w| {
        w.len() >= 2 && w[0].is_ident("fn") && w[1].is_ident("idempotent_actions")
    });

    let in_range = |r: &Option<(usize, usize)>, i: usize| r.is_some_and(|(a, b)| i >= a && i < b);

    let is_properties_file = file_name == "properties.rs";

    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i];
        match tok.kind {
            TokenKind::Str => {
                if in_range(&actions_mod, i) {
                    // Const definitions are handled below; skip literals here.
                } else {
                    facts.string_literals.push(Literal { value: tok.text.clone(), line: tok.line });
                    if looks_like_fault_name(&tok.text) {
                        facts
                            .fault_literals
                            .push(Literal { value: tok.text.clone(), line: tok.line });
                    }
                    if is_properties_file && is_upper_camel(&tok.text) {
                        facts
                            .property_literals
                            .push(Literal { value: tok.text.clone(), line: tok.line });
                    }
                }
            }
            TokenKind::Ident => {
                // Raw socket types anywhere in library code: `use`
                // imports, type positions, and `TcpStream::connect`
                // call paths all count — the transport module is the
                // only place sockets belong.
                if tok.text == "TcpStream" || tok.text == "TcpListener" {
                    facts.tcp_stream_sites.push(tok.line);
                }
                // `std::sync::Mutex`/`RwLock`/`Condvar` — either a
                // qualified path or members of a `use std::sync::{...}`
                // tree. Construction sites always follow one of these.
                if tok.text == "std"
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|t| t.is_ident("sync"))
                    && tokens.get(i + 4).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(i + 5).is_some_and(|t| t.is_punct(':'))
                {
                    match tokens.get(i + 6) {
                        Some(t) if is_raw_sync_primitive(&t.text) => {
                            facts
                                .raw_sync_sites
                                .push(Literal { value: t.text.clone(), line: t.line });
                        }
                        Some(t) if t.is_punct('{') => {
                            // Walk the use-tree; nested sub-trees (e.g.
                            // `atomic::{...}`) contain no primitive names.
                            let open_depth = t.depth;
                            let mut j = i + 7;
                            while j < tokens.len() {
                                let m = &tokens[j];
                                if m.is_punct('}') && m.depth == open_depth {
                                    break;
                                }
                                if m.kind == TokenKind::Ident
                                    && is_raw_sync_primitive(&m.text)
                                    && m.depth == open_depth + 1
                                {
                                    facts
                                        .raw_sync_sites
                                        .push(Literal { value: m.text.clone(), line: m.line });
                                }
                                j += 1;
                            }
                        }
                        _ => {}
                    }
                }
                // `pub const NAME: ... = "uri";` inside the actions mod.
                if in_range(&actions_mod, i) && tok.is_ident("const") {
                    if let Some(name_tok) = tokens.get(i + 1) {
                        if name_tok.kind == TokenKind::Ident {
                            if name_tok.text == "ALL" {
                                let (members, end) = scan_all_inventory(&tokens, i + 2);
                                facts.all_members = Some(members);
                                facts.all_line = name_tok.line;
                                i = end;
                                continue;
                            }
                            // Find the value literal before the `;`.
                            let mut j = i + 2;
                            while j < tokens.len() && !tokens[j].is_punct(';') {
                                if tokens[j].kind == TokenKind::Str {
                                    facts.consts.push(ActionConst {
                                        name: name_tok.text.clone(),
                                        uri: tokens[j].text.clone(),
                                        line: name_tok.line,
                                    });
                                    break;
                                }
                                j += 1;
                            }
                        }
                    }
                }
                // `.unwrap()` / `.expect("...")` — only the argument-free
                // Option/Result forms, not `unwrap_or`, not parser methods
                // taking non-string arguments.
                if i > 0 && tokens[i - 1].is_punct('.') {
                    if tok.is_ident("unwrap")
                        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                        && tokens.get(i + 2).is_some_and(|t| t.is_punct(')'))
                    {
                        facts.unwrap_sites.push(tok.line);
                    }
                    if tok.is_ident("expect")
                        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                        && tokens.get(i + 2).is_some_and(|t| t.kind == TokenKind::Str)
                    {
                        facts.unwrap_sites.push(tok.line);
                    }
                    // `.to_bytes()` — the argument-free serialise-to-owned
                    // form with a pooled `to_bytes_into` counterpart.
                    if tok.is_ident("to_bytes")
                        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                        && tokens.get(i + 2).is_some_and(|t| t.is_punct(')'))
                    {
                        facts.to_bytes_sites.push(tok.line);
                    }
                    // `.tuples(` / `.to_wire_bytes(` / `.collect_rowset(`
                    // — APIs that materialise a rowset page or an owned
                    // byte buffer where the streaming writers keep the
                    // wire path copy-free.
                    if (tok.is_ident("tuples")
                        || tok.is_ident("to_wire_bytes")
                        || tok.is_ident("collect_rowset"))
                        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                    {
                        facts
                            .rowset_materialise_sites
                            .push(Literal { value: tok.text.clone(), line: tok.line });
                    }
                    // `.dispatch(...)` — a direct exchange against the
                    // dispatcher, bypassing `Bus::call` (and with it the
                    // executor, interceptors, stats, and tracing).
                    if tok.is_ident("dispatch")
                        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                    {
                        facts.dispatch_sites.push(tok.line);
                    }
                    // `.span("...")` / `.child_span("...")` — a tracing
                    // span named by a literal instead of an inventory
                    // constant from `span_names::`.
                    if (tok.is_ident("span") || tok.is_ident("child_span"))
                        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                        && tokens.get(i + 2).is_some_and(|t| t.kind == TokenKind::Str)
                    {
                        let name_tok = &tokens[i + 2];
                        facts
                            .span_literal_sites
                            .push(Literal { value: name_tok.text.clone(), line: name_tok.line });
                    }
                    // `.event("...")` / `.event_ctx("...")` — a journal
                    // event named by a literal instead of an inventory
                    // constant from `event_names::`.
                    if (tok.is_ident("event") || tok.is_ident("event_ctx"))
                        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                        && tokens.get(i + 2).is_some_and(|t| t.kind == TokenKind::Str)
                    {
                        let name_tok = &tokens[i + 2];
                        facts
                            .event_literal_sites
                            .push(Literal { value: name_tok.text.clone(), line: name_tok.line });
                    }
                }
                // `...actions::NAME` path references outside the mod.
                if !in_range(&actions_mod, i)
                    && (tok.text == "actions" || tok.text.ends_with("_actions"))
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|t| {
                        t.kind == TokenKind::Ident
                            && t.text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                    })
                {
                    let name_tok = &tokens[i + 3];
                    let kind = if in_range(&idem_fn, i) {
                        SiteKind::IdempotencyDecl
                    } else {
                        default_kind
                    };
                    facts.sites.push(ActionSite {
                        crate_hint: crate_hint(&tokens, i),
                        const_name: name_tok.text.clone(),
                        kind,
                        line: name_tok.line,
                    });
                    i += 4;
                    continue;
                }
            }
            TokenKind::Punct => {}
        }
        i += 1;
    }
    scan_guard_bindings(&tokens, &mut facts);
    facts
}

/// Methods whose arg-free trailing call marks a lock-guard binding.
fn is_guard_method(name: &str) -> bool {
    matches!(name, "lock" | "read" | "write")
}

fn is_raw_sync_primitive(name: &str) -> bool {
    matches!(name, "Mutex" | "RwLock" | "Condvar")
}

/// Calls that block on another party while a guard is live: bus/dispatch
/// exchanges and socket I/O. `wait`/`wait_timeout` are deliberately
/// absent — a condvar wait *must* hold its own mutex's guard.
fn dispatch_trigger(name: &str) -> bool {
    matches!(
        name,
        "call" | "call_async" | "dispatch" | "serve_wire" | "write_all" | "read_exact" | "flush"
    )
}

/// Recognise `let [mut] NAME = <expr>.lock()/.read()/.write()[.unwrap()
/// /.expect("…")];` bindings and scan each guard's live range — from the
/// binding to `drop(NAME)` or the end of the enclosing block — for calls
/// it must not cross. Purely lexical: a guard moved into another binding
/// or returned escapes this analysis, which is fine for a lint whose job
/// is the common shapes.
fn scan_guard_bindings(tokens: &[Token], facts: &mut FileFacts) {
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("let") {
            i += 1;
            continue;
        }
        let let_depth = tokens[i].depth;
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = tokens.get(j).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        // `let NAME = …` or `let NAME: Type = …`; pattern bindings
        // (`let Some(g) = …`) never bind a bare guard and are skipped.
        let mut k = j + 1;
        if tokens.get(k).is_some_and(|t| t.is_punct(':')) {
            while k < tokens.len()
                && !(tokens[k].is_punct('=') && tokens[k].depth == let_depth)
                && !(tokens[k].is_punct(';') && tokens[k].depth == let_depth)
            {
                k += 1;
            }
        }
        if !tokens.get(k).is_some_and(|t| t.is_punct('=') && t.depth == let_depth) {
            i += 1;
            continue;
        }
        // The statement's terminating `;` sits back at the let's depth.
        let mut semi = k + 1;
        while semi < tokens.len()
            && !(tokens[semi].is_punct(';') && tokens[semi].depth == let_depth)
        {
            semi += 1;
        }
        if semi >= tokens.len() {
            break;
        }
        // Strip trailing `.unwrap()` / `.expect("…")`, then require the
        // initializer to end in an arg-free `.lock()`/`.read()`/`.write()`
        // (arg-free distinguishes them from `io::Read`/`io::Write`).
        let mut end = semi;
        loop {
            if end >= 4
                && tokens[end - 1].is_punct(')')
                && tokens[end - 2].is_punct('(')
                && tokens[end - 3].is_ident("unwrap")
                && tokens[end - 4].is_punct('.')
            {
                end -= 4;
            } else if end >= 5
                && tokens[end - 1].is_punct(')')
                && tokens[end - 2].kind == TokenKind::Str
                && tokens[end - 3].is_punct('(')
                && tokens[end - 4].is_ident("expect")
                && tokens[end - 5].is_punct('.')
            {
                end -= 5;
            } else {
                break;
            }
        }
        let is_guard = end >= 4
            && tokens[end - 1].is_punct(')')
            && tokens[end - 2].is_punct('(')
            && tokens[end - 3].kind == TokenKind::Ident
            && is_guard_method(&tokens[end - 3].text)
            && tokens[end - 4].is_punct('.');
        if !is_guard {
            i = semi;
            continue;
        }
        let guard = name_tok.text.clone();
        let guard_line = name_tok.line;
        // Live range: to `drop(NAME)` or the `}` closing the let's block.
        let mut scope_end = tokens.len();
        let mut d = semi + 1;
        while d < tokens.len() {
            let t = &tokens[d];
            if t.is_punct('}') && t.depth < let_depth {
                scope_end = d;
                break;
            }
            if t.is_ident("drop")
                && tokens.get(d + 1).is_some_and(|n| n.is_punct('('))
                && tokens.get(d + 2).is_some_and(|n| n.is_ident(&guard))
                && tokens.get(d + 3).is_some_and(|n| n.is_punct(')'))
            {
                scope_end = d;
                break;
            }
            d += 1;
        }
        let mut dispatch_hit = false;
        let mut sleep_hit = false;
        for t in semi + 1..scope_end {
            let tok = &tokens[t];
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let crossing = |what: String| GuardCrossing {
                guard: guard.clone(),
                guard_line,
                line: tok.line,
                what,
            };
            if !dispatch_hit {
                let method_call = t >= 1
                    && tokens[t - 1].is_punct('.')
                    && dispatch_trigger(&tok.text)
                    && tokens.get(t + 1).is_some_and(|n| n.is_punct('('));
                if method_call {
                    facts.guard_dispatch_sites.push(crossing(format!(".{}(", tok.text)));
                    dispatch_hit = true;
                } else if tok.text == "TcpStream" || tok.text == "TcpListener" {
                    facts.guard_dispatch_sites.push(crossing(tok.text.clone()));
                    dispatch_hit = true;
                }
            }
            if !sleep_hit
                && (tok.is_ident("sleep") || tok.is_ident("recv_timeout"))
                && tokens.get(t + 1).is_some_and(|n| n.is_punct('('))
            {
                facts.guard_sleep_sites.push(crossing(format!("{}(", tok.text)));
                sleep_hit = true;
            }
            if dispatch_hit && sleep_hit {
                break;
            }
        }
        i = semi;
    }
}

/// `dais_core::messages::actions::X` → Some("core"); also resolves
/// `wsrf_actions` aliases (`use dais_wsrf::actions as wsrf_actions`).
fn crate_hint(tokens: &[Token], actions_idx: usize) -> Option<String> {
    let seg = &tokens[actions_idx].text;
    if let Some(prefix) = seg.strip_suffix("_actions") {
        if !prefix.is_empty() {
            return Some(prefix.to_string());
        }
    }
    // Walk leading `ident ::` segments backwards looking for `dais_<x>`.
    let mut i = actions_idx;
    while i >= 3
        && tokens[i - 1].is_punct(':')
        && tokens[i - 2].is_punct(':')
        && tokens[i - 3].kind == TokenKind::Ident
    {
        i -= 3;
        if let Some(c) = tokens[i].text.strip_prefix("dais_") {
            return Some(c.to_string());
        }
    }
    None
}

/// `pub const ALL: &[&str] = &[A, B, ...];` — collect the member idents.
fn scan_all_inventory(tokens: &[Token], mut i: usize) -> (Vec<String>, usize) {
    let mut members = Vec::new();
    // Skip to the `=`, then collect idents until the closing `;`.
    while i < tokens.len() && !tokens[i].is_punct('=') {
        i += 1;
    }
    while i < tokens.len() && !tokens[i].is_punct(';') {
        if tokens[i].kind == TokenKind::Ident {
            members.push(tokens[i].text.clone());
        }
        i += 1;
    }
    (members, i)
}

/// Find the token-index range `(start_of_block, past_close)` of the first
/// item whose header matches `pred` (a window starting at each token).
fn find_block(tokens: &[Token], pred: impl Fn(&[Token]) -> bool) -> Option<(usize, usize)> {
    for i in 0..tokens.len() {
        if pred(&tokens[i..]) {
            // Find the opening brace of the item body.
            let mut j = i;
            while j < tokens.len() && !tokens[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0usize;
            let start = j;
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some((start, j + 1));
                    }
                }
                j += 1;
            }
            return Some((start, tokens.len()));
        }
    }
    None
}

/// Remove every item annotated `#[cfg(test)]` (or any `cfg(...)` whose
/// predicate mentions `test` without a `not`). Items end at a matching
/// closing brace or, for brace-less items like `use`, at a `;`.
pub fn strip_cfg_test(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            // Collect the cfg predicate idents up to the matching `)`.
            let mut j = i + 4;
            let mut depth = 1usize;
            let mut has_test = false;
            let mut has_not = false;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('(') {
                    depth += 1;
                } else if tokens[j].is_punct(')') {
                    depth -= 1;
                } else if tokens[j].is_ident("test") {
                    has_test = true;
                } else if tokens[j].is_ident("not") {
                    has_not = true;
                }
                j += 1;
            }
            // Step past the closing `]`.
            while j < tokens.len() && !tokens[j].is_punct(']') {
                j += 1;
            }
            j += 1;
            if has_test && !has_not {
                // Skip the annotated item: through further attributes and
                // the header to `{ ... }` (matched) or a bare `;`.
                let mut depth = 0usize;
                while j < tokens.len() {
                    if tokens[j].is_punct('{') {
                        depth += 1;
                    } else if tokens[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    } else if tokens[j].is_punct(';') && depth == 0 {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
            // Not test-gated: keep the attribute tokens verbatim.
            out.extend_from_slice(&tokens[i..j.min(tokens.len())]);
            i = j;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Does a literal look like a SOAP action URI (namespace plus an
/// operation segment), as opposed to a bare namespace? Namespace
/// constants (`BASE`, `ns::WSDAIR`) share the prefix but stop at the
/// spec segment.
pub fn looks_like_action_uri(s: &str) -> bool {
    if let Some(rest) = s.strip_prefix("http://www.ggf.org/namespaces/") {
        // `<date>/WS-DAIx` is a namespace; an action has a further segment.
        if let Some(pos) = rest.find("/WS-DAI") {
            let after = &rest[pos + 1..];
            return after.contains('/') && !after.ends_with('/');
        }
        return false;
    }
    if let Some(rest) = s.strip_prefix("http://docs.oasis-open.org/wsrf/") {
        // `rpw-2` alone is a namespace; `rpw-2/GetResourceProperty` acts.
        return rest.contains('/') && !rest.ends_with('/');
    }
    false
}

/// `InvalidResourceNameFault` — upper-camel, alphanumeric, `Fault` suffix.
pub fn looks_like_fault_name(s: &str) -> bool {
    s.len() > "Fault".len()
        && s.ends_with("Fault")
        && s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && s.chars().all(|c| c.is_ascii_alphanumeric())
}

/// `DataResourceAbstractName` — an upper-camel alphanumeric word.
pub fn is_upper_camel(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && s.len() > 1
        && s.chars().all(|c| c.is_ascii_alphanumeric())
        && s.chars().any(|c| c.is_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(name: &str, src: &str) -> FileFacts {
        scan_file(Path::new("."), Path::new(name), src)
    }

    #[test]
    fn extracts_consts_and_inventory() {
        let src = r#"
            pub mod actions {
                pub const GET_X: &str = "http://example.org/ns/GetX";
                pub const PUT_X: &str = "http://example.org/ns/PutX";
                pub const ALL: &[&str] = &[GET_X, PUT_X];
            }
        "#;
        let f = scan("crates/alpha/src/messages.rs", src);
        assert_eq!(f.consts.len(), 2);
        assert_eq!(f.consts[0].name, "GET_X");
        assert_eq!(f.consts[0].uri, "http://example.org/ns/GetX");
        assert_eq!(f.all_members.as_deref(), Some(&["GET_X".to_string(), "PUT_X".to_string()][..]));
        assert!(f.sites.is_empty(), "ALL members are not use sites");
    }

    #[test]
    fn classifies_sites_by_context() {
        let src = r#"
            pub fn idempotent_actions() -> IdempotencySet {
                IdempotencySet::new([actions::GET_X, dais_core::messages::actions::RESOLVE])
            }
            pub fn send(c: &Client) {
                c.request(actions::GET_X, body);
            }
        "#;
        let f = scan("crates/alpha/src/client.rs", src);
        assert_eq!(f.sites.len(), 3);
        assert_eq!(f.sites[0].kind, SiteKind::IdempotencyDecl);
        assert_eq!(f.sites[1].kind, SiteKind::IdempotencyDecl);
        assert_eq!(f.sites[1].crate_hint.as_deref(), Some("core"));
        assert_eq!(f.sites[2].kind, SiteKind::Send);
    }

    #[test]
    fn service_files_register_and_aliases_resolve() {
        let src = "fn reg(d: &mut D) { d.register(wsrf_actions::DESTROY, h); }";
        let f = scan("crates/alpha/src/service.rs", src);
        assert_eq!(f.sites.len(), 1);
        assert_eq!(f.sites[0].kind, SiteKind::Register);
        assert_eq!(f.sites[0].crate_hint.as_deref(), Some("wsrf"));
    }

    #[test]
    fn cfg_test_items_are_stripped() {
        let src = r#"
            fn lib() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); y.expect("boom"); }
            }
            #[cfg(not(test))]
            fn kept() { z.unwrap(); }
        "#;
        let f = scan("crates/alpha/src/lib.rs", src);
        assert_eq!(f.unwrap_sites.len(), 2);
    }

    #[test]
    fn unwrap_forms_are_distinguished() {
        let src = r#"
            fn f() {
                a.unwrap();
                b.unwrap_or(0);
                c.unwrap_or_else(|| 0);
                d.expect("msg");
                self.expect(&Token::Comma);
                e.expected("not it");
            }
        "#;
        let f = scan("crates/alpha/src/x.rs", src);
        assert_eq!(f.unwrap_sites.len(), 2);
    }

    #[test]
    fn to_bytes_calls_are_recorded_but_definitions_are_not() {
        let src = r#"
            pub fn to_bytes(&self) -> Vec<u8> { self.to_bytes_into(&mut v) }
            fn hot(env: &Envelope) { let b = env.to_bytes(); send(b); }
            #[cfg(test)]
            mod tests { fn t(e: &Envelope) { e.to_bytes(); } }
        "#;
        let f = scan("crates/soap/src/x.rs", src);
        assert_eq!(f.to_bytes_sites.len(), 1);
    }

    #[test]
    fn rowset_materialise_calls_are_recorded_but_definitions_are_not() {
        let src = r#"
            pub fn tuples(&self, start: usize, count: usize) -> Rowset { self.rowset.slice(start, count) }
            fn page(r: &RowsetResource) { let p = r.tuples(0, 10); let _ = p.to_wire_bytes(); }
            #[cfg(test)]
            mod tests { fn t(r: &RowsetResource) { r.tuples(0, 1); } }
        "#;
        let f = scan("crates/dair/src/x.rs", src);
        let names: Vec<&str> =
            f.rowset_materialise_sites.iter().map(|l| l.value.as_str()).collect();
        assert_eq!(names, ["tuples", "to_wire_bytes"]);
    }

    #[test]
    fn dispatch_calls_are_recorded_but_definitions_and_tests_are_not() {
        let src = r#"
            pub fn dispatch(&self, env: &Envelope) -> Result<Envelope, Fault> { todo!() }
            fn shortcut(d: &SoapDispatcher, env: &Envelope) { let _ = d.dispatch(env); }
            fn named(r: &Registry) { r.dispatch_table(); }
            #[cfg(test)]
            mod tests { fn t(d: &D, e: &E) { d.dispatch(e); } }
        "#;
        let f = scan("crates/alpha/src/driver.rs", src);
        assert_eq!(f.dispatch_sites.len(), 1);
    }

    #[test]
    fn span_literals_are_recorded_but_inventory_constants_are_not() {
        let src = r#"
            fn traced(t: &Tracer, parent: Option<TraceContext>) {
                let a = t.span("rogue.span", None);
                let b = t.child_span("rogue.child", parent);
                let c = t.span(span_names::CLIENT_CALL, None);
                let d = t.child_span(span_names::BUS_DISPATCH, parent);
            }
            #[cfg(test)]
            mod tests { fn t(tr: &Tracer) { tr.span("test.only", None); } }
        "#;
        let f = scan("crates/alpha/src/tracing.rs", src);
        let names: Vec<&str> = f.span_literal_sites.iter().map(|l| l.value.as_str()).collect();
        assert_eq!(names, ["rogue.span", "rogue.child"]);
    }

    #[test]
    fn event_literals_are_recorded_but_inventory_constants_are_not() {
        let src = r#"
            fn journaled(j: &Journal, ctx: Option<TraceContext>) {
                j.event("rogue.event", 1, 2, 0);
                j.event_ctx("rogue.ctx", ctx, 0);
                j.event(event_names::REQ_ADMIT, 1, 2, 0);
                j.event_ctx(event_names::REQ_DISPATCH, ctx, 0);
            }
            #[cfg(test)]
            mod tests { fn t(j: &Journal) { j.event("test.only", 0, 0, 0); } }
        "#;
        let f = scan("crates/alpha/src/journal.rs", src);
        let names: Vec<&str> = f.event_literal_sites.iter().map(|l| l.value.as_str()).collect();
        assert_eq!(names, ["rogue.event", "rogue.ctx"]);
    }

    #[test]
    fn raw_socket_idents_are_recorded_outside_tests() {
        let src = r#"
            use std::net::{TcpListener, TcpStream};
            fn open(addr: &str) -> std::io::Result<TcpStream> {
                TcpStream::connect(addr)
            }
            fn named() { let _ = tcp_stream_count(); }
            #[cfg(test)]
            mod tests { use std::net::TcpStream; fn t() { TcpStream::connect("x"); } }
        "#;
        let f = scan("crates/alpha/src/socket.rs", src);
        // Import (both idents), return type, and call path — tests and
        // lookalike identifiers stay silent.
        assert_eq!(f.tcp_stream_sites.len(), 4);
    }

    #[test]
    fn fault_and_property_literal_shapes() {
        assert!(looks_like_fault_name("ServiceBusyFault"));
        assert!(!looks_like_fault_name("Fault"));
        assert!(!looks_like_fault_name("fault"));
        assert!(!looks_like_fault_name("Not A Fault"));
        assert!(is_upper_camel("DataResourceAbstractName"));
        assert!(!is_upper_camel("SCREAMING"));
        assert!(!is_upper_camel("lower"));
        assert!(!is_upper_camel("Has Space"));
    }

    #[test]
    fn guard_across_dispatch_is_recorded() {
        let src = r#"
            fn bad(&self, bus: &Bus) {
                let state = self.state.lock();
                bus.call(to, action, req);
            }
            fn also_bad(&self) {
                let mut table = self.routes.write().unwrap();
                let stream = TcpStream::connect(addr);
            }
            fn fine(&self, bus: &Bus) {
                let state = self.state.lock();
                drop(state);
                bus.call(to, action, req);
            }
            fn scoped_fine(&self, bus: &Bus) {
                {
                    let state = self.state.lock();
                    state.touch();
                }
                bus.call(to, action, req);
            }
        "#;
        let f = scan("crates/alpha/src/driver.rs", src);
        assert_eq!(f.guard_dispatch_sites.len(), 2);
        assert_eq!(f.guard_dispatch_sites[0].guard, "state");
        assert_eq!(f.guard_dispatch_sites[0].what, ".call(");
        assert_eq!(f.guard_dispatch_sites[1].guard, "table");
        assert_eq!(f.guard_dispatch_sites[1].what, "TcpStream");
    }

    #[test]
    fn guard_across_sleep_is_recorded_but_condvar_waits_are_not() {
        let src = r#"
            fn bad(&self) {
                let g = self.inner.lock();
                std::thread::sleep(Duration::from_millis(5));
            }
            fn injected(&self, config: &RetryConfig) {
                let g = self.inner.read();
                config.sleep(pause);
            }
            fn polling(&self, rx: &Receiver<u8>) {
                let g = self.inner.lock();
                let _ = rx.recv_timeout(Duration::from_millis(5));
            }
            fn condvar_ok(&self) {
                let mut g = self.inner.lock();
                while !*g {
                    g = self.cv.wait(g);
                }
                let (h, timed_out) = self.cv.wait_timeout(self.inner.lock(), d);
            }
        "#;
        let f = scan("crates/alpha/src/driver.rs", src);
        let whats: Vec<&str> = f.guard_sleep_sites.iter().map(|c| c.what.as_str()).collect();
        assert_eq!(whats, ["sleep(", "sleep(", "recv_timeout("]);
        assert!(f.guard_dispatch_sites.is_empty());
    }

    #[test]
    fn guard_recognition_handles_ascription_expect_and_non_guards() {
        let src = r#"
            fn f(&self) {
                let g: MutexGuard<'_, u8> = self.a.lock().expect("poisoned");
                std::thread::sleep(d);
            }
            fn not_guards(&self, file: &mut File, buf: &mut [u8]) {
                let n = file.read(buf);
                let bytes = self.encode().write_all(out);
                let x = compute();
                std::thread::sleep(d);
            }
        "#;
        let f = scan("crates/alpha/src/driver.rs", src);
        assert_eq!(f.guard_sleep_sites.len(), 1);
        assert_eq!(f.guard_sleep_sites[0].guard, "g");
    }

    #[test]
    fn raw_sync_paths_and_use_trees_are_recorded() {
        let src = r#"
            use std::sync::{Arc, Condvar, Mutex, Weak};
            use std::sync::RwLock;
            use std::sync::atomic::{AtomicBool, Ordering};
            fn f() -> std::sync::Mutex<u8> { std::sync::Mutex::new(0) }
            #[cfg(test)]
            mod tests { use std::sync::Mutex; }
        "#;
        let f = scan("crates/alpha/src/driver.rs", src);
        let names: Vec<&str> = f.raw_sync_sites.iter().map(|l| l.value.as_str()).collect();
        assert_eq!(names, ["Condvar", "Mutex", "RwLock", "Mutex", "Mutex"]);
    }

    #[test]
    fn property_literals_only_in_properties_files() {
        let src = r#"fn f() { doc.child(ns::WSDAI, "Readable"); }"#;
        let f = scan("crates/alpha/src/properties.rs", src);
        assert_eq!(f.property_literals.len(), 1);
        let f = scan("crates/alpha/src/resource.rs", src);
        assert!(f.property_literals.is_empty());
    }
}
