//! A minimal Rust token scanner.
//!
//! The checks in this crate only need four token classes — identifiers,
//! string literals, punctuation and everything-else — but they need them
//! *correctly*: a SOAP action URI inside a doc comment must not count as
//! a use site, a brace inside a string must not unbalance `#[cfg(test)]`
//! stripping, and `'a'` (a char) must not be confused with `'a` (a
//! lifetime). This scanner handles exactly those cases and nothing more;
//! it is not a general Rust lexer.

/// Token classes the checks care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw `r#ident` forms).
    Ident,
    /// A string literal; `text` holds the (lightly unescaped) content.
    Str,
    /// A single punctuation byte; `text` holds it verbatim.
    Punct,
}

/// One token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
}

impl Token {
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }

    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }
}

/// Tokenise `src`, dropping comments and whitespace.
pub fn tokenize(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if b.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                let (text, next, lines) = scan_string(bytes, i + 1);
                tokens.push(Token { kind: TokenKind::Str, text, line: start_line });
                line += lines;
                i = next;
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let start_line = line;
                let hash_start = if b == b'b' { i + 2 } else { i + 1 };
                let hashes = count_hashes(bytes, hash_start);
                let (text, next, lines) = scan_raw_string(bytes, hash_start + hashes + 1, hashes);
                tokens.push(Token { kind: TokenKind::Str, text, line: start_line });
                line += lines;
                i = next;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let start_line = line;
                let (text, next, lines) = scan_string(bytes, i + 2);
                tokens.push(Token { kind: TokenKind::Str, text, line: start_line });
                line += lines;
                i = next;
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                i = skip_char_literal(bytes, i + 2);
            }
            b'\'' => {
                if char_literal_follows(bytes, i + 1) {
                    i = skip_char_literal(bytes, i + 1);
                } else {
                    // A lifetime: consume the identifier after the quote.
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                }
            }
            _ if b == b'_' || b.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                // `r#ident` raw identifiers: the `r#` was not a raw string
                // (checked above), so a lone `#` between `r` and an ident
                // only occurs in that form and is skipped here.
                let mut text = &src[start..i];
                if text == "r" && bytes.get(i) == Some(&b'#') && char_starts_ident(bytes, i + 1) {
                    let word_start = i + 1;
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    text = &src[word_start..i];
                }
                tokens.push(Token { kind: TokenKind::Ident, text: text.to_string(), line });
            }
            _ if b.is_ascii_digit() => {
                // Numbers are irrelevant to every check; consume greedily.
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
            }
            _ => {
                tokens.push(Token { kind: TokenKind::Punct, text: (b as char).to_string(), line });
                i += 1;
            }
        }
    }
    tokens
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

fn char_starts_ident(bytes: &[u8], i: usize) -> bool {
    bytes.get(i).is_some_and(|&b| b == b'_' || b.is_ascii_alphabetic())
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let j = if bytes[i] == b'b' {
        if bytes.get(i + 1) != Some(&b'r') {
            return false;
        }
        i + 2
    } else {
        i + 1
    };
    let hashes = count_hashes(bytes, j);
    bytes.get(j + hashes) == Some(&b'"')
}

fn count_hashes(bytes: &[u8], mut i: usize) -> usize {
    let start = i;
    while bytes.get(i) == Some(&b'#') {
        i += 1;
    }
    i - start
}

/// Scan a non-raw string body starting just after the opening quote.
/// Returns (content, index past closing quote, newlines crossed).
fn scan_string(bytes: &[u8], mut i: usize) -> (String, usize, usize) {
    let mut out = String::new();
    let mut lines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return (out, i + 1, lines),
            b'\\' => {
                match bytes.get(i + 1) {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    // Other escapes (\u{..}, \0, line continuations) never
                    // occur in the vocabularies being checked; keep the
                    // raw bytes so the literal simply fails any lookup.
                    Some(&c) => {
                        out.push('\\');
                        out.push(c as char);
                    }
                    None => {}
                }
                i += 2;
            }
            b'\n' => {
                lines += 1;
                out.push('\n');
                i += 1;
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    (out, i, lines)
}

/// Scan a raw string body; the closing delimiter is `"` plus `hashes` `#`s.
fn scan_raw_string(bytes: &[u8], mut i: usize, hashes: usize) -> (String, usize, usize) {
    let mut out = String::new();
    let mut lines = 0;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes
        {
            return (out, i + 1 + hashes, lines);
        }
        if bytes[i] == b'\n' {
            lines += 1;
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    (out, i, lines)
}

fn skip_char_literal(bytes: &[u8], mut i: usize) -> usize {
    if bytes.get(i) == Some(&b'\\') {
        i += 2; // escape plus escaped byte; covers \' \\ \n \u's opening
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1; // tail of \u{...} forms
        }
        return i + 1;
    }
    // A plain char, possibly multi-byte UTF-8: scan to the closing quote.
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1;
    }
    i + 1
}

/// Does a char literal (as opposed to a lifetime) start at `i`, just
/// after an opening `'`? `'a'` is a char; `'a` in `&'a str` is not.
fn char_literal_follows(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i) {
        Some(b'\\') => true,
        Some(&b) if b != b'\'' => {
            // Find the end of what would be the char's content.
            let mut j = i + 1;
            if !b.is_ascii() {
                while j < bytes.len() && bytes[j] & 0xC0 == 0x80 {
                    j += 1;
                }
            }
            bytes.get(j) == Some(&b'\'')
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_strings_punct() {
        let toks = kinds(r#"let x = "hi"; "#);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Str, "hi".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn comments_are_dropped() {
        let toks = kinds("a // \"not a string\"\n/* b /* nested */ */ c");
        assert_eq!(toks, vec![(TokenKind::Ident, "a".into()), (TokenKind::Ident, "c".into())]);
    }

    #[test]
    fn raw_strings_and_escapes() {
        let toks = kinds(r##"r#"a "quoted" b"# "esc\"aped" "##);
        assert_eq!(
            toks,
            vec![(TokenKind::Str, "a \"quoted\" b".into()), (TokenKind::Str, "esc\"aped".into()),]
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("&'a str 'x' '\\n' b'z'");
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert!(strs.is_empty());
        let idents: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, vec!["str"]);
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let toks = tokenize("a\n\"x\ny\"\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // the string starts on line 2
        assert_eq!(toks[2].line, 4); // b lands after the embedded newline
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("r#type x");
        assert_eq!(toks, vec![(TokenKind::Ident, "type".into()), (TokenKind::Ident, "x".into())]);
    }
}
