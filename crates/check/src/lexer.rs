//! A minimal Rust token scanner.
//!
//! The checks in this crate only need four token classes — identifiers,
//! string literals, punctuation and everything-else — but they need them
//! *correctly*: a SOAP action URI inside a doc comment must not count as
//! a use site, a brace inside a string must not unbalance `#[cfg(test)]`
//! stripping, and `'a'` (a char) must not be confused with `'a` (a
//! lifetime). This scanner handles exactly those cases and nothing more;
//! it is not a general Rust lexer.

/// Token classes the checks care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw `r#ident` forms).
    Ident,
    /// A string literal; `text` holds the (lightly unescaped) content.
    Str,
    /// A single punctuation byte; `text` holds it verbatim.
    Punct,
}

/// One token plus the 1-based line it starts on and the brace depth it
/// sits at (0 = module level). A `{` carries the depth *outside* it and
/// a `}` the depth outside the block it closes, so the body of a block
/// is exactly the tokens with depth greater than its delimiters'.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
    pub depth: usize,
}

impl Token {
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }

    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }
}

/// Tokenise `src`, dropping comments and whitespace.
pub fn tokenize(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let mut depth = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if b.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                let (text, next, lines) = scan_string(bytes, i + 1);
                tokens.push(Token { kind: TokenKind::Str, text, line: start_line, depth });
                line += lines;
                i = next;
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let start_line = line;
                let hash_start = if b == b'b' { i + 2 } else { i + 1 };
                let hashes = count_hashes(bytes, hash_start);
                let (text, next, lines) = scan_raw_string(bytes, hash_start + hashes + 1, hashes);
                tokens.push(Token { kind: TokenKind::Str, text, line: start_line, depth });
                line += lines;
                i = next;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let start_line = line;
                let (text, next, lines) = scan_string(bytes, i + 2);
                tokens.push(Token { kind: TokenKind::Str, text, line: start_line, depth });
                line += lines;
                i = next;
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                i = skip_char_literal(bytes, i + 2);
            }
            b'\'' => {
                if char_literal_follows(bytes, i + 1) {
                    i = skip_char_literal(bytes, i + 1);
                } else {
                    // A lifetime: consume the identifier after the quote.
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                }
            }
            _ if b == b'_' || b.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                // `r#ident` raw identifiers: the `r#` was not a raw string
                // (checked above), so a lone `#` between `r` and an ident
                // only occurs in that form and is skipped here.
                let mut text = &src[start..i];
                if text == "r" && bytes.get(i) == Some(&b'#') && char_starts_ident(bytes, i + 1) {
                    let word_start = i + 1;
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    text = &src[word_start..i];
                }
                tokens.push(Token { kind: TokenKind::Ident, text: text.to_string(), line, depth });
            }
            _ if b.is_ascii_digit() => {
                // Numbers are irrelevant to every check; consume greedily.
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
            }
            _ => {
                let at = match b {
                    b'{' => {
                        depth += 1;
                        depth - 1
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        depth
                    }
                    _ => depth,
                };
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    depth: at,
                });
                i += 1;
            }
        }
    }
    tokens
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

fn char_starts_ident(bytes: &[u8], i: usize) -> bool {
    bytes.get(i).is_some_and(|&b| b == b'_' || b.is_ascii_alphabetic())
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let j = if bytes[i] == b'b' {
        if bytes.get(i + 1) != Some(&b'r') {
            return false;
        }
        i + 2
    } else {
        i + 1
    };
    let hashes = count_hashes(bytes, j);
    bytes.get(j + hashes) == Some(&b'"')
}

fn count_hashes(bytes: &[u8], mut i: usize) -> usize {
    let start = i;
    while bytes.get(i) == Some(&b'#') {
        i += 1;
    }
    i - start
}

/// Scan a non-raw string body starting just after the opening quote.
/// Returns (content, index past closing quote, newlines crossed).
fn scan_string(bytes: &[u8], mut i: usize) -> (String, usize, usize) {
    let mut out = String::new();
    let mut lines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return (out, i + 1, lines),
            b'\\' => {
                match bytes.get(i + 1) {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    // Other escapes (\u{..}, \0, line continuations) never
                    // occur in the vocabularies being checked; keep the
                    // raw bytes so the literal simply fails any lookup.
                    Some(&c) => {
                        out.push('\\');
                        out.push(c as char);
                    }
                    None => {}
                }
                i += 2;
            }
            b'\n' => {
                lines += 1;
                out.push('\n');
                i += 1;
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    (out, i, lines)
}

/// Scan a raw string body; the closing delimiter is `"` plus `hashes` `#`s.
fn scan_raw_string(bytes: &[u8], mut i: usize, hashes: usize) -> (String, usize, usize) {
    let mut out = String::new();
    let mut lines = 0;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes
        {
            return (out, i + 1 + hashes, lines);
        }
        if bytes[i] == b'\n' {
            lines += 1;
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    (out, i, lines)
}

fn skip_char_literal(bytes: &[u8], mut i: usize) -> usize {
    if bytes.get(i) == Some(&b'\\') {
        i += 2; // escape plus escaped byte; covers \' \\ \n \u's opening
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1; // tail of \u{...} forms
        }
        return i + 1;
    }
    // A plain char, possibly multi-byte UTF-8: scan to the closing quote.
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1;
    }
    i + 1
}

/// Does a char literal (as opposed to a lifetime) start at `i`, just
/// after an opening `'`? `'a'` is a char; `'a` in `&'a str` is not.
fn char_literal_follows(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i) {
        Some(b'\\') => true,
        Some(&b) if b != b'\'' => {
            // Find the end of what would be the char's content.
            let mut j = i + 1;
            if !b.is_ascii() {
                while j < bytes.len() && bytes[j] & 0xC0 == 0x80 {
                    j += 1;
                }
            }
            bytes.get(j) == Some(&b'\'')
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_strings_punct() {
        let toks = kinds(r#"let x = "hi"; "#);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Str, "hi".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn comments_are_dropped() {
        let toks = kinds("a // \"not a string\"\n/* b /* nested */ */ c");
        assert_eq!(toks, vec![(TokenKind::Ident, "a".into()), (TokenKind::Ident, "c".into())]);
    }

    #[test]
    fn raw_strings_and_escapes() {
        let toks = kinds(r##"r#"a "quoted" b"# "esc\"aped" "##);
        assert_eq!(
            toks,
            vec![(TokenKind::Str, "a \"quoted\" b".into()), (TokenKind::Str, "esc\"aped".into()),]
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("&'a str 'x' '\\n' b'z'");
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert!(strs.is_empty());
        let idents: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, vec!["str"]);
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let toks = tokenize("a\n\"x\ny\"\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // the string starts on line 2
        assert_eq!(toks[2].line, 4); // b lands after the embedded newline
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("r#type x");
        assert_eq!(toks, vec![(TokenKind::Ident, "type".into()), (TokenKind::Ident, "x".into())]);
    }

    #[test]
    fn raw_strings_with_more_hashes_and_byte_raw_strings() {
        // A `"#` inside the body must not close an `r##"…"##` string,
        // and `br#"…"#` is a (byte) string, not idents.
        let toks = kinds(r###"r##"has "# inside"## br#"bytes"# x"###);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Str, "has \"# inside".into()),
                (TokenKind::Str, "bytes".into()),
                (TokenKind::Ident, "x".into()),
            ]
        );
    }

    #[test]
    fn raw_string_hides_comment_openers_and_quotes() {
        // Without raw-string handling, the `//` and `/*` in the body
        // would swallow the rest of the file and hide `after`.
        let toks = kinds("r#\"// not a comment /* still not\"# after");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Str, "// not a comment /* still not".into()),
                (TokenKind::Ident, "after".into()),
            ]
        );
    }

    #[test]
    fn nested_block_comments_hide_their_contents_entirely() {
        // The literal inside the nested comment must not surface: the
        // inner `/*` has to nest, not terminate at the first `*/`.
        let toks = kinds("before /* outer \"lit1\" /* inner \"lit2\" */ \"lit3\" */ after");
        assert_eq!(
            toks,
            vec![(TokenKind::Ident, "before".into()), (TokenKind::Ident, "after".into())]
        );
    }

    #[test]
    fn block_comment_line_counting_spans_nesting() {
        let toks = tokenize("/* line1\n/* line2\n*/ line3\n*/ x");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].line, 4);
    }

    #[test]
    fn lifetime_ticks_do_not_eat_following_tokens() {
        // `'a` in a generic position must leave `, 'b>` intact, and a
        // lifetime before a string must not turn the string into a char.
        let toks = kinds("fn f<'a, 'b>(x: &'a str) -> &'b str { \"lit\" }");
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Str).map(|(_, t)| t.as_str()).collect();
        assert_eq!(strs, vec!["lit"]);
        let idents: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, vec!["fn", "f", "x", "str", "str"]);
    }

    #[test]
    fn labelled_loops_and_static_lifetimes_stay_punct_free() {
        let toks = kinds("'outer: loop { break 'outer; } &'static str");
        let idents: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).map(|(_, t)| t.as_str()).collect();
        // The labels are consumed with their ticks; only real idents stay.
        assert_eq!(idents, vec!["loop", "break", "str"]);
    }

    #[test]
    fn depth_tracks_braces() {
        let toks = tokenize("a { b { c } d } e");
        let depths: Vec<(String, usize)> = toks.iter().map(|t| (t.text.clone(), t.depth)).collect();
        assert_eq!(
            depths,
            vec![
                ("a".to_string(), 0),
                ("{".to_string(), 0),
                ("b".to_string(), 1),
                ("{".to_string(), 1),
                ("c".to_string(), 2),
                ("}".to_string(), 1),
                ("d".to_string(), 1),
                ("}".to_string(), 0),
                ("e".to_string(), 0),
            ]
        );
    }

    #[test]
    fn depth_ignores_braces_inside_strings_comments_and_chars() {
        let toks = tokenize("{ \"}\" /* } */ '{' r#\"}\"# x }");
        let x = toks.iter().find(|t| t.text == "x").unwrap();
        assert_eq!(x.depth, 1, "string/comment/char braces must not change depth");
        assert_eq!(toks.last().unwrap().depth, 0, "the real closer returns to 0");
    }

    #[test]
    fn unbalanced_closers_saturate_at_zero() {
        let toks = tokenize("} } a");
        assert_eq!(toks.last().unwrap().depth, 0);
    }
}
