//! Command-line front end for the workspace static checks.
//!
//! Usage: `cargo run -p dais-check [-- --root <workspace-dir>] [--format text|json]`
//!
//! Exits 0 when the scan is clean, 1 when violations are found, and 2
//! on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("dais-check: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "dais-check: --format requires `text` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: dais-check [--root <workspace-dir>] [--format text|json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dais-check: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace this binary was built from.
    let root = root.unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));

    match dais_check::check_workspace(&root) {
        Ok(report) => {
            print!("{}", if json { report.render_json() } else { report.render() });
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("dais-check: scan failed under {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
