//! The cross-checks ("lints") run over the extracted facts.
//!
//! Each lint has a stable kebab-case name used in diagnostics and in the
//! self-test fixtures. See DESIGN.md §9 for the catalogue.

use crate::scan::{
    is_upper_camel, looks_like_action_uri, looks_like_fault_name, ActionConst, FileFacts, SiteKind,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::PathBuf;

/// Diagnostic severity. Everything reported is a violation (non-zero
/// exit); severity only affects presentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub lint: &'static str,
    pub severity: Severity,
    pub file: PathBuf,
    pub line: usize,
    pub message: String,
}

/// How an operation treats resource state, inferred from its const name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteClass {
    Read,
    Write,
    /// `SQLExecute` — depends on the statement carried in the payload;
    /// retry safety is decided at runtime, not declared statically.
    PayloadDependent,
}

/// Classify a SCREAMING_SNAKE action const name.
pub fn classify_action(name: &str) -> WriteClass {
    if name == "SQL_EXECUTE" {
        return WriteClass::PayloadDependent;
    }
    if name == "DESTROY" || name.ends_with("_FACTORY") {
        return WriteClass::Write;
    }
    const WRITE_PREFIXES: &[&str] =
        &["ADD_", "REMOVE_", "DELETE_", "DESTROY_", "WRITE_", "CREATE_", "SET_", "XUPDATE_"];
    if WRITE_PREFIXES.iter().any(|p| name.starts_with(p)) {
        return WriteClass::Write;
    }
    WriteClass::Read
}

/// The property vocabulary from the paper's WS-DAI property tables
/// (Figure 4) plus the WS-DAIR extension groupings, enum value spaces,
/// and the structural element names the documents are built from.
pub const CANONICAL_PROPERTY_NAMES: &[&str] = &[
    // WS-DAI core properties.
    "DataResourceAbstractName",
    "ParentDataResource",
    "DataResourceManagement",
    "ConcurrentAccess",
    "DatasetMap",
    "ConfigurationMap",
    "GenericQueryLanguage",
    "DataResourceDescription",
    "Readable",
    "Writeable",
    "TransactionInitiation",
    "TransactionIsolation",
    "Sensitivity",
    // Structural elements of property/configuration documents.
    "PropertyDocument",
    "ConfigurationDocument",
    "MessageName",
    "DatasetFormatURI",
    "PortTypeQName",
    // Enum value spaces.
    "ExternallyManaged",
    "ServiceManaged",
    "NotSupported",
    "TransactionalPerMessage",
    "TransactionalFromContext",
    "ReadUncommitted",
    "ReadCommitted",
    "RepeatableRead",
    "Serializable",
    "Insensitive",
    "Sensitive",
    // WS-DAIR extension groupings.
    "CIMDescription",
    "NumberOfTables",
    "NumberOfSQLRowsets",
    "NumberOfSQLUpdateCounts",
    "NumberOfSQLReturnValues",
    "NumberOfSQLOutputParameters",
    "NumberOfRows",
    "RowSchema",
];

/// The parsed `dais-check.allow` ratchet file.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub path: PathBuf,
    /// file path (relative, `/`-separated) → (allowed count, entry line).
    /// Bare entries belong to the `unwrap-in-library` ratchet.
    pub entries: BTreeMap<String, (usize, usize)>,
    /// `<lint>:<file>`-prefixed entries for other ratcheting lints:
    /// (lint name, file path) → (allowed count, entry line).
    pub lint_entries: BTreeMap<(String, String), (usize, usize)>,
}

impl Allowlist {
    pub fn parse(path: PathBuf, content: &str) -> Allowlist {
        let mut entries = BTreeMap::new();
        let mut lint_entries = BTreeMap::new();
        for (idx, raw) in content.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(file), Some(count)) = (parts.next(), parts.next()) else {
                continue;
            };
            let Ok(n) = count.parse::<usize>() else {
                continue;
            };
            match file.split_once(':') {
                Some((lint, file)) => {
                    lint_entries.insert((lint.to_string(), file.to_string()), (n, idx + 1));
                }
                None => {
                    entries.insert(file.to_string(), (n, idx + 1));
                }
            }
        }
        Allowlist { path, entries, lint_entries }
    }

    /// Allowed count for a prefixed `<lint>:<file>` entry (0 if absent).
    fn allowed_for(&self, lint: &str, file: &str) -> usize {
        self.lint_entries.get(&(lint.to_string(), file.to_string())).map(|(n, _)| *n).unwrap_or(0)
    }
}

fn norm(p: &std::path::Path) -> String {
    p.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// One site a ratcheting lint counted: its line, plus whatever detail
/// the lint's message builder wants to show for the first excess site.
type RatchetSite = (usize, String);

/// The shared engine behind every `<lint>:<file>`-ratcheted lint: count
/// the file's sites against the allowlist, report the first excess site
/// with `describe(actual, allowed, detail)`, flag over-generous entries
/// as stale, and record entry consumption so the final sweep can catch
/// entries that match no scanned file. `noun` names the counted thing in
/// stale-allowlist messages ("unwrap()/expect() call(s)" etc.).
#[allow(clippy::too_many_arguments)]
fn ratchet_file(
    out: &mut Vec<Violation>,
    allowlist: &Allowlist,
    lint: &'static str,
    noun: &str,
    consumed: &mut BTreeSet<String>,
    file: &FileFacts,
    sites: &[RatchetSite],
    describe: &dyn Fn(usize, usize, &str) -> String,
) {
    let path = norm(&file.path);
    let allowed = allowlist.allowed_for(lint, &path);
    if allowlist.lint_entries.contains_key(&(lint.to_string(), path.clone())) {
        consumed.insert(path.clone());
    }
    let actual = sites.len();
    if actual > allowed {
        let (line, detail) = &sites[allowed];
        out.push(Violation {
            lint,
            severity: Severity::Error,
            file: file.path.clone(),
            line: *line,
            message: describe(actual, allowed, detail),
        });
    } else if actual < allowed {
        let (_, entry_line) = allowlist.lint_entries[&(lint.to_string(), path.clone())];
        out.push(Violation {
            lint: "stale-allowlist",
            severity: Severity::Warning,
            file: allowlist.path.clone(),
            line: entry_line,
            message: format!(
                "allowlist permits {allowed} {noun} in {path} but only {actual} remain; \
                 ratchet the entry down"
            ),
        });
    }
}

/// Run every lint over the extracted facts.
pub fn run_lints<'a>(files: &'a [FileFacts], allowlist: &Allowlist) -> Vec<Violation> {
    let mut out = Vec::new();

    // ---- Build the global action tables. -------------------------------
    // Helper namespace constants (`BASE`) live in the same mods; only
    // constants bound to a full action URI participate in cross-checks.
    let action_consts = |f: &'a FileFacts| -> Vec<&'a ActionConst> {
        f.consts.iter().filter(|c| looks_like_action_uri(&c.uri)).collect()
    };
    // name → [(crate, uri)]
    let mut const_table: BTreeMap<&str, Vec<(&str, &str)>> = BTreeMap::new();
    for f in files {
        for c in action_consts(f) {
            const_table.entry(&c.name).or_default().push((&f.crate_name, &c.uri));
        }
    }
    let resolve = |hint: Option<&str>, current: &str, name: &str| -> Option<String> {
        let candidates = const_table.get(name)?;
        if candidates.len() == 1 {
            return Some(candidates[0].1.to_string());
        }
        let pick = |k: &str| candidates.iter().find(|(c, _)| *c == k).map(|(_, u)| u.to_string());
        hint.and_then(pick).or_else(|| pick(current)).or_else(|| Some(candidates[0].1.to_string()))
    };
    let known_uris: BTreeSet<&str> = files
        .iter()
        .flat_map(|f| f.consts.iter())
        .filter(|c| looks_like_action_uri(&c.uri))
        .map(|c| c.uri.as_str())
        .collect();

    // URI → set of site kinds observed, with one representative site each.
    let mut sent: BTreeMap<String, (PathBuf, usize)> = BTreeMap::new();
    let mut registered: BTreeMap<String, (PathBuf, usize)> = BTreeMap::new();
    for f in files {
        for s in &f.sites {
            let Some(uri) = resolve(s.crate_hint.as_deref(), &f.crate_name, &s.const_name) else {
                if s.kind == SiteKind::IdempotencyDecl {
                    out.push(Violation {
                        lint: "unknown-idempotency-action",
                        severity: Severity::Error,
                        file: f.path.clone(),
                        line: s.line,
                        message: format!(
                            "idempotency declaration names `{}`, which is not a defined action constant",
                            s.const_name
                        ),
                    });
                }
                continue;
            };
            match s.kind {
                SiteKind::Send => {
                    sent.entry(uri).or_insert_with(|| (f.path.clone(), s.line));
                }
                SiteKind::Register => {
                    registered.entry(uri).or_insert_with(|| (f.path.clone(), s.line));
                }
                SiteKind::IdempotencyDecl => {
                    if classify_action(&s.const_name) == WriteClass::Write {
                        out.push(Violation {
                            lint: "non-idempotent-marked",
                            severity: Severity::Error,
                            file: f.path.clone(),
                            line: s.line,
                            message: format!(
                                "`{}` mutates resource state but is declared idempotent; \
                                 retrying it can repeat the write",
                                s.const_name
                            ),
                        });
                    }
                }
                SiteKind::Other => {}
            }
        }
    }

    // ---- unregistered-send / unreachable-registration. -----------------
    for (uri, (file, line)) in &sent {
        if !registered.contains_key(uri) {
            out.push(Violation {
                lint: "unregistered-send",
                severity: Severity::Error,
                file: file.clone(),
                line: *line,
                message: format!(
                    "client sends action `{uri}` but no dispatcher registers a handler for it"
                ),
            });
        }
    }
    for (uri, (file, line)) in &registered {
        if !sent.contains_key(uri) {
            out.push(Violation {
                lint: "unreachable-registration",
                severity: Severity::Error,
                file: file.clone(),
                line: *line,
                message: format!("dispatcher registers action `{uri}` but no client ever sends it"),
            });
        }
    }

    // ---- Per-mod inventory and URI uniqueness. --------------------------
    for f in files {
        if let Some(all) = &f.all_members {
            for c in action_consts(f) {
                if !all.contains(&c.name) {
                    out.push(Violation {
                        lint: "inventory-missing",
                        severity: Severity::Error,
                        file: f.path.clone(),
                        line: f.all_line,
                        message: format!(
                            "action constant `{}` is not listed in the mod's `ALL` inventory",
                            c.name
                        ),
                    });
                }
            }
        }
        let mut seen: BTreeMap<&str, &str> = BTreeMap::new();
        for c in action_consts(f) {
            if let Some(first) = seen.insert(&c.uri, &c.name) {
                out.push(Violation {
                    lint: "duplicate-action-uri",
                    severity: Severity::Error,
                    file: f.path.clone(),
                    line: c.line,
                    message: format!(
                        "`{}` and `{first}` are bound to the same action URI `{}`",
                        c.name, c.uri
                    ),
                });
            }
        }
    }

    // ---- Raw literals outside `mod actions`. ----------------------------
    for f in files {
        for lit in &f.string_literals {
            if known_uris.contains(lit.value.as_str()) {
                out.push(Violation {
                    lint: "raw-action-literal",
                    severity: Severity::Warning,
                    file: f.path.clone(),
                    line: lit.line,
                    message: format!(
                        "action URI `{}` written as a raw literal; use the `actions::` constant",
                        lit.value
                    ),
                });
            } else if looks_like_action_uri(&lit.value) {
                out.push(Violation {
                    lint: "action-uri-mismatch",
                    severity: Severity::Error,
                    file: f.path.clone(),
                    line: lit.line,
                    message: format!(
                        "`{}` looks like a SOAP action URI but matches no defined action constant \
                         (typo?)",
                        lit.value
                    ),
                });
            }
        }
    }

    // ---- Fault vocabulary. ----------------------------------------------
    // The taxonomy is whatever fault.rs itself declares.
    let taxonomy: BTreeSet<&str> = files
        .iter()
        .filter(|f| norm(&f.path).ends_with("soap/src/fault.rs"))
        .flat_map(|f| f.fault_literals.iter().map(|l| l.value.as_str()))
        .collect();
    for f in files {
        if norm(&f.path).ends_with("soap/src/fault.rs") {
            continue;
        }
        for lit in &f.fault_literals {
            debug_assert!(looks_like_fault_name(&lit.value));
            if !taxonomy.contains(lit.value.as_str()) {
                out.push(Violation {
                    lint: "unknown-fault-name",
                    severity: Severity::Error,
                    file: f.path.clone(),
                    line: lit.line,
                    message: format!(
                        "fault name `{}` is not part of the taxonomy declared in soap/src/fault.rs",
                        lit.value
                    ),
                });
            }
        }
    }

    // ---- Property vocabulary. -------------------------------------------
    for f in files {
        for lit in &f.property_literals {
            debug_assert!(is_upper_camel(&lit.value));
            if !CANONICAL_PROPERTY_NAMES.contains(&lit.value.as_str()) {
                out.push(Violation {
                    lint: "unknown-property-name",
                    severity: Severity::Error,
                    file: f.path.clone(),
                    line: lit.line,
                    message: format!(
                        "property name `{}` is not in the paper's WS-DAI/WS-DAIR property tables",
                        lit.value
                    ),
                });
            }
        }
    }

    // ---- unwrap ratchet. -------------------------------------------------
    let mut counted: BTreeSet<&str> = BTreeSet::new();
    for f in files {
        let path = norm(&f.path);
        let allowed = allowlist.entries.get(&path).map(|(n, _)| *n).unwrap_or(0);
        if let Some((k, _)) = allowlist.entries.get_key_value(&path) {
            counted.insert(k);
        }
        let actual = f.unwrap_sites.len();
        if actual > allowed {
            let first_excess = f.unwrap_sites.get(allowed).copied().unwrap_or(0);
            out.push(Violation {
                lint: "unwrap-in-library",
                severity: Severity::Error,
                file: f.path.clone(),
                line: first_excess,
                message: format!(
                    "{actual} unwrap()/expect() call(s) in library code (allowlist permits \
                     {allowed}); handle the error or extend {}",
                    allowlist.path.display()
                ),
            });
        } else if actual < allowed {
            let (_, entry_line) = allowlist.entries[&path];
            out.push(Violation {
                lint: "stale-allowlist",
                severity: Severity::Warning,
                file: allowlist.path.clone(),
                line: entry_line,
                message: format!(
                    "allowlist permits {allowed} unwrap()/expect() call(s) in {path} but only \
                     {actual} remain; ratchet the entry down"
                ),
            });
        }
    }
    for (path, (_, entry_line)) in &allowlist.entries {
        if !counted.contains(path.as_str()) {
            out.push(Violation {
                lint: "stale-allowlist",
                severity: Severity::Warning,
                file: allowlist.path.clone(),
                line: *entry_line,
                message: format!("allowlist entry for `{path}` matches no scanned file"),
            });
        }
    }

    // ---- Ratcheting lints: per-file counts against `<lint>:<file>`
    // allowlist entries, all driven by the shared `ratchet_file` engine.
    let mut consumed: BTreeMap<&'static str, BTreeSet<String>> = BTreeMap::new();

    // `to_bytes()` allocates a fresh owned buffer per call; everything on
    // the bus's serialise path has a pooled `to_bytes_into` counterpart
    // that reuses thread-local buffers. Intentional owned-bytes sites
    // (e.g. bytes that escape into an `Intercept::Reply`) carry a
    // `pooled-buffer-bypass:<file>` allowlist entry.
    const POOLED_LINT: &str = "pooled-buffer-bypass";
    let allow_path = allowlist.path.display().to_string();
    for f in files.iter().filter(|f| f.crate_name == "soap") {
        let sites: Vec<RatchetSite> =
            f.to_bytes_sites.iter().map(|&l| (l, String::new())).collect();
        ratchet_file(
            &mut out,
            allowlist,
            POOLED_LINT,
            "to_bytes() call(s)",
            consumed.entry(POOLED_LINT).or_default(),
            f,
            &sites,
            &|actual, allowed, _| {
                format!(
                    "{actual} to_bytes() call(s) on the soap wire path (allowlist permits \
                     {allowed}); use the pooled `to_bytes_into` variant or extend {allow_path}"
                )
            },
        );
    }

    // The dair wire path streams pages and query results straight off
    // the backing rowset/cursor (`Rowset::write_window_into`,
    // `RowsetWriter` over a `RowStream`); materialising APIs —
    // `.tuples()` page clones, `.to_wire_bytes()`, `.collect_rowset()` —
    // reintroduce the per-request copy the zero-materialisation data
    // plane removed. Intentional sites carry a
    // `rowset-materialise-bypass:<file>` allowlist entry.
    const MATERIALISE_LINT: &str = "rowset-materialise-bypass";
    for f in files.iter().filter(|f| f.crate_name == "dair") {
        let sites: Vec<RatchetSite> =
            f.rowset_materialise_sites.iter().map(|l| (l.line, l.value.clone())).collect();
        ratchet_file(
            &mut out,
            allowlist,
            MATERIALISE_LINT,
            "materialising rowset call(s)",
            consumed.entry(MATERIALISE_LINT).or_default(),
            f,
            &sites,
            &|actual, allowed, method| {
                format!(
                    "{actual} materialising rowset call(s) (`.{method}(`) on the dair wire \
                     path (allowlist permits {allowed}); stream via `write_window_into` / \
                     `RowsetWriter` or extend {allow_path}"
                )
            },
        );
    }

    // `SoapDispatcher::dispatch` is the raw handler-table lookup;
    // calling it directly from outside `crates/soap` skips the executor
    // (queueing, backpressure, stats, interceptors, tracing). Everything
    // goes through `Bus::call` / `call_async`; intentional direct
    // exchanges carry an `executor-bypass:<file>` allowlist entry.
    const EXECUTOR_LINT: &str = "executor-bypass";
    for f in files.iter().filter(|f| f.crate_name != "soap") {
        let sites: Vec<RatchetSite> =
            f.dispatch_sites.iter().map(|&l| (l, String::new())).collect();
        ratchet_file(
            &mut out,
            allowlist,
            EXECUTOR_LINT,
            "direct dispatch() call(s)",
            consumed.entry(EXECUTOR_LINT).or_default(),
            f,
            &sites,
            &|actual, allowed, _| {
                format!(
                    "{actual} direct dispatch() call(s) outside crates/soap (allowlist permits \
                     {allowed}); route the exchange through `Bus::call` or extend {allow_path}"
                )
            },
        );
    }

    // `TcpStream`/`TcpListener` outside `crates/soap/src/tcp.rs` opens a
    // side channel around the Transport seam — no length-prefixed
    // framing, no pooled reconnects, no timeout→`BusError` mapping, and
    // none of the interceptor/tracing/stats layers that sit above the
    // trait. (Integration tests and benches are outside the scan and may
    // play raw peers.) Exceptions carry `transport-bypass:<file>`.
    const TRANSPORT_LINT: &str = "transport-bypass";
    for f in files.iter().filter(|f| !norm(&f.path).ends_with("soap/src/tcp.rs")) {
        let sites: Vec<RatchetSite> =
            f.tcp_stream_sites.iter().map(|&l| (l, String::new())).collect();
        ratchet_file(
            &mut out,
            allowlist,
            TRANSPORT_LINT,
            "raw socket use(s)",
            consumed.entry(TRANSPORT_LINT).or_default(),
            f,
            &sites,
            &|actual, allowed, _| {
                format!(
                    "{actual} raw TcpStream/TcpListener use(s) outside crates/soap/src/tcp.rs \
                     (allowlist permits {allowed}); go through the `Transport` seam or extend \
                     {allow_path}"
                )
            },
        );
    }

    // `Tracer::span`/`child_span` take `&'static str` names so traces
    // render against a closed vocabulary (`dais_obs::names::span_names`);
    // a literal at the call site bypasses the inventory and silently
    // forks the name space. `span-name-literal:<file>` entries ratchet
    // intentional exceptions.
    const SPAN_LINT: &str = "span-name-literal";
    for f in files {
        let sites: Vec<RatchetSite> =
            f.span_literal_sites.iter().map(|l| (l.line, l.value.clone())).collect();
        ratchet_file(
            &mut out,
            allowlist,
            SPAN_LINT,
            "literal span name(s)",
            consumed.entry(SPAN_LINT).or_default(),
            f,
            &sites,
            &|_, _, name| {
                format!(
                    "span name `{name}` written as a literal at the call site; add it to \
                     `dais_obs::names::span_names` and pass the constant"
                )
            },
        );
    }

    // `Journal::event`/`event_ctx` take `&'static str` names so the
    // flight recorder's journal renders against the same closed
    // vocabulary (`dais_obs::names::event_names`); a literal at the call
    // site bypasses the inventory exactly like a literal span name.
    // `event-name-literal:<file>` entries ratchet intentional exceptions.
    const EVENT_LINT: &str = "event-name-literal";
    for f in files {
        let sites: Vec<RatchetSite> =
            f.event_literal_sites.iter().map(|l| (l.line, l.value.clone())).collect();
        ratchet_file(
            &mut out,
            allowlist,
            EVENT_LINT,
            "literal event name(s)",
            consumed.entry(EVENT_LINT).or_default(),
            f,
            &sites,
            &|_, _, name| {
                format!(
                    "journal event name `{name}` written as a literal at the call site; add it \
                     to `dais_obs::names::event_names` and pass the constant"
                )
            },
        );
    }

    // A lock guard live across a `Bus::call`/`dispatch`/transport call
    // or socket I/O: the callee can block on a timeout, a full queue, or
    // a remote peer while every other contender of that lock waits — the
    // deadlock-by-blocking shape the dynamic lock-order detector cannot
    // see (it only orders lock pairs, and the blocked party here holds
    // none). Guards must drop before the exchange.
    const GUARD_DISPATCH_LINT: &str = "guard-across-dispatch";
    for f in files {
        let sites: Vec<RatchetSite> = f
            .guard_dispatch_sites
            .iter()
            .map(|c| {
                (
                    c.line,
                    format!(
                        "guard `{}` (taken on line {}) across `{}`",
                        c.guard, c.guard_line, c.what
                    ),
                )
            })
            .collect();
        ratchet_file(
            &mut out,
            allowlist,
            GUARD_DISPATCH_LINT,
            "guard-across-dispatch site(s)",
            consumed.entry(GUARD_DISPATCH_LINT).or_default(),
            f,
            &sites,
            &|_, _, detail| {
                format!(
                    "lock {detail}: a blocking exchange under a live guard stalls every \
                     contender and can deadlock the fabric; drop the guard first"
                )
            },
        );
    }

    // A lock guard live across `thread::sleep`/`recv_timeout`/injected
    // sleeps: the nap is billed to every thread contending for the lock.
    // (Condvar `wait`/`wait_timeout` are exempt by construction — a wait
    // atomically releases its own mutex.)
    const GUARD_SLEEP_LINT: &str = "guard-across-sleep";
    for f in files {
        let sites: Vec<RatchetSite> = f
            .guard_sleep_sites
            .iter()
            .map(|c| {
                (
                    c.line,
                    format!(
                        "guard `{}` (taken on line {}) across `{}`",
                        c.guard, c.guard_line, c.what
                    ),
                )
            })
            .collect();
        ratchet_file(
            &mut out,
            allowlist,
            GUARD_SLEEP_LINT,
            "guard-across-sleep site(s)",
            consumed.entry(GUARD_SLEEP_LINT).or_default(),
            f,
            &sites,
            &|_, _, detail| {
                format!(
                    "lock {detail}: sleeping under a live guard stalls every contender for \
                     the whole pause; drop the guard before pausing"
                )
            },
        );
    }

    // Direct `std::sync::Mutex`/`RwLock`/`Condvar` use outside the
    // `dais_util::sync` wrappers bypasses the lock-order deadlock
    // detector: acquisitions are never classed or edge-checked, so an
    // inversion through such a lock goes unobserved until it deadlocks
    // for real. The wrapper module and the detector's own internals are
    // exempt (they *are* the implementation).
    const RAW_SYNC_LINT: &str = "raw-sync-primitive";
    const RAW_SYNC_EXEMPT: &[&str] =
        &["util/src/sync.rs", "util/src/lockorder.rs", "util/src/pool.rs"];
    for f in files {
        let path = norm(&f.path);
        if RAW_SYNC_EXEMPT.iter().any(|e| path.ends_with(e)) {
            continue;
        }
        let sites: Vec<RatchetSite> =
            f.raw_sync_sites.iter().map(|l| (l.line, l.value.clone())).collect();
        ratchet_file(
            &mut out,
            allowlist,
            RAW_SYNC_LINT,
            "raw std::sync primitive(s)",
            consumed.entry(RAW_SYNC_LINT).or_default(),
            f,
            &sites,
            &|_, _, name| {
                format!(
                    "`std::sync::{name}` bypasses the lock-order deadlock detector; use \
                     `dais_util::sync::{name}` (see crates/util/src/lockorder.rs)"
                )
            },
        );
    }

    // The `/shard/` bus-path convention is how a fleet lays out its
    // backing replica services; it is spelled out exactly once, in
    // `dais_federation::fleet::shard_address`. Any other crate writing a
    // literal shard path is addressing a backing replica directly —
    // bypassing the router's health tracking and failover, and coupling
    // itself to a topology the federation is free to change.
    // (The federation crate owns the convention; this crate spells it
    // out in the pattern and diagnostic below.)
    for f in files {
        if f.crate_name == "federation" || f.crate_name == "check" {
            continue;
        }
        for lit in &f.string_literals {
            if lit.value.contains("/shard/") {
                out.push(Violation {
                    lint: "federation-bypass",
                    severity: Severity::Error,
                    file: f.path.clone(),
                    line: lit.line,
                    message: format!(
                        "shard endpoint path `{}` addressed directly; resolve replicas through \
                         `dais_federation::ShardRouter` — the `/shard/` path convention is \
                         federation-internal",
                        lit.value
                    ),
                });
            }
        }
    }

    // ---- Staleness sweep over every `<lint>:<file>` entry: an entry
    // whose lint never consumed it names a file outside the lint's scope
    // (or a lint that does not exist) and must go.
    for ((lint, path), (_, entry_line)) in &allowlist.lint_entries {
        let stale = consumed.get(lint.as_str()).is_none_or(|c| !c.contains(path));
        if stale {
            out.push(Violation {
                lint: "stale-allowlist",
                severity: Severity::Warning,
                file: allowlist.path.clone(),
                line: *entry_line,
                message: format!("allowlist entry `{lint}:{path}` matches no scanned file"),
            });
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_classification() {
        assert_eq!(classify_action("GET_SQL_ROWSET"), WriteClass::Read);
        assert_eq!(classify_action("GENERIC_QUERY"), WriteClass::Read);
        assert_eq!(classify_action("SQL_EXECUTE_FACTORY"), WriteClass::Write);
        assert_eq!(classify_action("ADD_DOCUMENTS"), WriteClass::Write);
        assert_eq!(classify_action("XUPDATE_EXECUTE"), WriteClass::Write);
        assert_eq!(classify_action("DESTROY"), WriteClass::Write);
        assert_eq!(classify_action("SET_TERMINATION_TIME"), WriteClass::Write);
        assert_eq!(classify_action("SQL_EXECUTE"), WriteClass::PayloadDependent);
        assert_eq!(classify_action("READ_FILE"), WriteClass::Read);
    }

    #[test]
    fn action_uri_shapes() {
        assert!(looks_like_action_uri("http://www.ggf.org/namespaces/2005/12/WS-DAIR/SQLExecute"));
        assert!(!looks_like_action_uri("http://www.ggf.org/namespaces/2005/12/WS-DAIR"));
        assert!(looks_like_action_uri("http://docs.oasis-open.org/wsrf/rpw-2/GetResourceProperty"));
        assert!(!looks_like_action_uri("http://docs.oasis-open.org/wsrf/rpw-2"));
        assert!(!looks_like_action_uri("http://example.org/other"));
    }

    #[test]
    fn allowlist_parsing() {
        let a = Allowlist::parse(
            PathBuf::from("x.allow"),
            "# comment\ncrates/a/src/b.rs 3\n\ncrates/c/src/d.rs 1 # trailing\n\
             pooled-buffer-bypass:crates/soap/src/e.rs 2\n",
        );
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.entries["crates/a/src/b.rs"], (3, 2));
        assert_eq!(a.entries["crates/c/src/d.rs"], (1, 4));
        assert_eq!(a.lint_entries.len(), 1);
        assert_eq!(a.allowed_for("pooled-buffer-bypass", "crates/soap/src/e.rs"), 2);
        assert_eq!(a.allowed_for("pooled-buffer-bypass", "crates/soap/src/f.rs"), 0);
    }
}
