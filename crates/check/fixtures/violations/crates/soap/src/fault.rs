//! Fixture fault taxonomy: exactly one legal fault name.

pub fn name() -> &'static str {
    "KnownFault"
}
