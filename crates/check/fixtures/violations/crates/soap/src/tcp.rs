//! Fixture: the one file allowed to touch raw sockets — proves the
//! `transport-bypass` exemption for `crates/soap/src/tcp.rs`.

pub fn open(addr: &str) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr)
}
