//! Fixture: serialises to owned bytes on the wire path instead of the
//! pooled `to_bytes_into` variant (`pooled-buffer-bypass`).

pub fn send(env: &Envelope) -> Vec<u8> {
    env.to_bytes()
}
