//! Fixture: a dair wire handler that materialises the requested page —
//! clones it out of the resource, then serialises it to an owned buffer —
//! instead of streaming it off the backing rowset
//! (`rowset-materialise-bypass`).

use crate::resources::RowsetResource;

pub fn get_tuples_handler(resource: &RowsetResource, start: usize, count: usize) -> Vec<u8> {
    let page = resource.tuples(start, count);
    page.to_wire_bytes()
}
