//! Fixture: a journal event named by a raw literal instead of an
//! `event_names::` inventory constant.

pub fn journal_a_thing(journal: &Journal, ctx: Option<TraceContext>) {
    // Trips `event-name-literal`.
    journal.event("rogue.event", 1, 2, 0);
    // Constant-named events stay silent, on both emit forms.
    journal.event(event_names::REQ_ADMIT, 1, 2, 0);
    journal.event_ctx(event_names::REQ_DISPATCH, ctx, 0);
}
