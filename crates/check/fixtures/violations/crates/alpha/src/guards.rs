//! Fixture: a lock guard held live across a blocking bus exchange — the
//! callee can stall on a queue or a remote peer while every contender of
//! the lock waits behind it: guard-across-dispatch.

pub fn exchange_under_lock(bus: &Bus, state: &Mutex<u64>) -> u64 {
    let guard = state.lock();
    let reply = bus.call(make_request(*guard));
    drop(guard);
    reply.len() as u64
}

/// The clean shape: the guard drops before the exchange.
pub fn exchange_after_drop(bus: &Bus, state: &Mutex<u64>) -> usize {
    let request = {
        let guard = state.lock();
        make_request(*guard)
    };
    bus.call(request).len()
}
