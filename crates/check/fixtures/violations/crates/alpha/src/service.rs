//! Fixture service seeding the register-side lint.

use crate::actions;

pub fn register_ops(dispatcher: &mut Dispatcher) {
    // Registered but no client ever sends it: unreachable-registration.
    dispatcher.register(actions::LONELY_REGISTERED, handler);
}
