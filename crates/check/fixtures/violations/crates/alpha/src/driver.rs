//! Fixture: a direct dispatcher exchange outside crates/soap, skipping
//! the bus executor path: executor-bypass.

pub fn shortcut(dispatcher: &SoapDispatcher, envelope: &Envelope) -> Result<Envelope, Fault> {
    dispatcher.dispatch(envelope)
}
