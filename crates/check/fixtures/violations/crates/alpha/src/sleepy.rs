//! Fixture: a lock guard held live across a sleep — the nap is billed to
//! every thread contending for the lock: guard-across-sleep.

pub fn nap_under_lock(state: &Mutex<u64>) {
    let mut guard = state.lock();
    thread::sleep(Duration::from_millis(10));
    *guard += 1;
}

/// The clean shape: pause first, lock after.
pub fn nap_then_lock(state: &Mutex<u64>) {
    thread::sleep(Duration::from_millis(10));
    *state.lock() += 1;
}
