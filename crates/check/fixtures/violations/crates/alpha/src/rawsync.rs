//! Fixture: direct `std::sync` lock construction — acquisitions bypass
//! the lock-order deadlock detector: raw-sync-primitive.

use std::sync::Mutex;

pub fn untracked() -> Mutex<u64> {
    Mutex::new(0)
}
