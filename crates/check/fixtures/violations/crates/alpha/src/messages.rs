//! Fixture action constants seeding inventory and uniqueness lints.

pub mod actions {
    pub const GET_THING: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIT/GetThing";
    // Same URI as GET_THING: duplicate-action-uri.
    pub const GET_THING_ALIAS: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIT/GetThing";
    pub const DELETE_THING: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIT/DeleteThing";
    // Not listed in ALL: inventory-missing.
    pub const ORPHAN_OP: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIT/OrphanOp";
    pub const LONELY_REGISTERED: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIT/LonelyRegistered";

    pub const ALL: &[&str] = &[GET_THING, GET_THING_ALIAS, DELETE_THING, LONELY_REGISTERED];
}
