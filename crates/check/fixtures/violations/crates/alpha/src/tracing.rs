//! Fixture: a tracing span named by a raw literal instead of a
//! `span_names::` inventory constant.

pub fn trace_a_thing(tracer: &Tracer, parent: Option<TraceContext>) {
    // Trips `span-name-literal`.
    let rogue = tracer.span("rogue.span", None);
    drop(rogue);
    // Constant-named spans stay silent.
    let fine = tracer.child_span(span_names::CLIENT_CALL, parent);
    drop(fine);
}
