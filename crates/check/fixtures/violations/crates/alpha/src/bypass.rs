//! Fixture: addresses a fleet's backing replica by its literal shard
//! path instead of resolving it through the federation router.

pub fn sneaky_shard_call() -> String {
    // federation-bypass: the `/shard/` convention belongs to dais-federation.
    let endpoint = "bus://fleet/shard/0/r1";
    endpoint.to_string()
}
