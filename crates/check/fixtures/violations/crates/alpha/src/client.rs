//! Fixture client seeding send-side and idempotency lints.

use crate::actions;

pub fn idempotent_actions() -> IdempotencySet {
    IdempotencySet::new([
        actions::GET_THING,
        // A write declared idempotent: non-idempotent-marked.
        actions::DELETE_THING,
        // Not a defined constant: unknown-idempotency-action.
        actions::NOT_A_CONST,
    ])
}

pub fn exercise(c: &Client) {
    // Sent but never registered: unregistered-send.
    c.request(actions::GET_THING, body());
    // A known URI as a raw literal: raw-action-literal.
    c.request("http://www.ggf.org/namespaces/2005/12/WS-DAIT/GetThing", body());
    // Action-shaped but matching no constant: action-uri-mismatch.
    c.request("http://www.ggf.org/namespaces/2005/12/WS-DAIT/GetThingg", body());
    // Library-code unwrap with no allowlist entry: unwrap-in-library.
    c.last_response().unwrap();
}
