//! Fixture: raw socket use outside the TCP transport module — a side
//! channel around the Transport seam's framing, pooling, and timeout
//! mapping: transport-bypass.

pub fn side_channel(addr: &str) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr)
}
