//! Fixture fault construction with a name outside the taxonomy that the
//! fixture `soap/src/fault.rs` declares: unknown-fault-name.

pub fn fail() -> Fault {
    Fault::named("BogusFault")
}
