//! Fixture file with zero unwraps; the allowlist entry claiming five is
//! stale: stale-allowlist.

pub fn nothing() {}
