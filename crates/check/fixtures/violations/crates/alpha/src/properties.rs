//! Fixture property document builder with a name outside the paper's
//! property tables: unknown-property-name.

pub fn build(doc: &Document) {
    doc.child(ns::WSDAI, "MadeUpProperty");
    doc.child(ns::WSDAI, "Readable"); // canonical, no violation
}
