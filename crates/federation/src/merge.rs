//! Streaming k-way merge of WebRowSet pages.
//!
//! Scatter-gather answers arrive as one serialised rowset per shard. The
//! merge consumes a [`RowsetCursor`] per shard — rows decode off the wire
//! bytes on demand — and re-encodes straight into the caller's
//! [`XmlWriter`], so no shard page and no merged result is ever
//! materialised. Steady state holds exactly one decoded row per shard
//! (buffers reused across rows): O(1) allocations per merged page.

use std::cmp::Ordering;

use dais_sql::{RowsetColumn, RowsetCursor, RowsetWriter, SqlError, Value};
use dais_xml::{XmlSink, XmlWriter};

/// A total order over [`Value`]s for merging: `NULL < booleans < numbers
/// < strings`, numbers compared exactly across `Int`/`Double` (no lossy
/// promotion — a shard sorting `i64`s past 2^53 must merge in the same
/// order it sorted). `Value` deliberately carries no `PartialOrd` — SQL
/// comparison is three-valued — so the merge defines its own.
pub fn compare_values(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Double(_) => 2,
            Value::Str(_) => 3,
        }
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Int(x), Value::Double(y)) => cmp_int_double(*x, *y),
        (Value::Double(x), Value::Int(y)) => cmp_int_double(*y, *x).reverse(),
        (Value::Double(x), Value::Double(y)) => x.total_cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => rank(a).cmp(&rank(b)),
    }
}

/// Exact `i64` vs `f64` ordering. `i as f64` rounds for |i| > 2^53 and
/// would disagree with the shard-local integer sort; instead the double
/// is decomposed: its integer part compares exactly against `i`, and a
/// fractional remainder breaks the tie. NaN sorts above every integer
/// (matching `total_cmp` against positive NaN); negative NaN below.
fn cmp_int_double(i: i64, d: f64) -> Ordering {
    if d.is_nan() {
        return if d.is_sign_negative() { Ordering::Greater } else { Ordering::Less };
    }
    let floor = d.floor();
    // i64::MAX as f64 rounds up to 2^63, so `floor >= 2^63` exactly
    // captures "integer part above every i64"; -2^63 is representable.
    if floor >= i64::MAX as f64 {
        return Ordering::Less;
    }
    if floor < i64::MIN as f64 {
        return Ordering::Greater;
    }
    match i.cmp(&(floor as i64)) {
        // Equal integer parts: a fractional remainder pushes d above i.
        Ordering::Equal if d > floor => Ordering::Less,
        ord => ord,
    }
}

/// The column an `ORDER BY` term sorts on, as far as the merge needs to
/// know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortKey {
    /// Sort column by (unqualified, case-insensitive) name.
    Column(String),
    /// Zero-based output-column ordinal.
    Ordinal(usize),
}

/// One `ORDER BY` term of a scattered statement: which output column it
/// sorts on, and in which direction. The full term list merges
/// lexicographically ([`merge_cursors`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeKey {
    pub key: SortKey,
    pub descending: bool,
}

impl MergeKey {
    /// Resolve the key against the rowset metadata; `None` if the
    /// statement ordered by something the output does not carry.
    pub fn index_in(&self, columns: &[RowsetColumn]) -> Option<usize> {
        match &self.key {
            SortKey::Ordinal(i) => (*i < columns.len()).then_some(*i),
            SortKey::Column(name) => columns.iter().position(|c| c.name.eq_ignore_ascii_case(name)),
        }
    }
}

const NULL: Value = Value::Null;

/// Merge `cursors` (one sorted rowset page per shard) into `w` as a
/// single WebRowSet document, skipping `skip` merged rows and emitting
/// at most `take`. Returns the number of rows written.
///
/// With a non-empty `order` the merge is a k-way minimum scan comparing
/// the full key list lexicographically — ties on the first key fall to
/// the second, and so on, exactly as a single service's sort would —
/// breaking only complete ties towards the lowest shard index. Without
/// one, pages concatenate in shard order. Either way every row streams
/// cursor → writer through one reused buffer per shard.
pub fn merge_cursors<S: XmlSink>(
    w: &mut XmlWriter<'_, S>,
    mut cursors: Vec<RowsetCursor<'_>>,
    order: &[MergeKey],
    skip: usize,
    take: usize,
) -> Result<u64, SqlError> {
    let mut writer = RowsetWriter::new();
    let columns: Vec<RowsetColumn> = match cursors.first() {
        Some(c) => c.columns().to_vec(),
        None => Vec::new(),
    };
    writer.begin(w, &columns);
    // Keys resolve to (column index, descending) pairs. The prefix up
    // to the first unresolvable key still orders the merge usefully; an
    // unresolvable *first* key degrades to shard-order concatenation,
    // as before.
    let keys: Vec<(usize, bool)> =
        order.iter().map_while(|k| k.index_in(&columns).map(|i| (i, k.descending))).collect();
    let compare_rows = |a: &[Value], b: &[Value]| -> Ordering {
        for &(index, descending) in &keys {
            let ord = compare_values(a.get(index).unwrap_or(&NULL), b.get(index).unwrap_or(&NULL));
            let ord = if descending { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    };

    // One reusable row buffer per shard; `alive[i]` says buffer i holds
    // the shard's next undelivered row.
    let mut rows: Vec<Vec<Value>> = cursors.iter().map(|_| Vec::new()).collect();
    let mut alive: Vec<bool> = Vec::with_capacity(cursors.len());
    for (c, buf) in cursors.iter_mut().zip(rows.iter_mut()) {
        alive.push(c.next_row_into(buf)?);
    }

    let mut seen = 0usize;
    let mut written = 0u64;
    while written < take as u64 {
        let next = if keys.is_empty() {
            (0..cursors.len()).find(|&i| alive[i])
        } else {
            let mut best: Option<usize> = None;
            for i in 0..cursors.len() {
                if !alive[i] {
                    continue;
                }
                // Strictly-less keeps complete ties on the lowest shard.
                if best.is_none_or(|b| compare_rows(&rows[i], &rows[b]) == Ordering::Less) {
                    best = Some(i);
                }
            }
            best
        };
        let Some(i) = next else { break };
        if seen >= skip {
            writer.row(w, rows[i].iter());
            written += 1;
        }
        seen += 1;
        alive[i] = cursors[i].next_row_into(&mut rows[i])?;
    }
    writer.finish(w);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_sql::{Rowset, SqlType};
    use dais_xml::PullParser;

    fn page(rows: &[(i64, &str)]) -> String {
        let columns = vec![
            RowsetColumn { name: "id".into(), ty: SqlType::Integer },
            RowsetColumn { name: "v".into(), ty: SqlType::Varchar },
        ];
        let mut out = String::new();
        let mut w = XmlWriter::new(&mut out);
        let mut rw = RowsetWriter::new();
        rw.begin(&mut w, &columns);
        for (id, v) in rows {
            let cells = [Value::Int(*id), Value::Str((*v).into())];
            rw.row(&mut w, cells.iter());
        }
        rw.finish(&mut w);
        w.finish();
        out
    }

    fn merged(pages: &[String], order: &[MergeKey], skip: usize, take: usize) -> Rowset {
        let mut parsers: Vec<PullParser<'_>> =
            pages.iter().map(|p| PullParser::new(p).unwrap()).collect();
        let cursors: Vec<RowsetCursor<'_>> =
            parsers.drain(..).map(|p| RowsetCursor::new(p).unwrap()).collect();
        let mut out = String::new();
        let mut w = XmlWriter::new(&mut out);
        merge_cursors(&mut w, cursors, order, skip, take).unwrap();
        w.finish();
        let mut p = PullParser::new(&out).unwrap();
        Rowset::read_from_pull(&mut p).unwrap()
    }

    fn ids(r: &Rowset) -> Vec<i64> {
        r.rows
            .iter()
            .map(|row| match &row[0] {
                Value::Int(i) => *i,
                other => panic!("non-int id {other:?}"),
            })
            .collect()
    }

    fn asc(name: &str) -> MergeKey {
        MergeKey { key: SortKey::Column(name.into()), descending: false }
    }

    fn desc(name: &str) -> MergeKey {
        MergeKey { key: SortKey::Column(name.into()), descending: true }
    }

    #[test]
    fn k_way_merge_interleaves_sorted_pages() {
        let pages = [page(&[(1, "a"), (4, "d"), (9, "i")]), page(&[(2, "b"), (3, "c")]), page(&[])];
        let r = merged(&pages, &[asc("id")], 0, usize::MAX);
        assert_eq!(ids(&r), vec![1, 2, 3, 4, 9]);
        assert_eq!(r.columns.len(), 2);
    }

    #[test]
    fn descending_merge_and_window() {
        let pages = [page(&[(9, "i"), (4, "d")]), page(&[(7, "g"), (2, "b")])];
        assert_eq!(ids(&merged(&pages, &[desc("id")], 0, usize::MAX)), vec![9, 7, 4, 2]);
        assert_eq!(ids(&merged(&pages, &[desc("id")], 1, 2)), vec![7, 4]);
    }

    #[test]
    fn no_key_concatenates_in_shard_order() {
        let pages = [page(&[(5, "e")]), page(&[(1, "a"), (3, "c")])];
        assert_eq!(ids(&merged(&pages, &[], 0, usize::MAX)), vec![5, 1, 3]);
    }

    /// `ORDER BY id, v`: ties on the first key must fall to the second,
    /// not to the shard index — shard 1 holds the lexicographically
    /// smaller `v` for both duplicated ids.
    #[test]
    fn first_key_ties_fall_to_later_keys() {
        let pages = [page(&[(1, "bb"), (2, "dd")]), page(&[(1, "aa"), (2, "cc")])];
        let r = merged(&pages, &[asc("id"), asc("v")], 0, usize::MAX);
        let vs: Vec<&Value> = r.rows.iter().map(|row| &row[1]).collect();
        assert_eq!(ids(&r), vec![1, 1, 2, 2]);
        assert_eq!(
            vs,
            [
                &Value::Str("aa".into()),
                &Value::Str("bb".into()),
                &Value::Str("cc".into()),
                &Value::Str("dd".into())
            ]
        );
        // Mixed directions: same first key, second key reversed.
        let r = merged(&pages, &[asc("id"), desc("v")], 0, usize::MAX);
        let vs: Vec<&Value> = r.rows.iter().map(|row| &row[1]).collect();
        assert_eq!(
            vs,
            [
                &Value::Str("bb".into()),
                &Value::Str("aa".into()),
                &Value::Str("dd".into()),
                &Value::Str("cc".into())
            ]
        );
    }

    #[test]
    fn equal_keys_break_ties_towards_the_lowest_shard() {
        let pages = [page(&[(1, "from-s0")]), page(&[(1, "from-s1")])];
        let r = merged(&pages, &[asc("id")], 0, usize::MAX);
        assert_eq!(r.rows[0][1], Value::Str("from-s0".into()));
        assert_eq!(r.rows[1][1], Value::Str("from-s1".into()));
    }

    #[test]
    fn value_order_ranks_types_then_compares_within() {
        use Ordering::*;
        assert_eq!(compare_values(&Value::Null, &Value::Bool(false)), Less);
        assert_eq!(compare_values(&Value::Bool(true), &Value::Int(0)), Less);
        assert_eq!(compare_values(&Value::Int(2), &Value::Double(1.5)), Greater);
        assert_eq!(compare_values(&Value::Double(2.0), &Value::Str("a".into())), Less);
        assert_eq!(compare_values(&Value::Str("a".into()), &Value::Str("b".into())), Less);
    }

    /// Int/Double comparison is exact past 2^53, where `as f64` rounds:
    /// 2^53 + 1 renders as exactly 2^53 after promotion and would
    /// compare Equal, mis-ordering the merge against the shard's own
    /// integer sort.
    #[test]
    fn int_double_comparison_is_exact_beyond_f64_precision() {
        use Ordering::*;
        let big = (1_i64 << 53) + 1;
        assert_eq!(compare_values(&Value::Int(big), &Value::Double((1_i64 << 53) as f64)), Greater);
        assert_eq!(compare_values(&Value::Double((1_i64 << 53) as f64), &Value::Int(big)), Less);
        assert_eq!(compare_values(&Value::Int(big), &Value::Double(big as f64 + 2.0)), Less);
        assert_eq!(compare_values(&Value::Int(3), &Value::Double(3.0)), Equal);
        assert_eq!(compare_values(&Value::Int(3), &Value::Double(3.5)), Less);
        assert_eq!(compare_values(&Value::Int(4), &Value::Double(3.5)), Greater);
        assert_eq!(compare_values(&Value::Int(-4), &Value::Double(-3.5)), Less);
        assert_eq!(compare_values(&Value::Int(i64::MAX), &Value::Double(f64::INFINITY)), Less);
        assert_eq!(
            compare_values(&Value::Int(i64::MIN), &Value::Double(f64::NEG_INFINITY)),
            Greater
        );
        assert_eq!(compare_values(&Value::Int(0), &Value::Double(f64::NAN)), Less);
        assert_eq!(compare_values(&Value::Int(0), &Value::Double(-f64::NAN)), Greater);
    }
}
