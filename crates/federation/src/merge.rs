//! Streaming k-way merge of WebRowSet pages.
//!
//! Scatter-gather answers arrive as one serialised rowset per shard. The
//! merge consumes a [`RowsetCursor`] per shard — rows decode off the wire
//! bytes on demand — and re-encodes straight into the caller's
//! [`XmlWriter`], so no shard page and no merged result is ever
//! materialised. Steady state holds exactly one decoded row per shard
//! (buffers reused across rows): O(1) allocations per merged page.

use std::cmp::Ordering;

use dais_sql::{RowsetColumn, RowsetCursor, RowsetWriter, SqlError, Value};
use dais_xml::{XmlSink, XmlWriter};

/// A total order over [`Value`]s for merging: `NULL < booleans < numbers
/// < strings`, numbers compared after promotion (exact when both sides
/// are integers). `Value` deliberately carries no `PartialOrd` — SQL
/// comparison is three-valued — so the merge defines its own.
pub fn compare_values(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Double(_) => 2,
            Value::Str(_) => 3,
        }
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Int(x), Value::Double(y)) => (*x as f64).total_cmp(y),
        (Value::Double(x), Value::Int(y)) => x.total_cmp(&(*y as f64)),
        (Value::Double(x), Value::Double(y)) => x.total_cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => rank(a).cmp(&rank(b)),
    }
}

/// The column an `ORDER BY` sorts on, as far as the merge needs to know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortKey {
    /// Sort column by (unqualified, case-insensitive) name.
    Column(String),
    /// Zero-based output-column ordinal.
    Ordinal(usize),
}

/// The merge discipline a scattered statement requires: which output
/// column orders the global result, and in which direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeKey {
    pub key: SortKey,
    pub descending: bool,
}

impl MergeKey {
    /// Resolve the key against the rowset metadata; `None` if the
    /// statement ordered by something the output does not carry (the
    /// merge then degrades to shard-order concatenation).
    pub fn index_in(&self, columns: &[RowsetColumn]) -> Option<usize> {
        match &self.key {
            SortKey::Ordinal(i) => (*i < columns.len()).then_some(*i),
            SortKey::Column(name) => columns.iter().position(|c| c.name.eq_ignore_ascii_case(name)),
        }
    }
}

/// Extract the merge key from a SQL statement's trailing `ORDER BY`
/// clause, if any. Only the *first* sort term matters to the k-way
/// merge: each shard already returns rows fully sorted, and a stable
/// lowest-shard tie-break keeps equal keys deterministic.
pub fn merge_key_of(sql: &str) -> Option<MergeKey> {
    let lower = sql.to_ascii_lowercase();
    let by = find_order_by(&lower)?;
    let tail = &sql[by..];
    let first_term = tail.split(',').next().unwrap_or(tail);
    let mut tokens = first_term.split_whitespace();
    let head = tokens.next()?;
    let mut descending = false;
    for t in tokens {
        match t.to_ascii_lowercase().as_str() {
            "desc" => descending = true,
            "asc" => descending = false,
            _ => break, // LIMIT / OFFSET / anything else ends the term
        }
    }
    let head = head.trim_matches(|c: char| c == ',' || c == ';');
    let key = if let Ok(ordinal) = head.parse::<usize>() {
        SortKey::Ordinal(ordinal.checked_sub(1)?)
    } else {
        // Strip any `table.` qualifier; the rowset carries bare names.
        let bare = head.rsplit('.').next().unwrap_or(head);
        if bare.is_empty() || !bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return None;
        }
        SortKey::Column(bare.to_ascii_lowercase())
    };
    Some(MergeKey { key, descending })
}

/// Byte offset just past the last `ORDER BY` keyword pair in `lower`
/// (which must be the lowercased statement).
fn find_order_by(lower: &str) -> Option<usize> {
    let mut at = None;
    let mut from = 0;
    while let Some(i) = lower[from..].find("order") {
        let start = from + i;
        let after = &lower[start + 5..];
        let trimmed = after.trim_start();
        if trimmed.starts_with("by")
            && is_boundary(lower.as_bytes(), start)
            && after.len() > trimmed.len() // whitespace between the keywords
            && trimmed[2..].starts_with(|c: char| c.is_whitespace())
        {
            let by_at = start + 5 + (after.len() - trimmed.len()) + 2;
            at = Some(by_at);
        }
        from = start + 5;
    }
    at
}

fn is_boundary(bytes: &[u8], at: usize) -> bool {
    at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_')
}

const NULL: Value = Value::Null;

/// Merge `cursors` (one sorted rowset page per shard) into `w` as a
/// single WebRowSet document, skipping `skip` merged rows and emitting
/// at most `take`. Returns the number of rows written.
///
/// With an `order` key the merge is a k-way minimum scan (ties broken
/// towards the lowest shard index); without one, pages concatenate in
/// shard order. Either way every row streams cursor → writer through
/// one reused buffer per shard.
pub fn merge_cursors<S: XmlSink>(
    w: &mut XmlWriter<'_, S>,
    mut cursors: Vec<RowsetCursor<'_>>,
    order: Option<&MergeKey>,
    skip: usize,
    take: usize,
) -> Result<u64, SqlError> {
    let mut writer = RowsetWriter::new();
    let columns: Vec<RowsetColumn> = match cursors.first() {
        Some(c) => c.columns().to_vec(),
        None => Vec::new(),
    };
    writer.begin(w, &columns);
    let key_index = order.and_then(|o| o.index_in(&columns));
    let descending = order.map(|o| o.descending).unwrap_or(false);

    // One reusable row buffer per shard; `alive[i]` says buffer i holds
    // the shard's next undelivered row.
    let mut rows: Vec<Vec<Value>> = cursors.iter().map(|_| Vec::new()).collect();
    let mut alive: Vec<bool> = Vec::with_capacity(cursors.len());
    for (c, buf) in cursors.iter_mut().zip(rows.iter_mut()) {
        alive.push(c.next_row_into(buf)?);
    }

    let mut seen = 0usize;
    let mut written = 0u64;
    while written < take as u64 {
        let next = match key_index {
            Some(k) => {
                let mut best: Option<usize> = None;
                for i in 0..cursors.len() {
                    if !alive[i] {
                        continue;
                    }
                    let cell = rows[i].get(k).unwrap_or(&NULL);
                    let better = match best {
                        None => true,
                        Some(b) => {
                            let ord = compare_values(cell, rows[b].get(k).unwrap_or(&NULL));
                            if descending {
                                ord == Ordering::Greater
                            } else {
                                ord == Ordering::Less
                            }
                        }
                    };
                    if better {
                        best = Some(i);
                    }
                }
                best
            }
            None => (0..cursors.len()).find(|&i| alive[i]),
        };
        let Some(i) = next else { break };
        if seen >= skip {
            writer.row(w, rows[i].iter());
            written += 1;
        }
        seen += 1;
        alive[i] = cursors[i].next_row_into(&mut rows[i])?;
    }
    writer.finish(w);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_sql::{Rowset, SqlType};
    use dais_xml::PullParser;

    #[test]
    fn merge_key_parses_names_ordinals_and_direction() {
        let k = merge_key_of("SELECT id, v FROM t ORDER BY id").unwrap();
        assert_eq!(k, MergeKey { key: SortKey::Column("id".into()), descending: false });
        let k = merge_key_of("select * from t order by t.V desc limit 3").unwrap();
        assert_eq!(k, MergeKey { key: SortKey::Column("v".into()), descending: true });
        let k = merge_key_of("select a, b from t order by 2 DESC, 1").unwrap();
        assert_eq!(k, MergeKey { key: SortKey::Ordinal(1), descending: true });
        assert_eq!(merge_key_of("select * from t where a = 1"), None);
        assert_eq!(merge_key_of("select reorder from t"), None);
    }

    fn page(rows: &[(i64, &str)]) -> String {
        let columns = vec![
            RowsetColumn { name: "id".into(), ty: SqlType::Integer },
            RowsetColumn { name: "v".into(), ty: SqlType::Varchar },
        ];
        let mut out = String::new();
        let mut w = XmlWriter::new(&mut out);
        let mut rw = RowsetWriter::new();
        rw.begin(&mut w, &columns);
        for (id, v) in rows {
            let cells = [Value::Int(*id), Value::Str((*v).into())];
            rw.row(&mut w, cells.iter());
        }
        rw.finish(&mut w);
        w.finish();
        out
    }

    fn merged(pages: &[String], order: Option<&MergeKey>, skip: usize, take: usize) -> Rowset {
        let mut parsers: Vec<PullParser<'_>> =
            pages.iter().map(|p| PullParser::new(p).unwrap()).collect();
        let cursors: Vec<RowsetCursor<'_>> =
            parsers.drain(..).map(|p| RowsetCursor::new(p).unwrap()).collect();
        let mut out = String::new();
        let mut w = XmlWriter::new(&mut out);
        merge_cursors(&mut w, cursors, order, skip, take).unwrap();
        w.finish();
        let mut p = PullParser::new(&out).unwrap();
        Rowset::read_from_pull(&mut p).unwrap()
    }

    fn ids(r: &Rowset) -> Vec<i64> {
        r.rows
            .iter()
            .map(|row| match &row[0] {
                Value::Int(i) => *i,
                other => panic!("non-int id {other:?}"),
            })
            .collect()
    }

    #[test]
    fn k_way_merge_interleaves_sorted_pages() {
        let pages = [page(&[(1, "a"), (4, "d"), (9, "i")]), page(&[(2, "b"), (3, "c")]), page(&[])];
        let key = MergeKey { key: SortKey::Column("id".into()), descending: false };
        let r = merged(&pages, Some(&key), 0, usize::MAX);
        assert_eq!(ids(&r), vec![1, 2, 3, 4, 9]);
        assert_eq!(r.columns.len(), 2);
    }

    #[test]
    fn descending_merge_and_window() {
        let pages = [page(&[(9, "i"), (4, "d")]), page(&[(7, "g"), (2, "b")])];
        let key = MergeKey { key: SortKey::Column("id".into()), descending: true };
        assert_eq!(ids(&merged(&pages, Some(&key), 0, usize::MAX)), vec![9, 7, 4, 2]);
        assert_eq!(ids(&merged(&pages, Some(&key), 1, 2)), vec![7, 4]);
    }

    #[test]
    fn no_key_concatenates_in_shard_order() {
        let pages = [page(&[(5, "e")]), page(&[(1, "a"), (3, "c")])];
        assert_eq!(ids(&merged(&pages, None, 0, usize::MAX)), vec![5, 1, 3]);
    }

    #[test]
    fn equal_keys_break_ties_towards_the_lowest_shard() {
        let pages = [page(&[(1, "from-s0")]), page(&[(1, "from-s1")])];
        let key = MergeKey { key: SortKey::Column("id".into()), descending: false };
        let r = merged(&pages, Some(&key), 0, usize::MAX);
        assert_eq!(r.rows[0][1], Value::Str("from-s0".into()));
        assert_eq!(r.rows[1][1], Value::Str("from-s1".into()));
    }

    #[test]
    fn value_order_ranks_types_then_compares_within() {
        use Ordering::*;
        assert_eq!(compare_values(&Value::Null, &Value::Bool(false)), Less);
        assert_eq!(compare_values(&Value::Bool(true), &Value::Int(0)), Less);
        assert_eq!(compare_values(&Value::Int(2), &Value::Double(1.5)), Greater);
        assert_eq!(compare_values(&Value::Double(2.0), &Value::Str("a".into())), Less);
        assert_eq!(compare_values(&Value::Str("a".into()), &Value::Str("b".into())), Less);
    }
}
