//! Shard routing and replica health for a federated data resource.
//!
//! A [`ShardRouter`] maps one *logical* resource to N backing resources,
//! each held by a replica set. Routing is deterministic (hash or range on
//! a key column for WS-DAIR, collection/document name for WS-DAIX);
//! replica choice is not: the router rotates healthy replicas with a
//! seeded counter and applies half-open probing to replicas it has
//! marked unhealthy, so a recovered shard service re-enters rotation
//! without operator action.

use dais_core::ResourceRef;
use dais_sql::Value;
use dais_util::rng::mix2;
use dais_util::sync::Mutex;

/// How a key value is assigned to a shard.
#[derive(Debug, Clone)]
pub enum ShardScheme {
    /// Hash the key column's canonical text rendering.
    Hash { column: String },
    /// Range-partition an integer key column: `bounds` holds the ascending
    /// upper bounds (exclusive) of every shard but the last, so
    /// `bounds.len() + 1` shards cover the whole line.
    Range { column: String, bounds: Vec<i64> },
    /// Hash the collection/document name (WS-DAIX).
    Collection,
}

impl ShardScheme {
    /// The key column a WS-DAIR statement is partitioned on, if any.
    pub fn key_column(&self) -> Option<&str> {
        match self {
            ShardScheme::Hash { column } | ShardScheme::Range { column, .. } => Some(column),
            ShardScheme::Collection => None,
        }
    }

    /// Deterministically assign `key` to one of `shards` shards.
    pub fn shard_of(&self, shards: usize, key: &Value) -> usize {
        debug_assert!(shards > 0);
        match self {
            ShardScheme::Range { bounds, .. } => {
                if let Some(i) = key_as_int(key) {
                    bounds.partition_point(|b| *b <= i).min(shards - 1)
                } else {
                    hash_shard(shards, key)
                }
            }
            ShardScheme::Hash { .. } | ShardScheme::Collection => hash_shard(shards, key),
        }
    }
}

fn key_as_int(key: &Value) -> Option<i64> {
    match key {
        Value::Int(i) => Some(*i),
        Value::Double(d) => Some(*d as i64),
        _ => None,
    }
}

fn hash_shard(shards: usize, key: &Value) -> usize {
    let mut text = String::new();
    key.write_display_into(&mut text);
    let mut h = 0xDA15_u64;
    for b in text.bytes() {
        h = mix2(h, u64::from(b));
    }
    (h % shards as u64) as usize
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Healthy,
    /// Marked down; `skips` counts candidate sweeps since the mark. Once it
    /// reaches the router's `probe_after` threshold the replica is offered
    /// again as a trailing half-open probe.
    Unhealthy {
        skips: u32,
    },
}

struct RouterState {
    health: Vec<Vec<Health>>,
    rotation: u64,
}

/// Maps a logical [`ResourceRef`] onto its backing shard/replica grid and
/// tracks per-replica health.
///
/// All locking is internal and every method returns owned data, so callers
/// never hold the router's lock across a bus call.
pub struct ShardRouter {
    resource: ResourceRef,
    scheme: ShardScheme,
    replicas: Vec<Vec<ResourceRef>>,
    probe_after: u32,
    seed: u64,
    state: Mutex<RouterState>,
}

impl ShardRouter {
    /// `replicas[s][r]` addresses replica `r` of shard `s`. Every shard
    /// must have at least one replica.
    pub fn new(
        resource: ResourceRef,
        scheme: ShardScheme,
        replicas: Vec<Vec<ResourceRef>>,
        seed: u64,
        probe_after: u32,
    ) -> ShardRouter {
        assert!(!replicas.is_empty(), "a federation needs at least one shard");
        assert!(
            replicas.iter().all(|set| !set.is_empty()),
            "every shard needs at least one replica"
        );
        let health = replicas.iter().map(|set| vec![Health::Healthy; set.len()]).collect();
        ShardRouter {
            resource,
            scheme,
            replicas,
            probe_after: probe_after.max(1),
            seed,
            state: Mutex::new(RouterState { health, rotation: 0 }),
        }
    }

    /// The logical resource this router federates.
    pub fn resource(&self) -> &ResourceRef {
        &self.resource
    }

    pub fn scheme(&self) -> &ShardScheme {
        &self.scheme
    }

    pub fn shards(&self) -> usize {
        self.replicas.len()
    }

    pub fn replica_count(&self, shard: usize) -> usize {
        self.replicas[shard].len()
    }

    /// The backing resource behind `(shard, replica)`.
    pub fn replica(&self, shard: usize, replica: usize) -> &ResourceRef {
        &self.replicas[shard][replica]
    }

    /// Route a key value to its owning shard.
    pub fn route(&self, key: &Value) -> usize {
        self.scheme.shard_of(self.shards(), key)
    }

    /// Replica indices for `shard` in preferred order: any unhealthy
    /// replica whose skip budget has elapsed *leads* as a half-open
    /// probe (it only recovers by taking a request, and a still-bad
    /// probe fails over to the next candidate with no sleep), followed
    /// by the healthy replicas rotated by a seeded counter so load
    /// spreads. If every replica is down, all are offered — the
    /// caller's failure is then an honest `ServiceBusy`.
    pub fn candidates(&self, shard: usize) -> Vec<usize> {
        let mut state = self.state.lock();
        let turn = state.rotation;
        state.rotation = state.rotation.wrapping_add(1);
        let health = &mut state.health[shard];
        let n = health.len();

        let mut healthy: Vec<usize> = Vec::with_capacity(n);
        let mut probes: Vec<usize> = Vec::new();
        for (i, h) in health.iter_mut().enumerate() {
            match h {
                Health::Healthy => healthy.push(i),
                Health::Unhealthy { skips } => {
                    *skips += 1;
                    if *skips >= self.probe_after {
                        *skips = 0;
                        probes.push(i);
                    }
                }
            }
        }
        if healthy.is_empty() && probes.is_empty() {
            return (0..n).collect();
        }
        if !healthy.is_empty() {
            let rot = (mix2(self.seed, turn) % healthy.len() as u64) as usize;
            healthy.rotate_left(rot);
        }
        probes.extend(healthy);
        probes
    }

    /// Record a successful call: the replica re-enters healthy rotation.
    pub fn mark_success(&self, shard: usize, replica: usize) {
        self.state.lock().health[shard][replica] = Health::Healthy;
    }

    /// Record a failed call: the replica leaves rotation until its
    /// half-open probe budget elapses.
    pub fn mark_failure(&self, shard: usize, replica: usize) {
        self.state.lock().health[shard][replica] = Health::Unhealthy { skips: 0 };
    }

    /// Whether `(shard, replica)` is currently in healthy rotation.
    pub fn is_healthy(&self, shard: usize, replica: usize) -> bool {
        self.state.lock().health[shard][replica] == Health::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(shards: usize, replicas: usize) -> Vec<Vec<ResourceRef>> {
        (0..shards)
            .map(|s| {
                (0..replicas)
                    .map(|r| {
                        ResourceRef::parse(&format!(
                            "dais://fleet/shard/{s}/r{r}/urn:dais:shard{s}-r{r}:db:0"
                        ))
                        .unwrap()
                    })
                    .collect()
            })
            .collect()
    }

    fn router(shards: usize, replicas: usize) -> ShardRouter {
        ShardRouter::new(
            ResourceRef::parse("dais://fed/urn:dais:fed:db:0").unwrap(),
            ShardScheme::Hash { column: "id".into() },
            refs(shards, replicas),
            7,
            3,
        )
    }

    #[test]
    fn hash_routing_is_deterministic_and_spreads() {
        let r = router(4, 1);
        let mut seen = [false; 4];
        for i in 0..64 {
            let s = r.route(&Value::Int(i));
            assert_eq!(s, r.route(&Value::Int(i)));
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 keys should reach all 4 shards");
    }

    #[test]
    fn range_routing_respects_bounds() {
        let scheme = ShardScheme::Range { column: "id".into(), bounds: vec![10, 20, 30] };
        assert_eq!(scheme.shard_of(4, &Value::Int(-5)), 0);
        assert_eq!(scheme.shard_of(4, &Value::Int(9)), 0);
        assert_eq!(scheme.shard_of(4, &Value::Int(10)), 1);
        assert_eq!(scheme.shard_of(4, &Value::Int(29)), 2);
        assert_eq!(scheme.shard_of(4, &Value::Int(1_000)), 3);
    }

    #[test]
    fn failed_replica_leaves_rotation_until_probe_budget_elapses() {
        let r = router(1, 2);
        r.mark_failure(0, 1);
        // probe_after = 3: two sweeps without the failed replica …
        assert_eq!(r.candidates(0), vec![0]);
        assert_eq!(r.candidates(0), vec![0]);
        // … then it leads the sweep as a half-open probe.
        let c = r.candidates(0);
        assert_eq!(c.first(), Some(&1));
        assert!(c.contains(&0));
        // Probe succeeded: full rotation again.
        r.mark_success(0, 1);
        assert!(r.is_healthy(0, 1));
        assert_eq!(r.candidates(0).len(), 2);
    }

    #[test]
    fn all_replicas_down_still_offers_every_candidate() {
        let r = router(1, 3);
        for i in 0..3 {
            r.mark_failure(0, i);
        }
        let mut c = r.candidates(0);
        c.sort_unstable();
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn healthy_rotation_varies_with_seed() {
        let r = router(1, 4);
        let firsts: std::collections::BTreeSet<usize> =
            (0..16).map(|_| r.candidates(0)[0]).collect();
        assert!(firsts.len() > 1, "seeded rotation should not pin one replica");
    }
}
