//! Fleet topology builders: launch a shard × replica grid of ordinary
//! WS-DAI services plus the federation endpoint over them, in one call.
//!
//! Used by the conformance suite and the benchmarks; production
//! deployments wire [`FederationService`] onto existing services
//! directly. Ingest goes through the fleet — rows and documents route to
//! their owning shard and write to *every* replica of it — because the
//! logical resource itself refuses writes.

use std::sync::Arc;

use dais_core::ResourceRef;
use dais_dair::messages::{self as dair_messages, actions as dair_actions};
use dais_dair::{RelationalService, RelationalServiceOptions};
use dais_daix::messages::{self as daix_messages, actions as daix_actions};
use dais_daix::{XmlService, XmlServiceOptions};
use dais_soap::bus::Bus;
use dais_soap::{CallError, ServiceClient};
use dais_sql::{Database, Value};
use dais_xml::{ns, XmlElement};
use dais_xmldb::XmlDatabase;

use crate::router::{ShardRouter, ShardScheme};
use crate::scatter::FailoverPolicy;
use crate::service::{FederationOptions, FederationService};

/// Shape and tuning of a fleet.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    pub shards: usize,
    /// Replicas per shard.
    pub replicas: usize,
    /// Seed for the router's replica rotation.
    pub seed: u64,
    /// Candidate sweeps a failed replica sits out before its half-open
    /// probe.
    pub probe_after: u32,
    /// Retry schedule and sleeper for shard calls.
    pub failover: FailoverPolicy,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            shards: 4,
            replicas: 2,
            seed: 0xF1EE7,
            probe_after: 4,
            failover: FailoverPolicy::default(),
        }
    }
}

impl FleetOptions {
    fn federation(&self) -> FederationOptions {
        FederationOptions {
            seed: self.seed,
            probe_after: self.probe_after,
            failover: self.failover.clone(),
        }
    }
}

/// The bus address of replica `replica` of shard `shard` under
/// `authority`. This is the only place the `/shard/` path convention is
/// spelled out — everything else resolves endpoints through the router,
/// and the `federation-bypass` lint holds the rest of the workspace to
/// that.
pub fn shard_address(authority: &str, shard: usize, replica: usize) -> String {
    format!("bus://{authority}/shard/{shard}/r{replica}")
}

/// A relational shard × replica grid with its federation endpoint.
pub struct RelationalFleet {
    pub bus: Bus,
    pub federation: FederationService,
    pub router: Arc<ShardRouter>,
    /// `services[s][r]` is the plain WS-DAIR service backing replica `r`
    /// of shard `s`.
    pub services: Vec<Vec<RelationalService>>,
}

impl RelationalFleet {
    /// Launch `shards × replicas` relational services (each applying
    /// `schema`) and the federation endpoint at `bus://<authority>`.
    pub fn launch(
        bus: &Bus,
        authority: &str,
        schema: &str,
        scheme: ShardScheme,
        options: FleetOptions,
    ) -> RelationalFleet {
        let mut services = Vec::with_capacity(options.shards);
        let mut replicas = Vec::with_capacity(options.shards);
        for s in 0..options.shards {
            let mut row = Vec::with_capacity(options.replicas);
            let mut refs = Vec::with_capacity(options.replicas);
            for r in 0..options.replicas {
                let address = shard_address(authority, s, r);
                let db = Database::new(format!("shard{s}"));
                db.execute_script(schema).expect("fleet schema script must apply");
                let svc = RelationalService::launch(
                    bus,
                    &address,
                    db,
                    RelationalServiceOptions::default(),
                );
                refs.push(
                    ResourceRef::from_parts(&address, &svc.db_resource)
                        .expect("shard address must form a resource ref"),
                );
                row.push(svc);
            }
            services.push(row);
            replicas.push(refs);
        }
        let federation = FederationService::launch_relational(
            bus,
            &format!("bus://{authority}"),
            scheme,
            replicas,
            options.federation(),
        );
        let router = federation.router.clone();
        RelationalFleet { bus: bus.clone(), federation, router, services }
    }

    /// The logical resource consumers address.
    pub fn resource(&self) -> &ResourceRef {
        &self.federation.resource
    }

    /// Route a row to its owning shard (by `key`) and execute the write
    /// statement against every replica of it.
    pub fn ingest(&self, key: &Value, sql: &str, params: &[Value]) -> Result<(), CallError> {
        let shard = self.router.route(key);
        for r in 0..self.router.replica_count(shard) {
            let replica = self.router.replica(shard, r);
            let client = ServiceClient::new(self.bus.clone(), replica.endpoint_address());
            let req =
                dair_messages::sql_execute_request(replica.resource(), ns::ROWSET, sql, params);
            client.request(dair_actions::SQL_EXECUTE, req)?;
        }
        Ok(())
    }
}

/// An XML shard × replica grid with its federation endpoint. Documents
/// route by name hash.
pub struct XmlFleet {
    pub bus: Bus,
    pub federation: FederationService,
    pub router: Arc<ShardRouter>,
    /// `services[s][r]` is the plain WS-DAIX service backing replica `r`
    /// of shard `s`.
    pub services: Vec<Vec<XmlService>>,
}

impl XmlFleet {
    /// Launch `shards × replicas` XML services and the federation
    /// endpoint at `bus://<authority>`.
    pub fn launch(bus: &Bus, authority: &str, options: FleetOptions) -> XmlFleet {
        let mut services = Vec::with_capacity(options.shards);
        let mut replicas = Vec::with_capacity(options.shards);
        for s in 0..options.shards {
            let mut row = Vec::with_capacity(options.replicas);
            let mut refs = Vec::with_capacity(options.replicas);
            for r in 0..options.replicas {
                let address = shard_address(authority, s, r);
                let db = XmlDatabase::new(format!("shard{s}"));
                let svc = XmlService::launch(bus, &address, db, XmlServiceOptions::default());
                refs.push(
                    ResourceRef::from_parts(&address, &svc.root_collection)
                        .expect("shard address must form a resource ref"),
                );
                row.push(svc);
            }
            services.push(row);
            replicas.push(refs);
        }
        let federation = FederationService::launch_xml(
            bus,
            &format!("bus://{authority}"),
            replicas,
            options.federation(),
        );
        let router = federation.router.clone();
        XmlFleet { bus: bus.clone(), federation, router, services }
    }

    /// The logical resource consumers address.
    pub fn resource(&self) -> &ResourceRef {
        &self.federation.resource
    }

    /// Route a document to its owning shard (by name hash) and add it to
    /// every replica's root collection. Returns the add status reported
    /// by the shards (`"Success"`, or e.g. `"DocumentExists"`).
    pub fn ingest(&self, name: &str, document: &XmlElement) -> Result<String, CallError> {
        let shard = self.router.route(&Value::Str(name.to_string()));
        let mut status = String::from("Success");
        for r in 0..self.router.replica_count(shard) {
            let replica = self.router.replica(shard, r);
            let client = ServiceClient::new(self.bus.clone(), replica.endpoint_address());
            let req = daix_messages::add_documents_request(
                replica.resource(),
                &[(name.to_string(), document.clone())],
            );
            let reply = client.request(daix_actions::ADD_DOCUMENTS, req)?;
            let outcome = reply
                .children_named(ns::WSDAIX, "Result")
                .next()
                .and_then(|el| el.attribute("status"))
                .map(str::to_string);
            if let Some(s) = outcome {
                if s != "Success" {
                    status = s;
                }
            }
        }
        Ok(status)
    }
}
