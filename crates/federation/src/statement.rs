//! Admission analysis for scattered SQL statements.
//!
//! A scatter-gather answer is only correct for statements whose global
//! result is the merge of per-shard results. Forwarding anything else
//! verbatim silently lies — `COUNT(*)` would return one row per shard,
//! `DISTINCT`/`GROUP BY` would leave cross-shard duplicates, `LIMIT n`
//! would return up to `n × shards` rows — so the federation endpoint
//! parses every statement with the engine's own parser and either
//! proves it distributable, rewrites it (`LIMIT`/`OFFSET` strip off the
//! shard statement and apply globally at the merge), or refuses it with
//! an `InvalidExpressionFault`.

use dais_sql::ast::{Expr, OrderItem, Select, SelectItem, Stmt};
use dais_sql::parser::parse_statement;
use dais_sql::Value;

use crate::merge::{MergeKey, SortKey};

/// Why a statement was refused admission to the scatter path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// Not a query at all (or unparseable): writes and DDL go through
    /// the fleet's router, not the logical resource.
    NotReadOnly,
    /// A query whose shape a scatter + merge cannot answer correctly;
    /// the payload names the offending construct.
    NonDistributable(&'static str),
}

/// A statement admitted to the scatter path: what each shard runs, and
/// the global window/ordering the gather applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributedStatement {
    /// The statement scattered to the shards: the consumer's SQL with
    /// any trailing `LIMIT`/`OFFSET` stripped (each shard must over-
    /// fetch the whole global window; see [`shard_statement`]).
    ///
    /// [`shard_statement`]: DistributedStatement::shard_statement
    pub shard_sql: String,
    /// Merged rows to skip before the first delivered row (the
    /// statement's `OFFSET`).
    pub offset: usize,
    /// Global cap on delivered rows (the statement's `LIMIT`).
    pub limit: Option<usize>,
    /// The full `ORDER BY` key list the k-way merge compares on.
    pub keys: Vec<MergeKey>,
}

impl DistributedStatement {
    /// The SQL one shard executes. When the statement carries a window,
    /// each shard is bounded to `offset + limit` rows — in the worst
    /// case one shard owns the whole global window, never more — so a
    /// windowed query can never pull a shard's full table through the
    /// gather.
    pub fn shard_statement(&self) -> String {
        match self.limit {
            Some(limit) => {
                format!("{} LIMIT {}", self.shard_sql, self.offset.saturating_add(limit))
            }
            None => self.shard_sql.clone(),
        }
    }

    /// The merge window: rows to skip, then rows to take.
    pub fn window(&self) -> (usize, usize) {
        (self.offset, self.limit.unwrap_or(usize::MAX))
    }
}

/// Admit `sql` to the scatter path, or refuse it.
///
/// Distributable today: single-`SELECT` statements without aggregates,
/// `DISTINCT`, `GROUP BY`/`HAVING` or `UNION`, whose `ORDER BY` terms
/// are plain output columns or ordinals (so the gather can re-establish
/// the global order). `LIMIT`/`OFFSET` are handled by rewrite: stripped
/// from the shard statement and applied once, globally, at the merge.
pub fn analyze(sql: &str) -> Result<DistributedStatement, AdmissionError> {
    let select = match parse_statement(sql) {
        Ok(Stmt::Select(select)) => select,
        _ => return Err(AdmissionError::NotReadOnly),
    };
    if select.distinct {
        return Err(AdmissionError::NonDistributable("DISTINCT"));
    }
    if !select.group_by.is_empty() {
        return Err(AdmissionError::NonDistributable("GROUP BY"));
    }
    if select.having.is_some() {
        return Err(AdmissionError::NonDistributable("HAVING"));
    }
    if !select.unions.is_empty() {
        return Err(AdmissionError::NonDistributable("UNION"));
    }
    let exprs = select.items.iter().filter_map(|item| match item {
        SelectItem::Expr { expr, .. } => Some(expr),
        SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => None,
    });
    if exprs.clone().any(Expr::contains_aggregate)
        || select.order_by.iter().any(|o| o.expr.contains_aggregate())
    {
        return Err(AdmissionError::NonDistributable("aggregate function"));
    }

    let keys = merge_keys(&select)?;
    let (shard_sql, offset, limit) = strip_window(sql, &select)?;
    Ok(DistributedStatement { shard_sql, offset, limit, keys })
}

/// Every `ORDER BY` term as a [`MergeKey`]. A term that is neither a
/// plain column nor an integer ordinal cannot be located in the output
/// rowset, so the gather could not re-establish the order a single
/// service would return — refuse it.
fn merge_keys(select: &Select) -> Result<Vec<MergeKey>, AdmissionError> {
    let mut keys = Vec::with_capacity(select.order_by.len());
    for OrderItem { expr, ascending } in &select.order_by {
        let key = match expr {
            // The rowset carries bare (alias-resolved) column names.
            Expr::Column { name, .. } => SortKey::Column(name.to_ascii_lowercase()),
            Expr::Literal(Value::Int(ordinal)) => {
                match usize::try_from(*ordinal).ok().and_then(|o| o.checked_sub(1)) {
                    Some(zero_based) => SortKey::Ordinal(zero_based),
                    None => return Err(AdmissionError::NonDistributable("ORDER BY ordinal")),
                }
            }
            _ => return Err(AdmissionError::NonDistributable("ORDER BY expression")),
        };
        keys.push(MergeKey { key, descending: !ascending });
    }
    Ok(keys)
}

/// Split the statement's trailing window off: the shard statement keeps
/// the `ORDER BY` (shard streams must arrive sorted) but loses
/// `LIMIT`/`OFFSET`, which the merge applies globally. The strip is
/// verified by re-parsing: the stripped text must yield exactly the
/// original AST minus the window, else the statement is refused.
fn strip_window(
    sql: &str,
    select: &Select,
) -> Result<(String, usize, Option<usize>), AdmissionError> {
    let offset = select.offset.unwrap_or(0) as usize;
    let limit = select.limit.map(|l| l as usize);
    if select.limit.is_none() && select.offset.is_none() {
        return Ok((sql.trim_end_matches([';', ' ', '\t', '\r', '\n']).to_string(), 0, None));
    }
    // LIMIT/OFFSET are keywords, never identifiers, and the grammar
    // puts them only in the statement's tail — so the first keyword
    // occurrence outside string literals and comments starts the
    // window clause.
    let stripped = window_clause_start(sql)
        .map(|at| sql[..at].trim_end().to_string())
        .ok_or(AdmissionError::NonDistributable("LIMIT/OFFSET"))?;
    let mut expected = select.clone();
    expected.limit = None;
    expected.offset = None;
    match parse_statement(&stripped) {
        Ok(Stmt::Select(reparsed)) if reparsed == expected => Ok((stripped, offset, limit)),
        _ => Err(AdmissionError::NonDistributable("LIMIT/OFFSET")),
    }
}

/// Byte offset of the first top-level `LIMIT` or `OFFSET` keyword in
/// `sql`, skipping string literals (`'…'` with `''` escapes) and `--`
/// line comments.
fn window_clause_start(sql: &str) -> Option<usize> {
    let bytes = sql.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() {
        match bytes[pos] {
            b'\'' => {
                pos += 1;
                while pos < bytes.len() {
                    if bytes[pos] == b'\'' {
                        if bytes.get(pos + 1) == Some(&b'\'') {
                            pos += 2; // escaped quote inside the literal
                        } else {
                            pos += 1;
                            break;
                        }
                    } else {
                        pos += 1;
                    }
                }
            }
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let word = &sql[start..pos];
                if word.eq_ignore_ascii_case("limit") || word.eq_ignore_ascii_case("offset") {
                    return Some(start);
                }
            }
            _ => pos += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(sql: &str) -> Vec<MergeKey> {
        analyze(sql).unwrap().keys
    }

    #[test]
    fn plain_scans_pass_through_unchanged() {
        let d = analyze("SELECT k, v FROM t WHERE k >= ? ORDER BY k").unwrap();
        assert_eq!(d.shard_sql, "SELECT k, v FROM t WHERE k >= ? ORDER BY k");
        assert_eq!(d.shard_statement(), d.shard_sql);
        assert_eq!((d.offset, d.limit), (0, None));
    }

    #[test]
    fn every_order_by_term_becomes_a_key() {
        assert_eq!(
            keys("SELECT a, b FROM t ORDER BY a DESC, t.B, 2 DESC"),
            vec![
                MergeKey { key: SortKey::Column("a".into()), descending: true },
                MergeKey { key: SortKey::Column("b".into()), descending: false },
                MergeKey { key: SortKey::Ordinal(1), descending: true },
            ]
        );
        assert_eq!(keys("SELECT * FROM t"), Vec::new());
    }

    #[test]
    fn non_distributable_shapes_are_refused() {
        use AdmissionError::NonDistributable;
        let refused = |sql: &str, what| assert_eq!(analyze(sql), Err(NonDistributable(what)));
        refused("SELECT COUNT(*) FROM t", "aggregate function");
        refused("SELECT 1 + SUM(k) FROM t", "aggregate function");
        refused("SELECT DISTINCT v FROM t", "DISTINCT");
        refused("SELECT v FROM t GROUP BY v", "GROUP BY");
        refused("SELECT v FROM t UNION SELECT v FROM t", "UNION");
        refused("SELECT k FROM t ORDER BY k + 1", "ORDER BY expression");
        refused("SELECT k FROM t ORDER BY 0", "ORDER BY ordinal");
    }

    #[test]
    fn writes_and_nonsense_are_not_read_only() {
        assert_eq!(analyze("DELETE FROM t"), Err(AdmissionError::NotReadOnly));
        assert_eq!(analyze("CREATE TABLE x (a INTEGER)"), Err(AdmissionError::NotReadOnly));
        assert_eq!(analyze("not sql at all"), Err(AdmissionError::NotReadOnly));
    }

    #[test]
    fn window_strips_off_the_shard_statement_and_applies_globally() {
        let d = analyze("SELECT k FROM t ORDER BY k LIMIT 7 OFFSET 5").unwrap();
        assert_eq!(d.shard_sql, "SELECT k FROM t ORDER BY k");
        // Each shard over-fetches the whole window, never more.
        assert_eq!(d.shard_statement(), "SELECT k FROM t ORDER BY k LIMIT 12");
        assert_eq!(d.window(), (5, 7));

        let d = analyze("SELECT k FROM t OFFSET 3").unwrap();
        assert_eq!((d.shard_statement(), d.window()), ("SELECT k FROM t".into(), (3, usize::MAX)));
    }

    #[test]
    fn window_strip_ignores_string_literals_and_comments() {
        let d = analyze("SELECT v FROM t WHERE v = 'limit ''10''' LIMIT 2").unwrap();
        assert_eq!(d.shard_sql, "SELECT v FROM t WHERE v = 'limit ''10'''");
        assert_eq!(d.limit, Some(2));
        let d = analyze("SELECT v FROM t -- limit note\n LIMIT 4").unwrap();
        assert_eq!(d.limit, Some(4));
    }
}
