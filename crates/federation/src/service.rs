//! The federation endpoint: a WS-DAI service in its own right.
//!
//! `FederationService` advertises one *logical* data resource and
//! dispatches the standard WS-DAIR/WS-DAIX action URIs, scattering each
//! operation over the shard grid and gathering the results — a consumer
//! cannot tell a federated resource from a plain one. Query results are
//! gathered with the streaming k-way merge ([`crate::merge`]): shard
//! pages decode off the wire bytes through [`RowsetCursor`]s and rows
//! re-encode straight into the outgoing raw body, so no full rowset is
//! ever materialised on the merge path.
//!
//! [`RowsetCursor`]: dais_sql::RowsetCursor

use std::any::Any;
use std::sync::Arc;

use dais_core::factory::{factory_response, mint_resource_epr, DerivedResourceConfig};
use dais_core::monitoring::MON_NS;
use dais_core::properties::ResourceManagementKind;
use dais_core::{
    register_core_ops, AbstractName, ConfigurationDocument, ConfigurationMap, CoreProperties,
    DataResource, DatasetMap, NameGenerator, ResourceRef, ResourceRegistry, Sensitivity,
    ServiceContext,
};
use dais_dair::messages::{self as dair_messages, actions as dair_actions};
use dais_daix::messages::{self as daix_messages, actions as daix_actions};
use dais_soap::bus::Bus;
use dais_soap::envelope::Envelope;
use dais_soap::fault::{DaisFault, Fault};
use dais_soap::service::SoapDispatcher;
use dais_soap::CallError;
use dais_sql::SqlCommunicationArea;
use dais_xml::{ns, QName, XmlElement, XmlWriter};

use crate::merge::{merge_cursors, MergeKey};
use crate::router::{ShardRouter, ShardScheme};
use crate::scatter::{call_replica, call_shard, scatter_shards, FailoverPolicy};
use crate::statement::{analyze, AdmissionError};

/// Knobs for assembling a federation endpoint.
#[derive(Debug, Clone)]
pub struct FederationOptions {
    /// Seed for the router's replica rotation.
    pub seed: u64,
    /// Candidate sweeps a failed replica sits out before its half-open
    /// probe.
    pub probe_after: u32,
    /// Retry schedule and sleeper for shard calls.
    pub failover: FailoverPolicy,
}

impl Default for FederationOptions {
    fn default() -> FederationOptions {
        FederationOptions { seed: 0xF1EE7, probe_after: 4, failover: FailoverPolicy::default() }
    }
}

fn payload(request: &Envelope) -> Result<&XmlElement, Fault> {
    request.payload().ok_or_else(|| Fault::client("request has an empty SOAP body"))
}

fn respond(element: XmlElement) -> Result<Envelope, Fault> {
    Ok(Envelope::with_body(element))
}

/// Map a failed shard call onto the fault a plain service would raise:
/// application faults pass through unchanged (the consumer must not be
/// able to tell the topology from the error), everything else — timeouts,
/// lost connections, admission rejections after failover exhausted — is
/// an honest `ServiceBusyFault`.
fn shard_fault(e: CallError) -> Fault {
    match e {
        CallError::Fault(f) => f,
        other => Fault::dais(DaisFault::ServiceBusy, format!("shard call failed: {other}")),
    }
}

/// A shard page that cannot be decoded (or tears mid-merge) must never
/// surface as a torn rowset: the reply is a well-formed fault instead.
fn torn_page(detail: impl std::fmt::Display) -> Fault {
    Fault::dais(DaisFault::ServiceBusy, format!("shard result stream failed: {detail}"))
}

/// Map a statement refused by [`analyze`] onto the consumer-visible
/// fault. `writes` is the handler-specific fault for a non-query
/// statement; a query whose shape scatter-gather cannot answer
/// correctly (aggregates, `DISTINCT`, `GROUP BY`, `UNION`, …) is an
/// honest `InvalidExpressionFault` — never a silently wrong answer.
fn admission_fault(e: AdmissionError, writes: Fault) -> Fault {
    match e {
        AdmissionError::NotReadOnly => writes,
        AdmissionError::NonDistributable(what) => Fault::dais(
            DaisFault::InvalidExpression,
            format!(
                "a federated resource cannot answer {what} by scatter-gather; \
                 it would require cross-shard recombination"
            ),
        ),
    }
}

fn as_federated(resource: &Arc<dyn DataResource>) -> Result<&FederatedResource, Fault> {
    resource.as_any().downcast_ref::<FederatedResource>().ok_or_else(|| {
        Fault::dais(DaisFault::InvalidResourceName, "resource is not a federated data resource")
    })
}

fn as_fed_response(resource: &Arc<dyn DataResource>) -> Result<&FederatedResponseResource, Fault> {
    resource.as_any().downcast_ref::<FederatedResponseResource>().ok_or_else(|| {
        Fault::dais(DaisFault::InvalidResourceName, "resource is not an SQL response resource")
    })
}

fn as_fed_rowset(resource: &Arc<dyn DataResource>) -> Result<&FederatedRowsetResource, Fault> {
    resource.as_any().downcast_ref::<FederatedRowsetResource>().ok_or_else(|| {
        Fault::dais(DaisFault::InvalidResourceName, "resource is not a rowset resource")
    })
}

/// The logical resource the federation endpoint advertises. Immutable
/// after launch; the live fleet picture renders on demand from the bus's
/// per-endpoint stats and the router's health table.
pub struct FederatedResource {
    properties: CoreProperties,
    bus: Bus,
    router: Arc<ShardRouter>,
}

impl FederatedResource {
    /// The `mon:Fleet` extension property: one `mon:Member` per
    /// shard/replica with its routing health and endpoint traffic, so
    /// the SLO tooling that reads `mon:` documents sees the whole fleet
    /// behind the logical resource.
    fn fleet_element(&self) -> XmlElement {
        let mut fleet = XmlElement::new(MON_NS, "mon", "Fleet");
        fleet.set_attr("shards", self.router.shards().to_string());
        for s in 0..self.router.shards() {
            for r in 0..self.router.replica_count(s) {
                let member = self.router.replica(s, r);
                let address = member.endpoint_address();
                let stats = self.bus.endpoint_stats(&address);
                let mut el = XmlElement::new(MON_NS, "mon", "Member");
                el.set_attr("shard", s.to_string());
                el.set_attr("replica", r.to_string());
                el.set_attr("endpoint", address);
                el.set_attr("resource", member.resource().as_str());
                el.set_attr("healthy", self.router.is_healthy(s, r).to_string());
                el.set_attr("messages", stats.messages.to_string());
                el.set_attr("faults", stats.faults.to_string());
                el.set_attr("retries", stats.retries.to_string());
                el.set_attr("shed", stats.shed.to_string());
                el.set_attr("queueDepth", stats.queue_depth.to_string());
                fleet.push(el);
            }
        }
        fleet
    }
}

impl DataResource for FederatedResource {
    fn abstract_name(&self) -> &AbstractName {
        &self.properties.abstract_name
    }

    fn core_properties(&self) -> CoreProperties {
        self.properties.clone()
    }

    fn property_document(&self) -> XmlElement {
        let mut doc = self.properties.to_xml();
        doc.push(self.fleet_element());
        doc
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A derived SQL response resource whose state lives on the shards: each
/// replica that accepted the factory call holds its own derived response,
/// recorded here by abstract name so later page reads can address any of
/// them.
pub struct FederatedResponseResource {
    properties: CoreProperties,
    /// `per_shard[s][r]` is the abstract name of replica `r`'s derived
    /// response, `None` when that replica missed the fan-out.
    per_shard: Vec<Vec<Option<AbstractName>>>,
    /// The merge discipline inherited from the scattered statement: its
    /// full `ORDER BY` key list.
    keys: Vec<MergeKey>,
    /// The statement's own `OFFSET`/`LIMIT`, applied globally at the
    /// merge (the shard statements had them stripped).
    offset: usize,
    limit: Option<usize>,
}

impl DataResource for FederatedResponseResource {
    fn abstract_name(&self) -> &AbstractName {
        &self.properties.abstract_name
    }

    fn core_properties(&self) -> CoreProperties {
        self.properties.clone()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A derived rowset resource backed by one shard-local rowset per
/// replica; pages merge on read.
pub struct FederatedRowsetResource {
    properties: CoreProperties,
    per_shard: Vec<Vec<Option<AbstractName>>>,
    keys: Vec<MergeKey>,
    /// Merged rows hidden before the rowset's row 0 (the statement's
    /// `OFFSET`).
    skip: usize,
    /// Global row cap: the factory's `Count` and the statement's
    /// `LIMIT`, whichever is tighter.
    cap: Option<usize>,
}

impl DataResource for FederatedRowsetResource {
    fn abstract_name(&self) -> &AbstractName {
        &self.properties.abstract_name
    }

    fn core_properties(&self) -> CoreProperties {
        self.properties.clone()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Scatter one request per shard over the raw lane — concurrently, via
/// [`scatter_shards`], so one slow or backing-off shard does not stall
/// the gather of its siblings — and collect the reply pages in shard
/// order. Each shard call runs through [`call_shard`], so replica
/// failover and health marking apply per shard.
fn scatter_pages(
    bus: &Bus,
    router: &ShardRouter,
    policy: &FailoverPolicy,
    action: &'static str,
    request_for: impl Fn(usize, usize) -> Result<XmlElement, CallError> + Sync,
) -> Result<Vec<Vec<u8>>, Fault> {
    scatter_shards(router.shards(), |s| {
        call_shard(bus, router, s, policy, |client, r| {
            let req = request_for(s, r)?;
            let mut buf = Vec::new();
            client.request_bytes_into(action, &req, &mut buf)?;
            Ok(buf)
        })
    })
    .into_iter()
    .map(|page| page.map_err(shard_fault))
    .collect()
}

/// Merge gathered pages into `wrapper(SQLResponse(SQLRowset(webRowSet),
/// SQLCommunicationArea))` raw-body form, byte-compatible with the plain
/// service's streamed replies. `comm_area` sees the merged row count.
fn merged_response(
    wrapper: &str,
    pages: &[Vec<u8>],
    keys: &[MergeKey],
    skip: usize,
    take: usize,
    comm_area: impl Fn(u64) -> SqlCommunicationArea,
) -> Result<Envelope, Fault> {
    let mut cursors = Vec::with_capacity(pages.len());
    for page in pages {
        cursors.push(dair_messages::rowset_cursor_from_reply_bytes(page).map_err(torn_page)?);
    }
    let mut fragment = String::new();
    let mut w = XmlWriter::new(&mut fragment);
    w.start(&QName::new(ns::WSDAIR, "wsdair", wrapper));
    w.start(&QName::new(ns::WSDAIR, "wsdair", "SQLResponse"));
    w.start(&QName::new(ns::WSDAIR, "wsdair", "SQLRowset"));
    // A decode error here (a shard died mid-stream) abandons the whole
    // fragment: the consumer gets a fault envelope, never a torn rowset.
    let rows = merge_cursors(&mut w, cursors, keys, skip, take).map_err(torn_page)?;
    w.end();
    w.element(&comm_area(rows).to_xml());
    w.end();
    w.end();
    w.finish();
    Ok(Envelope::with_raw_body(fragment))
}

/// Fan a factory request out to *every* replica of every shard (each
/// replica must hold its own derived resource), recording the derived
/// abstract name per replica. Shards run concurrently; within a shard
/// each replica is called through [`call_replica`], so a transient
/// timeout is retried on the failover policy's schedule instead of
/// permanently costing the derived resource that replica's redundancy.
/// A shard where no replica succeeded fails the whole factory with that
/// shard's last error.
fn fan_out_factory(
    bus: &Bus,
    router: &ShardRouter,
    policy: &FailoverPolicy,
    action: &'static str,
    request_for: impl Fn(usize, usize) -> XmlElement + Sync,
) -> Result<Vec<Vec<Option<AbstractName>>>, Fault> {
    scatter_shards(router.shards(), |s| {
        let mut names: Vec<Option<AbstractName>> = Vec::with_capacity(router.replica_count(s));
        let mut last_err: Option<CallError> = None;
        for r in 0..router.replica_count(s) {
            let address = router.replica(s, r).endpoint_address();
            let minted = call_replica(bus, &address, policy, |client| {
                let reply = client.request(action, request_for(s, r))?;
                let epr =
                    dais_core::factory::parse_factory_response(&reply).map_err(CallError::Fault)?;
                epr.resource_abstract_name()
                    .and_then(|text| AbstractName::new(text).ok())
                    .ok_or_else(|| {
                        CallError::Fault(Fault::client(
                            "factory EPR carries no resource abstract name",
                        ))
                    })
            });
            match minted {
                Ok(name) => {
                    router.mark_success(s, r);
                    names.push(Some(name));
                }
                Err(e) => {
                    router.mark_failure(s, r);
                    last_err = Some(e);
                    names.push(None);
                }
            }
        }
        if names.iter().all(Option::is_none) {
            return Err(match last_err {
                Some(e) => shard_fault(e),
                None => Fault::dais(DaisFault::ServiceBusy, format!("shard {s} has no replicas")),
            });
        }
        Ok(names)
    })
    .into_iter()
    .collect()
}

/// The properties the logical relational resource advertises — the same
/// maps a plain [`SqlDataResource`] publishes, so factory negotiation is
/// indistinguishable. Writes are refused: ingest goes through the fleet's
/// router, not the federation endpoint.
fn federated_sql_properties(name: AbstractName, shards: usize) -> CoreProperties {
    let mut props = CoreProperties::new(name, ResourceManagementKind::ExternallyManaged);
    props.description = format!("federated relational resource over {shards} shard(s)");
    props.generic_query_languages.push(dais_dair::resources::SQL_LANGUAGE_URI.to_string());
    props.dataset_maps.push(DatasetMap {
        message: QName::new(ns::WSDAIR, "wsdair", "SQLExecuteRequest"),
        dataset_format: ns::ROWSET.to_string(),
    });
    props.configuration_maps.push(ConfigurationMap {
        message: QName::new(ns::WSDAIR, "wsdair", "SQLExecuteFactoryRequest"),
        port_type: QName::new(ns::WSDAIR, "wsdair", "SQLResponseAccessPT"),
        defaults: ConfigurationDocument {
            readable: Some(true),
            writeable: Some(false),
            sensitivity: Some(Sensitivity::Insensitive),
            ..Default::default()
        },
    });
    props
}

/// The `ConfigurationMap` a derived response must advertise so
/// `SQLRowsetFactory` can negotiate against it (mirrors
/// `SqlResponseResource::create`).
fn rowset_factory_map() -> ConfigurationMap {
    ConfigurationMap {
        message: QName::new(ns::WSDAIR, "wsdair", "SQLRowsetFactoryRequest"),
        port_type: QName::new(ns::WSDAIR, "wsdair", "SQLRowsetAccessPT"),
        defaults: ConfigurationDocument {
            readable: Some(true),
            writeable: Some(false),
            sensitivity: Some(Sensitivity::Insensitive),
            ..Default::default()
        },
    }
}

/// A federation endpoint serving one logical resource over a shard grid.
pub struct FederationService {
    pub ctx: Arc<ServiceContext>,
    pub names: Arc<NameGenerator>,
    pub router: Arc<ShardRouter>,
    /// The logical resource consumers address.
    pub resource: ResourceRef,
    /// The abstract name of the endpoint's monitoring resource.
    pub monitoring: AbstractName,
}

impl FederationService {
    /// Launch a federated **relational** endpoint at `address`:
    /// `replicas[s][r]` names the backing `db` resource of replica `r`
    /// of shard `s` (each an ordinary WS-DAIR service on the same bus).
    pub fn launch_relational(
        bus: &Bus,
        address: &str,
        scheme: ShardScheme,
        replicas: Vec<Vec<ResourceRef>>,
        options: FederationOptions,
    ) -> FederationService {
        let (ctx, names) = Self::context(address);
        let logical = names.mint("db");
        let resource = ResourceRef::from_parts(address, &logical)
            .expect("federation address must yield a valid resource ref");
        let router = Arc::new(ShardRouter::new(
            resource.clone(),
            scheme,
            replicas,
            options.seed,
            options.probe_after,
        ));

        let mut dispatcher = SoapDispatcher::new();
        register_core_ops(&mut dispatcher, ctx.clone());
        register_federated_sql_ops(
            &mut dispatcher,
            ctx.clone(),
            names.clone(),
            router.clone(),
            bus.clone(),
            options.failover.clone(),
        );
        bus.register(address, Arc::new(dispatcher));

        let shards = router.shards();
        ctx.add_resource(Arc::new(FederatedResource {
            properties: federated_sql_properties(logical, shards),
            bus: bus.clone(),
            router: router.clone(),
        }));

        let monitoring = names.mint("monitoring");
        ctx.add_resource(Arc::new(dais_core::MonitoringResource::new(
            monitoring.clone(),
            bus.clone(),
            address,
        )));

        FederationService { ctx, names, router, resource, monitoring }
    }

    /// Launch a federated **XML** endpoint at `address`: `replicas[s][r]`
    /// names the backing root collection of replica `r` of shard `s`.
    /// Documents route by name hash ([`ShardScheme::Collection`]).
    pub fn launch_xml(
        bus: &Bus,
        address: &str,
        replicas: Vec<Vec<ResourceRef>>,
        options: FederationOptions,
    ) -> FederationService {
        let (ctx, names) = Self::context(address);
        let logical = names.mint("collection");
        let resource = ResourceRef::from_parts(address, &logical)
            .expect("federation address must yield a valid resource ref");
        let router = Arc::new(ShardRouter::new(
            resource.clone(),
            ShardScheme::Collection,
            replicas,
            options.seed,
            options.probe_after,
        ));

        let mut dispatcher = SoapDispatcher::new();
        register_core_ops(&mut dispatcher, ctx.clone());
        register_federated_xml_ops(
            &mut dispatcher,
            ctx.clone(),
            router.clone(),
            bus.clone(),
            options.failover.clone(),
        );
        bus.register(address, Arc::new(dispatcher));

        let shards = router.shards();
        let mut props = CoreProperties::new(logical, ResourceManagementKind::ExternallyManaged);
        props.description = format!("federated XML collection over {shards} shard(s)");
        ctx.add_resource(Arc::new(FederatedResource {
            properties: props,
            bus: bus.clone(),
            router: router.clone(),
        }));

        let monitoring = names.mint("monitoring");
        ctx.add_resource(Arc::new(dais_core::MonitoringResource::new(
            monitoring.clone(),
            bus.clone(),
            address,
        )));

        FederationService { ctx, names, router, resource, monitoring }
    }

    fn context(address: &str) -> (Arc<ServiceContext>, Arc<NameGenerator>) {
        let ctx = Arc::new(ServiceContext {
            address: address.to_string(),
            registry: ResourceRegistry::new(),
            lifetime: None,
            query_rewriter: None,
        });
        let names =
            Arc::new(NameGenerator::new(address.trim_start_matches("bus://").replace('/', "-")));
        (ctx, names)
    }
}

/// Register the federated WS-DAIR operations: direct access
/// (scatter + merge), the factory pipeline (all-replica fan-out), and
/// paged rowset reads.
fn register_federated_sql_ops(
    dispatcher: &mut SoapDispatcher,
    ctx: Arc<ServiceContext>,
    names: Arc<NameGenerator>,
    router: Arc<ShardRouter>,
    bus: Bus,
    failover: FailoverPolicy,
) {
    let c = ctx.clone();
    let rt = router.clone();
    let b = bus.clone();
    let fo = failover.clone();
    dispatcher.register(dair_actions::SQL_EXECUTE, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        as_federated(&resource)?;
        let props = resource.core_properties();
        if let Some(format) = dais_core::messages::extract_format_uri(body) {
            let message = QName::new(ns::WSDAIR, "wsdair", "SQLExecuteRequest");
            if !props.supports_format(&message, &format) {
                return Err(Fault::dais(
                    DaisFault::InvalidDatasetFormat,
                    format!("format '{format}' is not in the DatasetMap for SQLExecuteRequest"),
                ));
            }
        }
        let (sql, params) = dair_messages::parse_sql_expression(body)?;
        // Writes go through the fleet's router (every replica of the
        // owning shard), not the logical resource; queries must prove
        // their shape distributable before anything reaches a shard.
        let stmt = analyze(&sql).map_err(|e| {
            admission_fault(e, Fault::dais(DaisFault::NotAuthorized, "resource is not writeable"))
        })?;
        let shard_sql = stmt.shard_statement();
        let pages = scatter_pages(&b, &rt, &fo, dair_actions::SQL_EXECUTE, |s, r| {
            Ok(dair_messages::sql_execute_request(
                rt.replica(s, r).resource(),
                ns::ROWSET,
                &shard_sql,
                &params,
            ))
        })?;
        let (skip, take) = stmt.window();
        merged_response("SQLExecuteResponse", &pages, &stmt.keys, skip, take, |rows| {
            if rows == 0 {
                SqlCommunicationArea { sqlstate: "02000".into(), ..SqlCommunicationArea::success() }
            } else {
                SqlCommunicationArea::success()
            }
        })
    });

    let c = ctx.clone();
    dispatcher.register(dair_actions::GET_SQL_PROPERTY_DOCUMENT, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        as_federated(&resource)?;
        let mut response = XmlElement::new(ns::WSDAIR, "wsdair", "GetSQLPropertyDocumentResponse");
        response.push(resource.property_document());
        respond(response)
    });

    let c = ctx.clone();
    let n = names.clone();
    let rt = router.clone();
    let b = bus.clone();
    let fo = failover.clone();
    dispatcher.register(dair_actions::SQL_EXECUTE_FACTORY, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        as_federated(&resource)?;
        let props = resource.core_properties();
        if !props.readable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not readable"));
        }
        let config = DerivedResourceConfig::from_request(body)?;
        let message = QName::new(ns::WSDAIR, "wsdair", "SQLExecuteFactoryRequest");
        let (_port, effective) = config.resolve_against(&props.configuration_maps, &message)?;
        let (sql, params) = dair_messages::parse_sql_expression(body)?;
        let stmt = analyze(&sql).map_err(|e| {
            admission_fault(
                e,
                Fault::dais(
                    DaisFault::InvalidExpression,
                    "SQLExecuteFactory only accepts query statements",
                ),
            )
        })?;
        let shard_sql = stmt.shard_statement();

        let forwarded_config = body.child(ns::WSDAI, "ConfigurationDocument").cloned();
        let per_shard =
            fan_out_factory(&b, &rt, &fo, dair_actions::SQL_EXECUTE_FACTORY, |s, r| {
                let mut shard_req = dair_messages::sql_execute_request(
                    rt.replica(s, r).resource(),
                    ns::ROWSET,
                    &shard_sql,
                    &params,
                );
                shard_req.name = QName::new(ns::WSDAIR, "wsdair", "SQLExecuteFactoryRequest");
                if let Some(cfg) = &forwarded_config {
                    shard_req.push(cfg.clone());
                }
                shard_req
            })?;

        let name = n.mint("sql-response");
        let mut derived = config.derived_properties(name.clone(), &effective);
        derived.configuration_maps.push(rowset_factory_map());
        c.add_resource(Arc::new(FederatedResponseResource {
            properties: derived,
            per_shard,
            keys: stmt.keys,
            offset: stmt.offset,
            limit: stmt.limit,
        }));
        let epr = mint_resource_epr(&c.address, &name);
        respond(factory_response("SQLExecuteFactoryResponse", ns::WSDAIR, "wsdair", &epr))
    });

    let c = ctx.clone();
    dispatcher.register(dair_actions::GET_SQL_RESPONSE_PROPERTY_DOCUMENT, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        as_fed_response(&resource)?;
        let mut response =
            XmlElement::new(ns::WSDAIR, "wsdair", "GetSQLResponsePropertyDocumentResponse");
        response.push(resource.property_document());
        respond(response)
    });

    let c = ctx.clone();
    let n = names;
    let rt = router.clone();
    let b = bus.clone();
    let fo = failover.clone();
    dispatcher.register(dair_actions::SQL_ROWSET_FACTORY, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let response = as_fed_response(&resource)?;
        let props = resource.core_properties();
        let config = DerivedResourceConfig::from_request(body)?;
        let message = QName::new(ns::WSDAIR, "wsdair", "SQLRowsetFactoryRequest");
        let (_port, effective) = config.resolve_against(&props.configuration_maps, &message)?;
        let count: Option<usize> =
            body.child_text(ns::WSDAIR, "Count").and_then(|t| t.trim().parse().ok());
        // The logical rowset holds min(factory Count, statement LIMIT)
        // rows, starting after the statement's OFFSET.
        let cap = match (count, response.limit) {
            (Some(c), Some(l)) => Some(c.min(l)),
            (c, l) => c.or(l),
        };
        let skip = response.offset;

        let shard_names = &response.per_shard;
        let per_shard = fan_out_factory(&b, &rt, &fo, dair_actions::SQL_ROWSET_FACTORY, |s, r| {
            match &shard_names[s][r] {
                Some(backing) => {
                    let mut shard_req =
                        dais_core::messages::request("SQLRowsetFactoryRequest", backing);
                    if let Some(cap) = cap {
                        // skip + cap is a safe per-shard over-fetch
                        // bound: no shard contributes more than the
                        // whole window, skipped prefix included.
                        shard_req.push(
                            XmlElement::new(ns::WSDAIR, "wsdair", "Count")
                                .with_text(skip.saturating_add(cap).to_string()),
                        );
                    }
                    shard_req
                }
                // The replica missed the response fan-out; addressing the
                // (unknown there) logical response name makes it fault —
                // and the sweep record it — rather than silently serving
                // nothing.
                None => dais_core::messages::request(
                    "SQLRowsetFactoryRequest",
                    &response.properties.abstract_name,
                ),
            }
        })?;

        let name = n.mint("rowset");
        let derived = config.derived_properties(name.clone(), &effective);
        c.add_resource(Arc::new(FederatedRowsetResource {
            properties: derived,
            per_shard,
            keys: response.keys.clone(),
            skip,
            cap,
        }));
        let epr = mint_resource_epr(&c.address, &name);
        respond(factory_response("SQLRowsetFactoryResponse", ns::WSDAIR, "wsdair", &epr))
    });

    let c = ctx.clone();
    let rt = router.clone();
    let b = bus.clone();
    let fo = failover.clone();
    dispatcher.register(dair_actions::GET_TUPLES, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let rowset = as_fed_rowset(&resource)?;
        if !resource.core_properties().readable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not readable"));
        }
        let (start, count) = dair_messages::parse_get_tuples(body)?;
        let take = match rowset.cap {
            Some(cap) => count.min(cap.saturating_sub(start)),
            None => count,
        };
        // The statement's OFFSET shifts the whole window; every shard
        // may in the worst case own all of it, so each page fetch is
        // bounded by skip+start+take — never the shard's full rowset.
        let skip = rowset.skip.saturating_add(start);
        let fetch = skip.saturating_add(take);
        let per_shard = &rowset.per_shard;
        let pages = scatter_pages(&b, &rt, &fo, dair_actions::GET_TUPLES, |s, r| {
            let name = per_shard[s][r].as_ref().ok_or_else(|| {
                CallError::Fault(Fault::dais(
                    DaisFault::DataResourceUnavailable,
                    "replica holds no derived rowset",
                ))
            })?;
            Ok(dair_messages::get_tuples_request(name, 0, fetch))
        })?;
        merged_response("GetTuplesResponse", &pages, &rowset.keys, skip, take, |_| {
            SqlCommunicationArea::success()
        })
    });

    let c = ctx;
    dispatcher.register(dair_actions::GET_ROWSET_PROPERTY_DOCUMENT, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        as_fed_rowset(&resource)?;
        let mut response =
            XmlElement::new(ns::WSDAIR, "wsdair", "GetRowsetPropertyDocumentResponse");
        response.push(resource.property_document());
        respond(response)
    });
}

/// Register the federated WS-DAIX operations: `XPathExecute` fans out
/// over the sharded collections and unions the document sets in shard
/// order.
fn register_federated_xml_ops(
    dispatcher: &mut SoapDispatcher,
    ctx: Arc<ServiceContext>,
    router: Arc<ShardRouter>,
    bus: Bus,
    failover: FailoverPolicy,
) {
    let c = ctx.clone();
    let rt = router.clone();
    let b = bus.clone();
    let fo = failover.clone();
    dispatcher.register(daix_actions::XPATH_EXECUTE, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        as_federated(&resource)?;
        if !resource.core_properties().readable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not readable"));
        }
        let expression = daix_messages::parse_expression(body)?;
        let mut response = XmlElement::new(ns::WSDAIX, "wsdaix", "XPathExecuteResponse");
        // Shards answer concurrently; the document-set union still
        // assembles in shard order.
        let replies = scatter_shards(rt.shards(), |s| {
            call_shard(&b, &rt, s, &fo, |client, r| {
                let shard_req = daix_messages::query_request(
                    "XPathExecuteRequest",
                    rt.replica(s, r).resource(),
                    &expression,
                );
                client.request(daix_actions::XPATH_EXECUTE, shard_req)
            })
        });
        for reply in replies {
            let reply = reply.map_err(shard_fault)?;
            for item in reply.children_named(ns::WSDAIX, "Item") {
                response.push(item.clone());
            }
        }
        respond(response)
    });

    let c = ctx;
    dispatcher.register(daix_actions::GET_COLLECTION_PROPERTY_DOCUMENT, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        as_federated(&resource)?;
        let mut response =
            XmlElement::new(ns::WSDAIX, "wsdaix", "GetCollectionPropertyDocumentResponse");
        response.push(resource.property_document());
        respond(response)
    });
}
