//! # dais-federation
//!
//! Federated scatter-gather over WS-DAI services: one *logical* data
//! resource backed by N shards × M replicas, each shard an ordinary
//! WS-DAIR/WS-DAIX service. The federation endpoint is itself a WS-DAI
//! service — it advertises the logical resource's property document and
//! dispatches the standard action URIs — so a consumer cannot tell a
//! federated resource from a plain one.
//!
//! The moving parts:
//!
//! * [`router`] — deterministic shard assignment (hash/range on a key
//!   column, or collection name) plus per-replica health with seeded
//!   rotation and half-open probing.
//! * [`scatter`] — [`scatter::call_shard`], the replica-aware call loop:
//!   immediate failover to a sibling when a replica reports hot,
//!   back-off (honouring `retry_after`) only when a whole shard is.
//! * [`statement`] — scatter admission: a statement is proven
//!   distributable (or refused, or its `LIMIT`/`OFFSET` rewritten to a
//!   global merge window) before anything reaches a shard.
//! * [`merge`] — streaming k-way merge of WebRowSet pages off
//!   [`RowsetCursor`](dais_sql::RowsetCursor)s: no shard page and no
//!   merged result is ever materialised.
//! * [`service`] — the federation WS-DAI endpoint itself.
//! * [`fleet`] — test/bench topology builders: launch a shard × replica
//!   grid in one call and ingest rows/documents through the router.

pub mod fleet;
pub mod merge;
pub mod router;
pub mod scatter;
pub mod service;
pub mod statement;

pub use fleet::{shard_address, FleetOptions, RelationalFleet, XmlFleet};
pub use merge::{compare_values, merge_cursors, MergeKey, SortKey};
pub use router::{ShardRouter, ShardScheme};
pub use scatter::{call_replica, call_shard, scatter_shards, FailoverPolicy};
pub use service::{FederationOptions, FederationService};
pub use statement::{analyze, AdmissionError, DistributedStatement};
