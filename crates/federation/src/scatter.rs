//! Replica-aware scatter calls with failover.
//!
//! [`call_shard`] is the one way the federation talks to a shard: it
//! sweeps the shard's replicas in router-preferred order, fails over
//! *immediately* (no sleep) when a replica itself reports hot — the
//! idle sibling answers now — and only backs off between sweeps, by the
//! max of the server's `retry_after` hint and the policy's own
//! exponential schedule. Replica health feeds back into the
//! [`ShardRouter`](crate::router::ShardRouter) so later calls skip known-bad
//! replicas until their half-open probe budget elapses.
//!
//! [`scatter_shards`] runs one such call per shard *concurrently* on
//! scoped threads, so query latency tracks the slowest shard, not the
//! sum of all of them — and a single overloaded shard backing off does
//! not stall the gather of its siblings. [`call_replica`] is the
//! all-replica fan-out's unit: one fixed replica, transient failures
//! retried on the policy's schedule (failing over is not an option when
//! *every* replica must apply the operation).

use std::sync::Arc;
use std::time::Duration;

use dais_soap::retry::{is_retryable, overload_origin, retry_after_hint, OverloadOrigin, SleepFn};
use dais_soap::{Bus, BusError, CallError, RetryPolicy, ServiceClient};

use crate::router::ShardRouter;

/// How hard [`call_shard`] tries: the retry schedule governing sweeps
/// over a shard's replica set, plus the sleeper that waits out backoff
/// (injectable so tests can prove *no* sleep happened on replica
/// failover).
#[derive(Clone)]
pub struct FailoverPolicy {
    pub retry: RetryPolicy,
    sleep: SleepFn,
}

impl FailoverPolicy {
    pub fn new(retry: RetryPolicy) -> FailoverPolicy {
        FailoverPolicy { retry, sleep: Arc::new(std::thread::sleep) }
    }

    /// Replace the sleeper (tests pass a recorder; production keeps the
    /// default `thread::sleep`).
    pub fn with_sleep(mut self, sleep: SleepFn) -> FailoverPolicy {
        self.sleep = sleep;
        self
    }
}

impl Default for FailoverPolicy {
    fn default() -> FailoverPolicy {
        FailoverPolicy::new(RetryPolicy::new(3))
    }
}

impl std::fmt::Debug for FailoverPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverPolicy").field("retry", &self.retry).finish_non_exhaustive()
    }
}

/// Call one shard through whichever replica answers.
///
/// `call` receives a [`ServiceClient`] bound to a replica's endpoint and
/// that replica's index (callers resolve per-replica abstract names with
/// it). Outcomes per error class:
///
/// * **replica-origin `Overloaded`** — that replica is hot: mark it
///   down, remember the pacing hint, and try the next candidate *now*.
/// * **upstream-origin `Overloaded`** — no sibling would fare better:
///   end the sweep and back off.
/// * **other retryable** (timeout, lost connection, `ServiceBusy`,
///   `DataResourceUnavailable`) — mark the replica down, next candidate.
/// * **non-retryable** — returned to the caller unchanged.
///
/// Between sweeps the wait is `max(retry_after hint, backoff schedule)`,
/// exactly like the single-endpoint retry loop.
pub fn call_shard<T>(
    bus: &Bus,
    router: &ShardRouter,
    shard: usize,
    policy: &FailoverPolicy,
    mut call: impl FnMut(&ServiceClient, usize) -> Result<T, CallError>,
) -> Result<T, CallError> {
    let attempts = policy.retry.max_attempts.max(1);
    let mut last_err: Option<CallError> = None;
    fn note_hint(h: Option<Duration>, hint: &mut Option<Duration>) {
        if let Some(h) = h {
            *hint = Some(hint.map_or(h, |cur| cur.max(h)));
        }
    }
    for attempt in 1..=attempts {
        let mut hint: Option<Duration> = None;
        for r in router.candidates(shard) {
            let replica = router.replica(shard, r);
            let address = replica.endpoint_address();
            let client = ServiceClient::new(bus.clone(), &*address);
            match call(&client, r) {
                Ok(v) => {
                    router.mark_success(shard, r);
                    return Ok(v);
                }
                Err(e) => match overload_origin(&e, &address) {
                    Some((OverloadOrigin::Replica, after)) => {
                        router.mark_failure(shard, r);
                        note_hint(Some(after), &mut hint);
                        last_err = Some(e);
                    }
                    Some((OverloadOrigin::Upstream, after)) => {
                        note_hint(Some(after), &mut hint);
                        last_err = Some(e);
                        break;
                    }
                    None if is_retryable(&e) => {
                        router.mark_failure(shard, r);
                        note_hint(retry_after_hint(&e), &mut hint);
                        last_err = Some(e);
                    }
                    None => return Err(e),
                },
            }
        }
        if attempt < attempts {
            let delay = hint.unwrap_or(Duration::ZERO).max(policy.retry.backoff_delay(attempt));
            if delay > Duration::ZERO {
                (policy.sleep)(delay);
            }
        }
    }
    Err(last_err.unwrap_or_else(|| {
        CallError::Transport(BusError::Timeout(router.replica(shard, 0).endpoint_address()))
    }))
}

/// Run `work(shard)` for every shard concurrently and gather the
/// results in shard order.
///
/// Each shard runs on a scoped thread adopted into the bus workers'
/// inline-dispatch discipline ([`dais_soap::executor::adopt_worker_thread`]):
/// the spawning handler blocks joining the scatter, so letting the
/// nested shard calls queue behind the same finite executor pool could
/// deadlock the pool on itself. A single shard short-circuits the
/// spawning entirely — the 1-shard oracle topology stays truly inline.
pub fn scatter_shards<T, E>(
    shards: usize,
    work: impl Fn(usize) -> Result<T, E> + Sync,
) -> Vec<Result<T, E>>
where
    T: Send,
    E: Send,
{
    if shards <= 1 {
        return (0..shards).map(&work).collect();
    }
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                scope.spawn(move || {
                    dais_soap::executor::adopt_worker_thread();
                    work(shard)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
            .collect()
    })
}

/// Call one *fixed* replica, retrying transient failures on the
/// policy's schedule (waiting out `max(retry_after hint, backoff)`
/// between attempts) before giving up.
///
/// This is the unit of the all-replica factory fan-out, where failover
/// is not an answer: every replica must apply the operation itself, so
/// a transient timeout must be retried against the same replica rather
/// than permanently costing the derived resource that replica's slot.
/// Non-retryable errors return immediately.
pub fn call_replica<T>(
    bus: &Bus,
    address: &str,
    policy: &FailoverPolicy,
    mut call: impl FnMut(&ServiceClient) -> Result<T, CallError>,
) -> Result<T, CallError> {
    let attempts = policy.retry.max_attempts.max(1);
    let client = ServiceClient::new(bus.clone(), address);
    let mut attempt = 1;
    loop {
        match call(&client) {
            Ok(v) => return Ok(v),
            Err(e) if attempt < attempts && is_retryable(&e) => {
                let delay = retry_after_hint(&e)
                    .unwrap_or(Duration::ZERO)
                    .max(policy.retry.backoff_delay(attempt));
                if delay > Duration::ZERO {
                    (policy.sleep)(delay);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ShardScheme;
    use dais_core::ResourceRef;
    use dais_soap::envelope::Envelope;
    use dais_soap::interceptor::{CallInfo, Intercept, Interceptor};
    use dais_soap::{Fault, SoapDispatcher};
    use dais_util::sync::Mutex;
    use dais_xml::XmlElement;

    const ECHO: &str = "urn:test:echo";
    const TEST_NS: &str = "urn:test:ns";

    fn echo_service(bus: &Bus, address: &str, tag: &str) {
        let mut d = SoapDispatcher::new();
        let tag = tag.to_string();
        d.register(ECHO, move |_req| {
            Ok(Envelope::with_body(XmlElement::new(TEST_NS, "t", "Echo").with_text(tag.clone())))
        });
        bus.register(address, Arc::new(d));
    }

    /// Synthesises `BusError::Overloaded` for chosen endpoints — the
    /// executor-admission error the injector's chaos gates cannot
    /// produce on demand.
    struct HotReplica {
        hot: Mutex<Vec<String>>,
        retry_after: Duration,
    }

    impl Interceptor for HotReplica {
        fn on_request(&self, call: &CallInfo<'_>, _bytes: &[u8]) -> Intercept {
            if self.hot.lock().iter().any(|h| h == call.to) {
                Intercept::Abort(BusError::Overloaded {
                    endpoint: call.to.to_string(),
                    retry_after: self.retry_after,
                })
            } else {
                Intercept::Pass
            }
        }
    }

    fn fed_router(replicas: usize) -> ShardRouter {
        let set = (0..replicas)
            .map(|r| ResourceRef::parse(&format!("dais://fleet/r{r}/urn:dais:r{r}:db:0")).unwrap())
            .collect();
        ShardRouter::new(
            ResourceRef::parse("dais://fed/urn:dais:fed:db:0").unwrap(),
            ShardScheme::Hash { column: "id".into() },
            vec![set],
            11,
            2,
        )
    }

    fn echo_through(client: &ServiceClient) -> Result<String, CallError> {
        let reply = client.request(ECHO, XmlElement::new(TEST_NS, "t", "Echo"))?;
        Ok(reply.text())
    }

    /// The satellite-3 regression: one hot replica, one idle replica.
    /// The hot replica's `Overloaded{retry_after}` must cause an
    /// *immediate* switch to the idle sibling — zero sleeps — instead of
    /// the generic retry loop's back-off.
    #[test]
    fn hot_replica_fails_over_without_sleeping() {
        let bus = Bus::new();
        echo_service(&bus, "bus://fleet/r0", "r0");
        echo_service(&bus, "bus://fleet/r1", "r1");
        let hot = Arc::new(HotReplica {
            hot: Mutex::new(vec!["bus://fleet/r0".into()]),
            retry_after: Duration::from_millis(40),
        });
        bus.add_interceptor(hot.clone());

        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let recorder = slept.clone();
        let policy = FailoverPolicy::new(RetryPolicy::new(3))
            .with_sleep(Arc::new(move |d| recorder.lock().push(d)));

        let router = fed_router(2);
        // Whichever replica the rotation offers first, the answer must
        // come from the idle one with no sleep in between.
        for _ in 0..4 {
            let got = call_shard(&bus, &router, 0, &policy, |c, _r| echo_through(c)).unwrap();
            assert_eq!(got, "r1");
        }
        assert!(slept.lock().is_empty(), "failover must not back off: {:?}", slept.lock());
        assert!(!router.is_healthy(0, 0), "the hot replica should be marked down");
    }

    /// When *every* replica is hot the loop has nothing to switch to:
    /// it must honour the largest `retry_after` hint between sweeps.
    #[test]
    fn all_replicas_hot_backs_off_with_the_hint() {
        let bus = Bus::new();
        echo_service(&bus, "bus://fleet/r0", "r0");
        echo_service(&bus, "bus://fleet/r1", "r1");
        let hot = Arc::new(HotReplica {
            hot: Mutex::new(vec!["bus://fleet/r0".into(), "bus://fleet/r1".into()]),
            retry_after: Duration::from_millis(25),
        });
        bus.add_interceptor(hot.clone());

        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let recorder = slept.clone();
        let policy = FailoverPolicy::new(RetryPolicy::new(2))
            .with_sleep(Arc::new(move |d| recorder.lock().push(d)));

        let router = fed_router(2);
        let err = call_shard(&bus, &router, 0, &policy, |c, _r| echo_through(c)).unwrap_err();
        assert!(matches!(err, CallError::Transport(BusError::Overloaded { .. })));
        let slept = slept.lock();
        assert_eq!(slept.len(), 1, "one back-off between the two sweeps");
        assert!(slept[0] >= Duration::from_millis(25), "hint honoured, got {:?}", slept[0]);
    }

    /// Recovery: once the hot replica cools, its half-open probe brings
    /// it back into rotation.
    #[test]
    fn cooled_replica_rejoins_via_half_open_probe() {
        let bus = Bus::new();
        echo_service(&bus, "bus://fleet/r0", "r0");
        echo_service(&bus, "bus://fleet/r1", "r1");
        let hot = Arc::new(HotReplica {
            hot: Mutex::new(vec!["bus://fleet/r0".into()]),
            retry_after: Duration::from_millis(5),
        });
        bus.add_interceptor(hot.clone());

        let policy = FailoverPolicy::new(RetryPolicy::new(2))
            .with_sleep(Arc::new(|_| panic!("no sleep expected")));
        let router = fed_router(2);
        let _ = call_shard(&bus, &router, 0, &policy, |c, _r| echo_through(c)).unwrap();
        assert!(!router.is_healthy(0, 0));

        hot.hot.lock().clear();
        let mut seen_r0 = false;
        for _ in 0..8 {
            let got = call_shard(&bus, &router, 0, &policy, |c, _r| echo_through(c)).unwrap();
            seen_r0 |= got == "r0";
        }
        assert!(seen_r0, "probed replica should serve again after cooling");
        assert!(router.is_healthy(0, 0));
    }

    /// Synthesises a fixed number of dropped sends (timeouts) for one
    /// endpoint, then lets traffic through — the transient blip a
    /// replica-pinned retry must ride out.
    struct FailFirst {
        endpoint: String,
        remaining: Mutex<u32>,
    }

    impl Interceptor for FailFirst {
        fn on_request(&self, call: &CallInfo<'_>, _bytes: &[u8]) -> Intercept {
            if call.to == self.endpoint {
                let mut remaining = self.remaining.lock();
                if *remaining > 0 {
                    *remaining -= 1;
                    return Intercept::Abort(BusError::Timeout(call.to.to_string()));
                }
            }
            Intercept::Pass
        }
    }

    /// A transient failure of a *fixed* replica retries against that
    /// same replica (failover is not an option when every replica must
    /// apply the operation) and succeeds once the blip passes, pacing
    /// itself on the backoff schedule.
    #[test]
    fn call_replica_rides_out_transient_failures() {
        let bus = Bus::new();
        echo_service(&bus, "bus://fleet/r0", "r0");
        bus.add_interceptor(Arc::new(FailFirst {
            endpoint: "bus://fleet/r0".into(),
            remaining: Mutex::new(2),
        }));

        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let recorder = slept.clone();
        let policy = FailoverPolicy::new(RetryPolicy::new(3))
            .with_sleep(Arc::new(move |d| recorder.lock().push(d)));

        let got = call_replica(&bus, "bus://fleet/r0", &policy, echo_through).unwrap();
        assert_eq!(got, "r0");
        assert_eq!(slept.lock().len(), 2, "one backoff per failed attempt");
    }

    /// Non-retryable errors return immediately — no sleeps, no repeats.
    #[test]
    fn call_replica_surfaces_application_faults_immediately() {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register(ECHO, |_req| Err(Fault::client("no such thing")));
        bus.register("bus://fleet/r0", Arc::new(d));

        let policy = FailoverPolicy::new(RetryPolicy::new(3))
            .with_sleep(Arc::new(|_| panic!("no sleep expected")));
        let err = call_replica(&bus, "bus://fleet/r0", &policy, echo_through).unwrap_err();
        assert!(matches!(err, CallError::Fault(_)), "got {err:?}");
    }

    /// The scatter runs shards concurrently (more than one in flight at
    /// once) and still gathers results in shard order, with a failed
    /// shard's error in its own slot.
    #[test]
    fn scatter_shards_runs_concurrently_and_gathers_in_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let results = scatter_shards(4, |s| {
            let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(20));
            in_flight.fetch_sub(1, Ordering::SeqCst);
            if s == 2 {
                Err(format!("shard {s} down"))
            } else {
                Ok(s * 10)
            }
        });
        assert_eq!(
            results,
            vec![Ok(0), Ok(10), Err("shard 2 down".to_string()), Ok(30)],
            "shard order must survive the concurrent gather"
        );
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "shards must overlap, got peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    /// Non-retryable faults pass through unchanged — failover must not
    /// mask an application error as a busy shard.
    #[test]
    fn non_retryable_faults_surface_immediately() {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register(ECHO, |_req| Err(Fault::client("no such thing")));
        bus.register("bus://fleet/r0", Arc::new(d));
        echo_service(&bus, "bus://fleet/r1", "r1");

        let policy = FailoverPolicy::new(RetryPolicy::new(3))
            .with_sleep(Arc::new(|_| panic!("no sleep expected")));
        let router = fed_router(2);
        // Pin the sweep at r0 by marking r1 down first.
        router.mark_failure(0, 1);
        let err = call_shard(&bus, &router, 0, &policy, |c, _r| echo_through(c)).unwrap_err();
        assert!(matches!(err, CallError::Fault(_)), "got {err:?}");
        assert!(router.is_healthy(0, 0), "an application fault is not a health signal");
    }
}
