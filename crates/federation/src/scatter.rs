//! Replica-aware scatter calls with failover.
//!
//! [`call_shard`] is the one way the federation talks to a shard: it
//! sweeps the shard's replicas in router-preferred order, fails over
//! *immediately* (no sleep) when a replica itself reports hot — the
//! idle sibling answers now — and only backs off between sweeps, by the
//! max of the server's `retry_after` hint and the policy's own
//! exponential schedule. Replica health feeds back into the
//! [`ShardRouter`](crate::router::ShardRouter) so later calls skip known-bad
//! replicas until their half-open probe budget elapses.

use std::sync::Arc;
use std::time::Duration;

use dais_soap::retry::{is_retryable, overload_origin, retry_after_hint, OverloadOrigin, SleepFn};
use dais_soap::{Bus, BusError, CallError, RetryPolicy, ServiceClient};

use crate::router::ShardRouter;

/// How hard [`call_shard`] tries: the retry schedule governing sweeps
/// over a shard's replica set, plus the sleeper that waits out backoff
/// (injectable so tests can prove *no* sleep happened on replica
/// failover).
#[derive(Clone)]
pub struct FailoverPolicy {
    pub retry: RetryPolicy,
    sleep: SleepFn,
}

impl FailoverPolicy {
    pub fn new(retry: RetryPolicy) -> FailoverPolicy {
        FailoverPolicy { retry, sleep: Arc::new(std::thread::sleep) }
    }

    /// Replace the sleeper (tests pass a recorder; production keeps the
    /// default `thread::sleep`).
    pub fn with_sleep(mut self, sleep: SleepFn) -> FailoverPolicy {
        self.sleep = sleep;
        self
    }
}

impl Default for FailoverPolicy {
    fn default() -> FailoverPolicy {
        FailoverPolicy::new(RetryPolicy::new(3))
    }
}

impl std::fmt::Debug for FailoverPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverPolicy").field("retry", &self.retry).finish_non_exhaustive()
    }
}

/// Call one shard through whichever replica answers.
///
/// `call` receives a [`ServiceClient`] bound to a replica's endpoint and
/// that replica's index (callers resolve per-replica abstract names with
/// it). Outcomes per error class:
///
/// * **replica-origin `Overloaded`** — that replica is hot: mark it
///   down, remember the pacing hint, and try the next candidate *now*.
/// * **upstream-origin `Overloaded`** — no sibling would fare better:
///   end the sweep and back off.
/// * **other retryable** (timeout, lost connection, `ServiceBusy`,
///   `DataResourceUnavailable`) — mark the replica down, next candidate.
/// * **non-retryable** — returned to the caller unchanged.
///
/// Between sweeps the wait is `max(retry_after hint, backoff schedule)`,
/// exactly like the single-endpoint retry loop.
pub fn call_shard<T>(
    bus: &Bus,
    router: &ShardRouter,
    shard: usize,
    policy: &FailoverPolicy,
    mut call: impl FnMut(&ServiceClient, usize) -> Result<T, CallError>,
) -> Result<T, CallError> {
    let attempts = policy.retry.max_attempts.max(1);
    let mut last_err: Option<CallError> = None;
    fn note_hint(h: Option<Duration>, hint: &mut Option<Duration>) {
        if let Some(h) = h {
            *hint = Some(hint.map_or(h, |cur| cur.max(h)));
        }
    }
    for attempt in 1..=attempts {
        let mut hint: Option<Duration> = None;
        for r in router.candidates(shard) {
            let replica = router.replica(shard, r);
            let address = replica.endpoint_address();
            let client = ServiceClient::new(bus.clone(), &*address);
            match call(&client, r) {
                Ok(v) => {
                    router.mark_success(shard, r);
                    return Ok(v);
                }
                Err(e) => match overload_origin(&e, &address) {
                    Some((OverloadOrigin::Replica, after)) => {
                        router.mark_failure(shard, r);
                        note_hint(Some(after), &mut hint);
                        last_err = Some(e);
                    }
                    Some((OverloadOrigin::Upstream, after)) => {
                        note_hint(Some(after), &mut hint);
                        last_err = Some(e);
                        break;
                    }
                    None if is_retryable(&e) => {
                        router.mark_failure(shard, r);
                        note_hint(retry_after_hint(&e), &mut hint);
                        last_err = Some(e);
                    }
                    None => return Err(e),
                },
            }
        }
        if attempt < attempts {
            let delay = hint.unwrap_or(Duration::ZERO).max(policy.retry.backoff_delay(attempt));
            if delay > Duration::ZERO {
                (policy.sleep)(delay);
            }
        }
    }
    Err(last_err.unwrap_or_else(|| {
        CallError::Transport(BusError::Timeout(router.replica(shard, 0).endpoint_address()))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ShardScheme;
    use dais_core::ResourceRef;
    use dais_soap::envelope::Envelope;
    use dais_soap::interceptor::{CallInfo, Intercept, Interceptor};
    use dais_soap::{Fault, SoapDispatcher};
    use dais_util::sync::Mutex;
    use dais_xml::XmlElement;

    const ECHO: &str = "urn:test:echo";
    const TEST_NS: &str = "urn:test:ns";

    fn echo_service(bus: &Bus, address: &str, tag: &str) {
        let mut d = SoapDispatcher::new();
        let tag = tag.to_string();
        d.register(ECHO, move |_req| {
            Ok(Envelope::with_body(XmlElement::new(TEST_NS, "t", "Echo").with_text(tag.clone())))
        });
        bus.register(address, Arc::new(d));
    }

    /// Synthesises `BusError::Overloaded` for chosen endpoints — the
    /// executor-admission error the injector's chaos gates cannot
    /// produce on demand.
    struct HotReplica {
        hot: Mutex<Vec<String>>,
        retry_after: Duration,
    }

    impl Interceptor for HotReplica {
        fn on_request(&self, call: &CallInfo<'_>, _bytes: &[u8]) -> Intercept {
            if self.hot.lock().iter().any(|h| h == call.to) {
                Intercept::Abort(BusError::Overloaded {
                    endpoint: call.to.to_string(),
                    retry_after: self.retry_after,
                })
            } else {
                Intercept::Pass
            }
        }
    }

    fn fed_router(replicas: usize) -> ShardRouter {
        let set = (0..replicas)
            .map(|r| ResourceRef::parse(&format!("dais://fleet/r{r}/urn:dais:r{r}:db:0")).unwrap())
            .collect();
        ShardRouter::new(
            ResourceRef::parse("dais://fed/urn:dais:fed:db:0").unwrap(),
            ShardScheme::Hash { column: "id".into() },
            vec![set],
            11,
            2,
        )
    }

    fn echo_through(client: &ServiceClient) -> Result<String, CallError> {
        let reply = client.request(ECHO, XmlElement::new(TEST_NS, "t", "Echo"))?;
        Ok(reply.text())
    }

    /// The satellite-3 regression: one hot replica, one idle replica.
    /// The hot replica's `Overloaded{retry_after}` must cause an
    /// *immediate* switch to the idle sibling — zero sleeps — instead of
    /// the generic retry loop's back-off.
    #[test]
    fn hot_replica_fails_over_without_sleeping() {
        let bus = Bus::new();
        echo_service(&bus, "bus://fleet/r0", "r0");
        echo_service(&bus, "bus://fleet/r1", "r1");
        let hot = Arc::new(HotReplica {
            hot: Mutex::new(vec!["bus://fleet/r0".into()]),
            retry_after: Duration::from_millis(40),
        });
        bus.add_interceptor(hot.clone());

        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let recorder = slept.clone();
        let policy = FailoverPolicy::new(RetryPolicy::new(3))
            .with_sleep(Arc::new(move |d| recorder.lock().push(d)));

        let router = fed_router(2);
        // Whichever replica the rotation offers first, the answer must
        // come from the idle one with no sleep in between.
        for _ in 0..4 {
            let got = call_shard(&bus, &router, 0, &policy, |c, _r| echo_through(c)).unwrap();
            assert_eq!(got, "r1");
        }
        assert!(slept.lock().is_empty(), "failover must not back off: {:?}", slept.lock());
        assert!(!router.is_healthy(0, 0), "the hot replica should be marked down");
    }

    /// When *every* replica is hot the loop has nothing to switch to:
    /// it must honour the largest `retry_after` hint between sweeps.
    #[test]
    fn all_replicas_hot_backs_off_with_the_hint() {
        let bus = Bus::new();
        echo_service(&bus, "bus://fleet/r0", "r0");
        echo_service(&bus, "bus://fleet/r1", "r1");
        let hot = Arc::new(HotReplica {
            hot: Mutex::new(vec!["bus://fleet/r0".into(), "bus://fleet/r1".into()]),
            retry_after: Duration::from_millis(25),
        });
        bus.add_interceptor(hot.clone());

        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let recorder = slept.clone();
        let policy = FailoverPolicy::new(RetryPolicy::new(2))
            .with_sleep(Arc::new(move |d| recorder.lock().push(d)));

        let router = fed_router(2);
        let err = call_shard(&bus, &router, 0, &policy, |c, _r| echo_through(c)).unwrap_err();
        assert!(matches!(err, CallError::Transport(BusError::Overloaded { .. })));
        let slept = slept.lock();
        assert_eq!(slept.len(), 1, "one back-off between the two sweeps");
        assert!(slept[0] >= Duration::from_millis(25), "hint honoured, got {:?}", slept[0]);
    }

    /// Recovery: once the hot replica cools, its half-open probe brings
    /// it back into rotation.
    #[test]
    fn cooled_replica_rejoins_via_half_open_probe() {
        let bus = Bus::new();
        echo_service(&bus, "bus://fleet/r0", "r0");
        echo_service(&bus, "bus://fleet/r1", "r1");
        let hot = Arc::new(HotReplica {
            hot: Mutex::new(vec!["bus://fleet/r0".into()]),
            retry_after: Duration::from_millis(5),
        });
        bus.add_interceptor(hot.clone());

        let policy = FailoverPolicy::new(RetryPolicy::new(2))
            .with_sleep(Arc::new(|_| panic!("no sleep expected")));
        let router = fed_router(2);
        let _ = call_shard(&bus, &router, 0, &policy, |c, _r| echo_through(c)).unwrap();
        assert!(!router.is_healthy(0, 0));

        hot.hot.lock().clear();
        let mut seen_r0 = false;
        for _ in 0..8 {
            let got = call_shard(&bus, &router, 0, &policy, |c, _r| echo_through(c)).unwrap();
            seen_r0 |= got == "r0";
        }
        assert!(seen_r0, "probed replica should serve again after cooling");
        assert!(router.is_healthy(0, 0));
    }

    /// Non-retryable faults pass through unchanged — failover must not
    /// mask an application error as a busy shard.
    #[test]
    fn non_retryable_faults_surface_immediately() {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register(ECHO, |_req| Err(Fault::client("no such thing")));
        bus.register("bus://fleet/r0", Arc::new(d));
        echo_service(&bus, "bus://fleet/r1", "r1");

        let policy = FailoverPolicy::new(RetryPolicy::new(3))
            .with_sleep(Arc::new(|_| panic!("no sleep expected")));
        let router = fed_router(2);
        // Pin the sweep at r0 by marking r1 down first.
        router.mark_failure(0, 1);
        let err = call_shard(&bus, &router, 0, &policy, |c, _r| echo_through(c)).unwrap_err();
        assert!(matches!(err, CallError::Fault(_)), "got {err:?}");
        assert!(router.is_healthy(0, 0), "an application fault is not a health signal");
    }
}
