//! Workload-level tests of the XML database: realistic corpora, query +
//! update interleavings and concurrency.

use dais_xml::{parse, XPathContext};
use dais_xmldb::{apply_xupdate, XQuery, XmlDatabase};

fn library() -> XmlDatabase {
    let db = XmlDatabase::new("library");
    db.create_collection("books").unwrap();
    let entries = [
        ("b1", "TP", 1992, 89, &["databases", "transactions"][..]),
        ("b2", "DDIA", 2017, 45, &["databases", "distributed"][..]),
        ("b3", "OSTEP", 2018, 0, &["os"][..]),
        ("b4", "SICP", 1985, 60, &["programming"][..]),
        ("b5", "TAPL", 2002, 70, &["programming", "types"][..]),
    ];
    for (name, title, year, price, tags) in entries {
        let tag_xml: String = tags.iter().map(|t| format!("<tag>{t}</tag>")).collect();
        db.add_document(
            "books",
            name,
            &format!(
                "<book><title>{title}</title><year>{year}</year><price>{price}</price>{tag_xml}</book>"
            ),
        )
        .unwrap();
    }
    db
}

#[test]
fn xpath_workloads() {
    let db = library();
    // Predicate combinations.
    assert_eq!(db.xpath_query("books", "/book[year > 2000][price < 60]").unwrap().len(), 2); // DDIA, OSTEP
                                                                                             // Counting via nested paths.
    let tags = db.xpath_query("books", "/book/tag").unwrap();
    assert_eq!(tags.len(), 8);
    // Text functions inside predicates.
    let hits = db.xpath_query("books", "/book[starts-with(title, 'T')]").unwrap();
    assert_eq!(hits.len(), 2); // TP, TAPL
                               // Attribute-less structural navigation with unions.
    let hits = db.xpath_query("books", "/book/title | /book/year").unwrap();
    assert_eq!(hits.len(), 10);
}

#[test]
fn xquery_flwor_workloads() {
    let db = library();
    let q = XQuery::parse(
        "for $b in /book \
         let $p := $b/price \
         where $p > 40 \
         order by $p descending \
         return <hit price=\"{$p}\">{$b/title/text()}</hit>",
    )
    .unwrap();
    // Run against each document and merge (per-document evaluation).
    let mut all = Vec::new();
    db.for_each_document("books", |_n, doc| {
        all.extend(q.execute(doc).unwrap());
        Ok::<(), ()>(())
    })
    .unwrap()
    .unwrap();
    assert_eq!(all.len(), 4); // TP 89, DDIA 45, SICP 60, TAPL 70
    for item in &all {
        let e = item.to_element();
        let price: i64 = e.attribute("price").unwrap().parse().unwrap();
        assert!(price > 40);
    }
}

#[test]
fn xquery_multiple_lets_and_arithmetic() {
    let doc = parse("<cart><line><qty>2</qty><unit>10</unit></line><line><qty>3</qty><unit>5</unit></line></cart>").unwrap();
    let q = XQuery::parse(
        "for $l in /cart/line \
         let $q := $l/qty let $u := $l/unit \
         return <total>{$q * $u}</total>",
    )
    .unwrap();
    let items = q.execute(&doc).unwrap();
    let totals: Vec<String> = items.iter().map(|i| i.string_value()).collect();
    assert_eq!(totals, vec!["20", "15"]);
}

#[test]
fn update_then_query_interleaving() {
    let db = library();
    let ctx = XPathContext::default();
    // Round 1: discount everything over 60 by renaming + updating.
    let mods = parse(
        "<xu:modifications xmlns:xu='http://www.xmldb.org/xupdate'>\
           <xu:append select='/book[price > 60]'><discounted/></xu:append>\
         </xu:modifications>",
    )
    .unwrap();
    let names = db.list_documents("books").unwrap();
    let mut touched = 0;
    for n in &names {
        let mut doc = db.get_document("books", n).unwrap();
        touched += apply_xupdate(&mut doc, &mods, &ctx).unwrap();
        db.replace_document("books", n, doc).unwrap();
    }
    assert_eq!(touched, 2); // TP 89, TAPL 70
    assert_eq!(db.xpath_query("books", "/book[discounted]").unwrap().len(), 2);

    // Round 2: remove the marker from one of them and re-check.
    let mods = parse(
        "<xu:modifications xmlns:xu='http://www.xmldb.org/xupdate'>\
           <xu:remove select='/book[title=\"TP\"]/discounted'/>\
         </xu:modifications>",
    )
    .unwrap();
    for n in &names {
        let mut doc = db.get_document("books", n).unwrap();
        apply_xupdate(&mut doc, &mods, &ctx).unwrap();
        db.replace_document("books", n, doc).unwrap();
    }
    assert_eq!(db.xpath_query("books", "/book[discounted]").unwrap().len(), 1);
}

#[test]
fn deep_collection_trees() {
    let db = XmlDatabase::new("deep");
    db.create_collection("a").unwrap();
    db.create_collection("a/b").unwrap();
    db.create_collection("a/b/c").unwrap();
    db.add_document("a/b/c", "leaf", "<x>1</x>").unwrap();
    assert!(db.has_collection("a/b/c"));
    assert_eq!(db.xpath_query("a/b/c", "/x").unwrap().len(), 1);
    assert_eq!(db.xpath_query("a", "/x").unwrap().len(), 0); // non-recursive
                                                             // Removing the middle removes everything beneath.
    db.remove_collection("a/b").unwrap();
    assert!(!db.has_collection("a/b/c"));
    assert_eq!(db.document_count(), 0);
}

#[test]
fn concurrent_mixed_workload() {
    let db = library();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let db = db.clone();
            std::thread::spawn(move || {
                for j in 0..20 {
                    match i % 3 {
                        0 => {
                            let _ = db.xpath_query("books", "/book[price > 10]/title").unwrap();
                        }
                        1 => {
                            db.add_document(
                                "books",
                                &format!("w{i}_{j}"),
                                &format!(
                                    "<book><title>gen{i}-{j}</title><price>{j}</price></book>"
                                ),
                            )
                            .unwrap();
                        }
                        _ => {
                            let names = db.list_documents("books").unwrap();
                            let _ = db.get_document("books", &names[j % names.len()]).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.document_count(), 5 + 2 * 20);
}

#[test]
fn namespace_aware_collection_queries() {
    let db = XmlDatabase::new("ns");
    db.create_collection("c").unwrap();
    db.add_document("c", "d", "<r xmlns:m='urn:meta'><m:id>7</m:id><id>8</id></r>").unwrap();
    let ctx = XPathContext::new().with_namespace("meta", "urn:meta");
    let hits = db.xpath_query_with("c", "//meta:id", &ctx).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].text(), "7");
    let hits = db.xpath_query_with("c", "//id", &ctx).unwrap();
    assert_eq!(hits[0].text(), "8");
}
