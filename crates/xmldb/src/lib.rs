//! # dais-xmldb
//!
//! An XML database: named collections of XML documents with XPath
//! querying, an XQuery FLWOR subset and XUpdate modifications.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The WS-DAIX realisation of the DAIS specifications assumes an existing
//! XML database (the Xindice/eXist generation) offering collections,
//! XPath/XQuery querying and XUpdate document modification. This crate
//! implements that substrate: a hierarchical collection tree holding
//! parsed XML documents, queried through the `dais-xml` XPath engine, an
//! XQuery FLWOR evaluator sufficient for the WS-DAIX `XQueryExecute`
//! operation, and the XUpdate operation set for `XUpdateExecute`.
//!
//! ```
//! use dais_xmldb::XmlDatabase;
//!
//! let db = XmlDatabase::new("demo");
//! db.create_collection("library").unwrap();
//! db.add_document("library", "b1", "<book><title>TP</title></book>").unwrap();
//! let hits = db.xpath_query("library", "/book/title").unwrap();
//! assert_eq!(hits.len(), 1);
//! ```

pub mod store;
pub mod xquery;
pub mod xupdate;

pub use store::{XmlDatabase, XmlDbError};
pub use xquery::{XQuery, XQueryItem};
pub use xupdate::apply_xupdate;
