//! XUpdate: declarative XML document modification.
//!
//! Implements the XUpdate operation set used by the WS-DAIX
//! `XUpdateExecute` operation: `insert-before`, `insert-after`, `append`,
//! `update`, `remove` and `rename`, targeted by XPath `select`
//! expressions, in the classic `http://www.xmldb.org/xupdate` namespace.
//!
//! Operations are applied in document order of the modifications element;
//! each operation re-selects against the *current* state of the document,
//! per the XUpdate working draft.

use crate::store::XmlDbError;
use dais_xml::xpath::{NodePath, PathStep};
use dais_xml::{XPathContext, XPathExpr, XmlElement, XmlNode};

/// The XUpdate namespace.
pub const XUPDATE_NS: &str = "http://www.xmldb.org/xupdate";

/// Apply a `xupdate:modifications` document to `doc`. Returns the number
/// of nodes modified across all operations.
pub fn apply_xupdate(
    doc: &mut XmlElement,
    modifications: &XmlElement,
    ctx: &XPathContext,
) -> Result<usize, XmlDbError> {
    if !modifications.name.is(XUPDATE_NS, "modifications") {
        return Err(XmlDbError::Query(format!(
            "expected xupdate:modifications, found {}",
            modifications.name
        )));
    }
    let mut touched = 0;
    for op in modifications.elements() {
        if op.name.namespace != XUPDATE_NS {
            return Err(XmlDbError::Query(format!("unexpected element {}", op.name)));
        }
        let select = op
            .attribute("select")
            .ok_or_else(|| XmlDbError::Query(format!("{} missing select attribute", op.name)))?;
        let expr = XPathExpr::parse(select).map_err(|e| XmlDbError::Query(e.to_string()))?;
        let mut paths =
            expr.select_paths(doc, ctx).map_err(|e| XmlDbError::Query(e.to_string()))?;
        // Apply from the last node backwards so sibling indices stay valid
        // when inserting/removing within one operation.
        paths.reverse();
        for path in &paths {
            apply_one(doc, &op.name.local, op, path)?;
            touched += 1;
        }
    }
    Ok(touched)
}

fn apply_one(
    doc: &mut XmlElement,
    operation: &str,
    op: &XmlElement,
    path: &NodePath,
) -> Result<(), XmlDbError> {
    match operation {
        "insert-before" | "insert-after" => {
            let (parent_path, last) = split_parent(path, operation)?;
            let PathStep::Child(index) = last else {
                return Err(XmlDbError::Query(format!("{operation} cannot target an attribute")));
            };
            let parent = navigate_mut(doc, parent_path)?;
            let at = if operation == "insert-before" { index } else { index + 1 };
            if at > parent.children.len() {
                return Err(XmlDbError::Query("selected node vanished during update".into()));
            }
            for (offset, content) in content_nodes(op).into_iter().enumerate() {
                parent.children.insert(at + offset, content);
            }
            Ok(())
        }
        "append" => {
            let target = navigate_mut(doc, path)?;
            target.children.extend(content_nodes(op));
            Ok(())
        }
        "update" => {
            match path.last() {
                Some(PathStep::Attribute(_)) => {
                    let (parent_path, last) = split_parent(path, operation)?;
                    let PathStep::Attribute(index) = last else { unreachable!() };
                    let parent = navigate_mut(doc, parent_path)?;
                    let attr = parent.attributes.get_mut(index).ok_or_else(|| {
                        XmlDbError::Query("attribute vanished during update".into())
                    })?;
                    attr.value = op.text();
                    Ok(())
                }
                _ => {
                    // Element (or document element): replace content.
                    let target = navigate_mut(doc, path)?;
                    let content = content_nodes(op);
                    target.children =
                        if content.is_empty() { vec![XmlNode::Text(op.text())] } else { content };
                    Ok(())
                }
            }
        }
        "remove" => {
            if path.is_empty() {
                return Err(XmlDbError::Query("cannot remove the document element".into()));
            }
            let (parent_path, last) = split_parent(path, operation)?;
            let parent = navigate_mut(doc, parent_path)?;
            match last {
                PathStep::Child(i) => {
                    if i < parent.children.len() {
                        parent.children.remove(i);
                    }
                }
                PathStep::Attribute(i) => {
                    if i < parent.attributes.len() {
                        parent.attributes.remove(i);
                    }
                }
            }
            Ok(())
        }
        "rename" => {
            let new_name = op.text();
            let new_name = new_name.trim();
            if new_name.is_empty() {
                return Err(XmlDbError::Query("rename requires a new name".into()));
            }
            match path.last() {
                Some(PathStep::Attribute(_)) => {
                    let (parent_path, last) = split_parent(path, operation)?;
                    let PathStep::Attribute(index) = last else { unreachable!() };
                    let parent = navigate_mut(doc, parent_path)?;
                    let attr = parent.attributes.get_mut(index).ok_or_else(|| {
                        XmlDbError::Query("attribute vanished during update".into())
                    })?;
                    attr.name.local = new_name.into();
                    Ok(())
                }
                _ => {
                    let target = navigate_mut(doc, path)?;
                    target.name.local = new_name.into();
                    Ok(())
                }
            }
        }
        other => Err(XmlDbError::Query(format!("unknown XUpdate operation '{other}'"))),
    }
}

fn split_parent<'a>(
    path: &'a NodePath,
    operation: &str,
) -> Result<(&'a [PathStep], PathStep), XmlDbError> {
    match path.split_last() {
        Some((last, parent)) => Ok((parent, *last)),
        None => Err(XmlDbError::Query(format!("{operation} cannot target the document element"))),
    }
}

/// Navigate a structural path to a mutable element. Intermediate steps and
/// an element-final step are required.
fn navigate_mut<'a>(
    doc: &'a mut XmlElement,
    path: &[PathStep],
) -> Result<&'a mut XmlElement, XmlDbError> {
    let mut current = doc;
    for step in path {
        match step {
            PathStep::Child(i) => {
                let node = current
                    .children
                    .get_mut(*i)
                    .ok_or_else(|| XmlDbError::Query("path step out of range".into()))?;
                match node {
                    XmlNode::Element(e) => current = e,
                    _ => return Err(XmlDbError::Query("path step selects a non-element".into())),
                }
            }
            PathStep::Attribute(_) => {
                return Err(XmlDbError::Query("cannot navigate through an attribute".into()))
            }
        }
    }
    Ok(current)
}

/// The content nodes of an operation element (its element and text
/// children, cloned).
fn content_nodes(op: &XmlElement) -> Vec<XmlNode> {
    op.children.iter().filter(|c| !matches!(c, XmlNode::Comment(_))).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_xml::{parse, to_string};

    fn doc() -> XmlElement {
        parse("<book year='2001'><title>Old</title><author>A</author><author>B</author></book>")
            .unwrap()
    }

    fn mods(body: &str) -> XmlElement {
        parse(&format!("<xu:modifications xmlns:xu='{XUPDATE_NS}'>{body}</xu:modifications>"))
            .unwrap()
    }

    fn apply(doc: &mut XmlElement, body: &str) -> usize {
        apply_xupdate(doc, &mods(body), &XPathContext::default()).unwrap()
    }

    #[test]
    fn update_element_text() {
        let mut d = doc();
        let n = apply(&mut d, "<xu:update select='/book/title'>New</xu:update>");
        assert_eq!(n, 1);
        assert_eq!(d.child_text("", "title").as_deref(), Some("New"));
    }

    #[test]
    fn update_attribute() {
        let mut d = doc();
        apply(&mut d, "<xu:update select='/book/@year'>2024</xu:update>");
        assert_eq!(d.attribute("year"), Some("2024"));
    }

    #[test]
    fn update_with_element_content() {
        let mut d = doc();
        apply(&mut d, "<xu:update select='/book/title'><b>Bold</b></xu:update>");
        let title = d.child("", "title").unwrap();
        assert!(title.child("", "b").is_some());
    }

    #[test]
    fn remove_elements() {
        let mut d = doc();
        let n = apply(&mut d, "<xu:remove select='/book/author'/>");
        assert_eq!(n, 2);
        assert_eq!(d.children_named("", "author").count(), 0);
        assert!(d.child("", "title").is_some());
    }

    #[test]
    fn remove_attribute() {
        let mut d = doc();
        apply(&mut d, "<xu:remove select='/book/@year'/>");
        assert_eq!(d.attribute("year"), None);
    }

    #[test]
    fn insert_before_and_after() {
        let mut d = doc();
        apply(&mut d, "<xu:insert-before select='/book/title'><isbn>X</isbn></xu:insert-before>");
        assert_eq!(d.elements().next().unwrap().name.local, "isbn");
        apply(
            &mut d,
            "<xu:insert-after select='/book/title'><subtitle>S</subtitle></xu:insert-after>",
        );
        let names: Vec<&str> = d.elements().map(|e| e.name.local.as_str()).collect();
        assert_eq!(names, vec!["isbn", "title", "subtitle", "author", "author"]);
    }

    #[test]
    fn insert_before_each_match_keeps_positions() {
        let mut d = doc();
        let n = apply(&mut d, "<xu:insert-before select='/book/author'><sep/></xu:insert-before>");
        assert_eq!(n, 2);
        let names: Vec<&str> = d.elements().map(|e| e.name.local.as_str()).collect();
        assert_eq!(names, vec!["title", "sep", "author", "sep", "author"]);
    }

    #[test]
    fn append_children() {
        let mut d = doc();
        apply(&mut d, "<xu:append select='/book'><price>10</price></xu:append>");
        assert_eq!(d.child_text("", "price").as_deref(), Some("10"));
    }

    #[test]
    fn rename_element_and_attribute() {
        let mut d = doc();
        apply(&mut d, "<xu:rename select='/book/author'>writer</xu:rename>");
        assert_eq!(d.children_named("", "writer").count(), 2);
        apply(&mut d, "<xu:rename select='/book/@year'>published</xu:rename>");
        assert_eq!(d.attribute("published"), Some("2001"));
        assert_eq!(d.attribute("year"), None);
    }

    #[test]
    fn sequential_operations_see_prior_effects() {
        let mut d = doc();
        let n = apply(
            &mut d,
            "<xu:append select='/book'><tag>t1</tag></xu:append>\
             <xu:update select='/book/tag'>t2</xu:update>",
        );
        assert_eq!(n, 2);
        assert_eq!(d.child_text("", "tag").as_deref(), Some("t2"));
    }

    #[test]
    fn no_matches_is_zero_not_error() {
        let mut d = doc();
        let n = apply(&mut d, "<xu:remove select='/book/missing'/>");
        assert_eq!(n, 0);
    }

    #[test]
    fn errors() {
        let mut d = doc();
        // wrong root element
        let bad = parse("<not-mods/>").unwrap();
        assert!(apply_xupdate(&mut d, &bad, &XPathContext::default()).is_err());
        // missing select
        let m = mods("<xu:remove/>");
        assert!(apply_xupdate(&mut d, &m, &XPathContext::default()).is_err());
        // unknown operation
        let m = mods("<xu:explode select='/book'/>");
        assert!(apply_xupdate(&mut d, &m, &XPathContext::default()).is_err());
        // removing the document element
        let m = mods("<xu:remove select='/book'/>");
        assert!(apply_xupdate(&mut d, &m, &XPathContext::default()).is_err());
        // bad xpath
        let m = mods("<xu:remove select='///'/>");
        assert!(apply_xupdate(&mut d, &m, &XPathContext::default()).is_err());
    }

    #[test]
    fn namespaced_selects_use_context() {
        let mut d = parse("<r xmlns:a='urn:a'><a:x>1</a:x></r>").unwrap();
        let ctx = XPathContext::new().with_namespace("p", "urn:a");
        let m = mods("<xu:update select='//p:x'>2</xu:update>");
        let n = apply_xupdate(&mut d, &m, &ctx).unwrap();
        assert_eq!(n, 1);
        assert!(to_string(&d).contains('2'));
    }
}
