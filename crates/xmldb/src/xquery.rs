//! An XQuery FLWOR subset.
//!
//! Supports the query shape WS-DAIX's `XQueryExecute` needs:
//!
//! ```text
//! for $x in <path>            -- bind $x to each selected node
//! (let $y := <expr>)*         -- scalar bindings per iteration
//! (where <expr>)?             -- filter
//! (order by <expr> [descending])?
//! return <result>             -- an expression or an element constructor
//! ```
//!
//! plus bare XPath expressions (a query without FLWOR keywords).
//!
//! Element constructors support `{expr}` interpolation in content and
//! attribute values (`{{`/`}}` escape literal braces). Within `where`,
//! `order by`, `let` and `return` expressions, `$x` (the `for` variable)
//! denotes the bound node: `$x/price` selects its `price` children.
//! `let` variables hold scalars (a node-set value is coerced to the
//! string-value of its first node).
//!
//! Not supported (documented limitations): nested/multiple `for` clauses,
//! joins across variables, user-defined functions, and the XQuery type
//! system. These go beyond what the DAIS use cases in the paper require.

use crate::store::XmlDbError;
use dais_xml::xpath::{XPathNode, XPathValue};
use dais_xml::{XPathContext, XPathExpr, XmlElement, XmlNode};

/// One item of a query result sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum XQueryItem {
    Element(XmlElement),
    /// An atomic value (attribute value, text node or computed scalar).
    Value(String),
}

impl XQueryItem {
    /// Render the item as an element (values are wrapped in `<value>`),
    /// which is how sequence resources serve items over WS-DAIX.
    pub fn to_element(&self) -> XmlElement {
        match self {
            XQueryItem::Element(e) => e.clone(),
            XQueryItem::Value(v) => XmlElement::new_local("value").with_text(v),
        }
    }

    /// The string value of the item.
    pub fn string_value(&self) -> String {
        match self {
            XQueryItem::Element(e) => e.text(),
            XQueryItem::Value(v) => v.clone(),
        }
    }
}

/// A parsed query, reusable across documents.
#[derive(Debug, Clone)]
pub struct XQuery {
    kind: QueryKind,
    source: String,
}

#[derive(Debug, Clone)]
enum QueryKind {
    Bare(XPathExpr),
    Flwor(Flwor),
}

#[derive(Debug, Clone)]
struct Flwor {
    var: String,
    source: XPathExpr,
    lets: Vec<(String, String)>, // (name, expression source with $var intact)
    where_expr: Option<String>,
    order_by: Option<(String, bool)>, // (expression, ascending)
    ret: Return,
}

#[derive(Debug, Clone)]
enum Return {
    Expr(String),
    Constructor(Constructor),
}

#[derive(Debug, Clone)]
struct Constructor {
    name: String,
    attributes: Vec<(String, Template)>,
    content: Vec<ConstructorNode>,
}

#[derive(Debug, Clone)]
enum ConstructorNode {
    Text(String),
    Hole(String),
    Child(Constructor),
}

/// A text template with `{expr}` holes.
#[derive(Debug, Clone)]
struct Template {
    parts: Vec<ConstructorNode>, // Text and Hole only
}

impl XQuery {
    /// Parse a query.
    pub fn parse(source: &str) -> Result<XQuery, XmlDbError> {
        let trimmed = source.trim();
        if trimmed.starts_with("for ")
            || trimmed.starts_with("for\t")
            || trimmed.starts_with("for\n")
        {
            Ok(XQuery { kind: QueryKind::Flwor(parse_flwor(trimmed)?), source: source.to_string() })
        } else {
            let expr = XPathExpr::parse(trimmed).map_err(|e| XmlDbError::Query(e.to_string()))?;
            Ok(XQuery { kind: QueryKind::Bare(expr), source: source.to_string() })
        }
    }

    pub fn source(&self) -> &str {
        &self.source
    }

    /// Execute against one document.
    pub fn execute(&self, doc: &XmlElement) -> Result<Vec<XQueryItem>, XmlDbError> {
        self.execute_with(doc, &XPathContext::default())
    }

    /// Execute with namespace bindings.
    pub fn execute_with(
        &self,
        doc: &XmlElement,
        ctx: &XPathContext,
    ) -> Result<Vec<XQueryItem>, XmlDbError> {
        match &self.kind {
            QueryKind::Bare(expr) => {
                let v =
                    expr.evaluate_with(doc, ctx).map_err(|e| XmlDbError::Query(e.to_string()))?;
                Ok(value_to_items(v))
            }
            QueryKind::Flwor(f) => execute_flwor(f, doc, ctx),
        }
    }
}

fn value_to_items(v: XPathValue) -> Vec<XQueryItem> {
    match v {
        XPathValue::NodeSet(nodes) => nodes
            .into_iter()
            .filter_map(|n| match n {
                XPathNode::Element(e) | XPathNode::Root(e) => Some(XQueryItem::Element(e)),
                XPathNode::Attribute { value, .. } => Some(XQueryItem::Value(value)),
                XPathNode::Text(t) => Some(XQueryItem::Value(t)),
                XPathNode::Comment(_) => None,
            })
            .collect(),
        other => vec![XQueryItem::Value(other.to_xpath_string())],
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Scan an expression from `src[pos..]` until one of `stops` appears as a
/// standalone word at depth 0 outside quotes. Returns (expr, next_pos).
fn scan_until<'s>(src: &str, pos: usize, stops: &[&'s str]) -> (String, usize, Option<&'s str>) {
    let bytes = src.as_bytes();
    let mut i = pos;
    let mut depth = 0i32;
    let mut quote: Option<u8> = None;
    while i < bytes.len() {
        let b = bytes[i];
        if let Some(q) = quote {
            if b == q {
                quote = None;
            }
            i += 1;
            continue;
        }
        match b {
            b'\'' | b'"' => {
                quote = Some(b);
                i += 1;
            }
            // Note: '<' and '>' are comparison operators in clause
            // expressions, not nesting — constructors only occur in the
            // final return clause, which is never scanned by this function.
            b'(' | b'[' | b'{' => {
                depth += 1;
                i += 1;
            }
            b')' | b']' | b'}' => {
                depth -= 1;
                i += 1;
            }
            _ if depth == 0 && (b.is_ascii_alphabetic()) && is_word_start(bytes, i) => {
                // Candidate keyword.
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_alphabetic() {
                    j += 1;
                }
                let word = &src[i..j];
                if let Some(stop) = stop_word(stops, word) {
                    return (src[pos..i].trim().to_string(), j, Some(stop));
                }
                i = j;
            }
            _ => i += 1,
        }
    }
    (src[pos..].trim().to_string(), src.len(), None)
}

fn stop_word<'a>(stops: &[&'a str], word: &str) -> Option<&'a str> {
    stops.iter().find(|s| **s == word).copied()
}

fn is_word_start(bytes: &[u8], i: usize) -> bool {
    i == 0
        || !(bytes[i - 1].is_ascii_alphanumeric()
            || bytes[i - 1] == b'_'
            || bytes[i - 1] == b'$'
            || bytes[i - 1] == b':'
            || bytes[i - 1] == b'-'
            || bytes[i - 1] == b'@'
            || bytes[i - 1] == b'/')
}

fn parse_var(src: &str) -> Result<(String, &str), XmlDbError> {
    let s = src.trim_start();
    let Some(rest) = s.strip_prefix('$') else {
        return Err(XmlDbError::Query(format!("expected a $variable, found '{s}'")));
    };
    let end =
        rest.find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-')).unwrap_or(rest.len());
    if end == 0 {
        return Err(XmlDbError::Query("empty variable name".into()));
    }
    Ok((rest[..end].to_string(), &rest[end..]))
}

fn parse_flwor(src: &str) -> Result<Flwor, XmlDbError> {
    let Some(after_for) = src.strip_prefix("for") else {
        return Err(XmlDbError::Query("FLWOR query must start with 'for'".into()));
    };
    let (var, rest) = parse_var(after_for)?;
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("in") else {
        return Err(XmlDbError::Query("expected 'in' after for-variable".into()));
    };

    // Scan the source path, then clauses.
    let base = src.len() - rest.len();
    let stops = ["let", "where", "order", "return"];
    let (source_text, mut pos, mut stop) = scan_until(src, base, &stops);
    if source_text.is_empty() {
        return Err(XmlDbError::Query("missing path after 'in'".into()));
    }
    let source = XPathExpr::parse(&source_text).map_err(|e| XmlDbError::Query(e.to_string()))?;

    let mut lets = Vec::new();
    let mut where_expr = None;
    let mut order_by = None;
    loop {
        match stop {
            None => return Err(XmlDbError::Query("FLWOR query missing 'return'".into())),
            Some("let") => {
                let (name, rest) = parse_var(&src[pos..])?;
                let rest_trim = rest.trim_start();
                let Some(rest_trim) = rest_trim.strip_prefix(":=") else {
                    return Err(XmlDbError::Query("expected ':=' in let clause".into()));
                };
                let start = src.len() - rest_trim.len();
                let (expr, next, s) = scan_until(src, start, &stops);
                lets.push((name, expr));
                pos = next;
                stop = s;
            }
            Some("where") => {
                let (expr, next, s) = scan_until(src, pos, &["order", "return"]);
                where_expr = Some(expr);
                pos = next;
                stop = s;
            }
            Some("order") => {
                let rest = src[pos..].trim_start();
                let Some(rest) = rest.strip_prefix("by") else {
                    return Err(XmlDbError::Query("expected 'by' after 'order'".into()));
                };
                let start = src.len() - rest.len();
                let (expr, next, s) =
                    scan_until(src, start, &["ascending", "descending", "return"]);
                let (ascending, pos2, stop2) = match s {
                    Some("descending") => {
                        let (_, n, s2) = scan_until(src, next, &["return"]);
                        (false, n, s2)
                    }
                    Some("ascending") => {
                        let (_, n, s2) = scan_until(src, next, &["return"]);
                        (true, n, s2)
                    }
                    other => (true, next, other),
                };
                order_by = Some((expr, ascending));
                pos = pos2;
                stop = stop2;
            }
            Some("return") => {
                let ret_src = src[pos..].trim();
                if ret_src.is_empty() {
                    return Err(XmlDbError::Query("empty return clause".into()));
                }
                let ret = if ret_src.starts_with('<') {
                    let (c, rest) = parse_constructor(ret_src)?;
                    if !rest.trim().is_empty() {
                        return Err(XmlDbError::Query(format!(
                            "unexpected content after constructor: '{}'",
                            rest.trim()
                        )));
                    }
                    Return::Constructor(c)
                } else {
                    Return::Expr(ret_src.to_string())
                };
                return Ok(Flwor { var, source, lets, where_expr, order_by, ret });
            }
            Some(other) => return Err(XmlDbError::Query(format!("unexpected clause '{other}'"))),
        }
    }
}

/// Parse an element constructor, returning it and the remaining input.
fn parse_constructor(src: &str) -> Result<(Constructor, &str), XmlDbError> {
    let err = |m: &str| XmlDbError::Query(format!("constructor: {m}"));
    let s = src.strip_prefix('<').ok_or_else(|| err("expected '<'"))?;
    let name_end = s
        .find(|c: char| c.is_whitespace() || c == '>' || c == '/')
        .ok_or_else(|| err("unterminated start tag"))?;
    let name = s[..name_end].to_string();
    if name.is_empty() {
        return Err(err("empty element name"));
    }
    let mut rest = &s[name_end..];

    // Attributes.
    let mut attributes = Vec::new();
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix("/>") {
            return Ok((Constructor { name, attributes, content: Vec::new() }, r));
        }
        if let Some(r) = rest.strip_prefix('>') {
            rest = r;
            break;
        }
        let eq = rest.find('=').ok_or_else(|| err("malformed attribute"))?;
        let attr_name = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].trim_start();
        let quote = rest
            .chars()
            .next()
            .filter(|c| *c == '"' || *c == '\'')
            .ok_or_else(|| err("unquoted attribute value"))?;
        let after = &rest[1..];
        let close = after.find(quote).ok_or_else(|| err("unterminated attribute value"))?;
        let raw_value = &after[..close];
        attributes.push((attr_name, parse_template(raw_value)?));
        rest = &after[close + 1..];
    }

    // Content until matching close tag.
    let mut content = Vec::new();
    let close_tag = format!("</{name}>");
    loop {
        if rest.starts_with(&close_tag) {
            let after = &rest[close_tag.len()..];
            return Ok((Constructor { name, attributes, content }, after));
        }
        if rest.is_empty() {
            return Err(err(&format!("missing {close_tag}")));
        }
        if rest.starts_with("{{") {
            content.push(ConstructorNode::Text("{".into()));
            rest = &rest[2..];
        } else if rest.starts_with("}}") {
            content.push(ConstructorNode::Text("}".into()));
            rest = &rest[2..];
        } else if let Some(r) = rest.strip_prefix('{') {
            let close = find_brace_close(r).ok_or_else(|| err("unterminated { expression"))?;
            content.push(ConstructorNode::Hole(r[..close].trim().to_string()));
            rest = &r[close + 1..];
        } else if rest.starts_with('<') {
            let (child, r) = parse_constructor(rest)?;
            content.push(ConstructorNode::Child(child));
            rest = r;
        } else {
            // Text run until a special character.
            let end = rest.find(['<', '{', '}']).unwrap_or(rest.len());
            content.push(ConstructorNode::Text(rest[..end].to_string()));
            rest = &rest[end..];
            if rest.starts_with('}') && !rest.starts_with("}}") {
                return Err(err("stray '}' in content"));
            }
        }
    }
}

fn find_brace_close(s: &str) -> Option<usize> {
    let mut depth = 0;
    let mut quote: Option<char> = None;
    for (i, c) in s.char_indices() {
        match (quote, c) {
            (Some(q), c) if c == q => quote = None,
            (Some(_), _) => {}
            (None, '\'') | (None, '"') => quote = Some(c),
            (None, '{') => depth += 1,
            (None, '}') => {
                if depth == 0 {
                    return Some(i);
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    None
}

fn parse_template(raw: &str) -> Result<Template, XmlDbError> {
    let mut parts = Vec::new();
    let mut rest = raw;
    while !rest.is_empty() {
        if rest.starts_with("{{") {
            parts.push(ConstructorNode::Text("{".into()));
            rest = &rest[2..];
        } else if rest.starts_with("}}") {
            parts.push(ConstructorNode::Text("}".into()));
            rest = &rest[2..];
        } else if let Some(r) = rest.strip_prefix('{') {
            let close = find_brace_close(r).ok_or_else(|| {
                XmlDbError::Query("unterminated { expression in attribute".into())
            })?;
            parts.push(ConstructorNode::Hole(r[..close].trim().to_string()));
            rest = &r[close + 1..];
        } else {
            let end = rest.find(['{', '}']).unwrap_or(rest.len());
            parts.push(ConstructorNode::Text(rest[..end].to_string()));
            rest = &rest[end..];
        }
    }
    Ok(Template { parts })
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// Replace `$name` with `.` in an expression (exact-name matches only).
fn substitute_var(expr: &str, name: &str) -> String {
    let needle = format!("${name}");
    let mut out = String::with_capacity(expr.len());
    let mut rest = expr;
    while let Some(i) = rest.find(&needle) {
        let after = &rest[i + needle.len()..];
        let boundary = after
            .chars()
            .next()
            .map(|c| !(c.is_alphanumeric() || c == '_' || c == '-'))
            .unwrap_or(true);
        out.push_str(&rest[..i]);
        if boundary {
            out.push('.');
            rest = after;
        } else {
            out.push_str(&needle);
            rest = after;
        }
    }
    out.push_str(rest);
    out
}

/// Evaluate an expression in the scope of the for-binding: `$var` becomes
/// `.` and the bound element is the context node. `let` variables are
/// already in `ctx`.
fn eval_in_binding(
    expr_src: &str,
    var: &str,
    binding: &XmlElement,
    ctx: &XPathContext,
) -> Result<XPathValue, XmlDbError> {
    let substituted = substitute_var(expr_src, var);
    let expr = XPathExpr::parse(&substituted).map_err(|e| XmlDbError::Query(e.to_string()))?;
    expr.evaluate_element_context(binding, ctx).map_err(|e| XmlDbError::Query(e.to_string()))
}

fn execute_flwor(
    f: &Flwor,
    doc: &XmlElement,
    base_ctx: &XPathContext,
) -> Result<Vec<XQueryItem>, XmlDbError> {
    // Bind $var to each selected element.
    let bindings = match f
        .source
        .evaluate_with(doc, base_ctx)
        .map_err(|e| XmlDbError::Query(e.to_string()))?
    {
        XPathValue::NodeSet(nodes) => nodes
            .into_iter()
            .filter_map(|n| match n {
                XPathNode::Element(e) | XPathNode::Root(e) => Some(e),
                _ => None,
            })
            .collect::<Vec<_>>(),
        _ => return Err(XmlDbError::Query("for-clause path must select elements".into())),
    };

    struct Candidate {
        binding: XmlElement,
        ctx: XPathContext,
        order_key: Option<XPathValue>,
    }

    let mut candidates = Vec::new();
    for binding in bindings {
        // Evaluate let clauses into scalar variables.
        let mut ctx = base_ctx.clone();
        for (name, expr_src) in &f.lets {
            let v = eval_in_binding(expr_src, &f.var, &binding, &ctx)?;
            let scalar = match v {
                XPathValue::NodeSet(nodes) => {
                    XPathValue::String(nodes.first().map(|n| n.string_value()).unwrap_or_default())
                }
                other => other,
            };
            ctx.bind_variable(name.clone(), scalar);
        }
        // Where.
        if let Some(w) = &f.where_expr {
            if !eval_in_binding(w, &f.var, &binding, &ctx)?.to_bool() {
                continue;
            }
        }
        // Order key.
        let order_key = match &f.order_by {
            Some((expr, _)) => Some(eval_in_binding(expr, &f.var, &binding, &ctx)?),
            None => None,
        };
        candidates.push(Candidate { binding, ctx, order_key });
    }

    if let Some((_, ascending)) = &f.order_by {
        candidates.sort_by(|a, b| {
            let (ka, kb) = match (a.order_key.as_ref(), b.order_key.as_ref()) {
                (Some(ka), Some(kb)) => (ka, kb),
                _ => return std::cmp::Ordering::Equal,
            };
            let (na, nb) = (ka.to_number(), kb.to_number());
            let ord = if !na.is_nan() && !nb.is_nan() {
                na.partial_cmp(&nb).unwrap_or(std::cmp::Ordering::Equal)
            } else {
                ka.to_xpath_string().cmp(&kb.to_xpath_string())
            };
            if *ascending {
                ord
            } else {
                ord.reverse()
            }
        });
    }

    // Return.
    let mut out = Vec::new();
    for c in candidates {
        match &f.ret {
            Return::Expr(src) => {
                let v = eval_in_binding(src, &f.var, &c.binding, &c.ctx)?;
                out.extend(value_to_items(v));
            }
            Return::Constructor(cons) => {
                out.push(XQueryItem::Element(build_constructor(cons, &f.var, &c.binding, &c.ctx)?));
            }
        }
    }
    Ok(out)
}

fn build_constructor(
    cons: &Constructor,
    var: &str,
    binding: &XmlElement,
    ctx: &XPathContext,
) -> Result<XmlElement, XmlDbError> {
    let mut element = XmlElement::new_local(&cons.name);
    for (name, template) in &cons.attributes {
        let mut value = String::new();
        for part in &template.parts {
            match part {
                ConstructorNode::Text(t) => value.push_str(t),
                ConstructorNode::Hole(expr) => {
                    value.push_str(&eval_in_binding(expr, var, binding, ctx)?.to_xpath_string())
                }
                ConstructorNode::Child(_) => unreachable!("templates hold no children"),
            }
        }
        element.set_attr(name.clone(), value);
    }
    for node in &cons.content {
        match node {
            ConstructorNode::Text(t) => {
                if !t.trim().is_empty() {
                    element.children.push(XmlNode::Text(t.clone()));
                }
            }
            ConstructorNode::Child(c) => {
                element.push(build_constructor(c, var, binding, ctx)?);
            }
            ConstructorNode::Hole(expr) => match eval_in_binding(expr, var, binding, ctx)? {
                XPathValue::NodeSet(nodes) => {
                    for n in nodes {
                        match n {
                            XPathNode::Element(e) | XPathNode::Root(e) => element.push(e),
                            XPathNode::Attribute { value, .. } => {
                                element.children.push(XmlNode::Text(value))
                            }
                            XPathNode::Text(t) => element.children.push(XmlNode::Text(t)),
                            XPathNode::Comment(_) => {}
                        }
                    }
                }
                other => element.children.push(XmlNode::Text(other.to_xpath_string())),
            },
        }
    }
    Ok(element)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_xml::parse;

    fn doc() -> XmlElement {
        parse(
            "<catalog>\
               <book><title>TP</title><price>50</price></book>\
               <book><title>DDIA</title><price>40</price></book>\
               <book><title>OSTEP</title><price>0</price></book>\
             </catalog>",
        )
        .unwrap()
    }

    fn run(q: &str) -> Vec<XQueryItem> {
        XQuery::parse(q).unwrap().execute(&doc()).unwrap()
    }

    #[test]
    fn bare_xpath_query() {
        let items = run("//book/title");
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].string_value(), "TP");
    }

    #[test]
    fn simple_flwor() {
        let items = run("for $b in //book return $b/title");
        assert_eq!(items.len(), 3);
        assert!(matches!(&items[0], XQueryItem::Element(e) if e.name.local == "title"));
    }

    #[test]
    fn where_clause() {
        let items = run("for $b in //book where $b/price > 30 return $b/title");
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn order_by() {
        let items = run("for $b in //book order by $b/price return $b/title");
        let titles: Vec<String> = items.iter().map(XQueryItem::string_value).collect();
        assert_eq!(titles, vec!["OSTEP", "DDIA", "TP"]);
        let items = run("for $b in //book order by $b/price descending return $b/title");
        assert_eq!(items[0].string_value(), "TP");
    }

    #[test]
    fn order_by_string_key() {
        let items = run("for $b in //book order by $b/title return $b/price");
        let prices: Vec<String> = items.iter().map(XQueryItem::string_value).collect();
        assert_eq!(prices, vec!["40", "0", "50"]); // DDIA, OSTEP, TP
    }

    #[test]
    fn let_clause() {
        let items = run("for $b in //book let $p := $b/price where $p >= 40 return $b/title");
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn constructor_return() {
        let items = run("for $b in //book where $b/price > 30 \
             return <item cost=\"{$b/price}\"><name>{$b/title/text()}</name></item>");
        assert_eq!(items.len(), 2);
        let XQueryItem::Element(e) = &items[0] else { panic!() };
        assert_eq!(e.name.local, "item");
        assert_eq!(e.attribute("cost"), Some("50"));
        assert_eq!(e.child_text("", "name").as_deref(), Some("TP"));
    }

    #[test]
    fn constructor_with_node_interpolation() {
        let items = run("for $b in //book[price=50] return <wrap>{$b/title}</wrap>");
        let XQueryItem::Element(e) = &items[0] else { panic!() };
        assert!(e.child("", "title").is_some());
    }

    #[test]
    fn constructor_static_content_and_escapes() {
        let items = run("for $b in //book[price=50] return <r a=\"x{{y}}\">lit {{n}}</r>");
        let XQueryItem::Element(e) = &items[0] else { panic!() };
        assert_eq!(e.attribute("a"), Some("x{y}"));
        assert_eq!(e.text(), "lit {n}");
    }

    #[test]
    fn nested_constructors() {
        let items = run("for $b in //book[price=40] return <a><b><c>{$b/title/text()}</c></b></a>");
        let XQueryItem::Element(e) = &items[0] else { panic!() };
        assert_eq!(e.child("", "b").unwrap().child("", "c").unwrap().text(), "DDIA");
    }

    #[test]
    fn scalar_return_expressions() {
        let items = run("for $b in //book return count($b/title)");
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].string_value(), "1");
    }

    #[test]
    fn empty_result_ok() {
        assert!(run("for $b in //missing return $b").is_empty());
        assert!(run("for $b in //book where $b/price > 1000 return $b").is_empty());
    }

    #[test]
    fn variable_name_boundaries() {
        // $b vs $bk must not be confused.
        let q = "for $b in //book where $b/price > 30 return $b/title";
        assert_eq!(substitute_var(q, "bk"), q);
        assert!(substitute_var(q, "b").contains("./price"));
    }

    #[test]
    fn parse_errors() {
        assert!(XQuery::parse("for $b //book return $b").is_err()); // missing in
        assert!(XQuery::parse("for $b in //book").is_err()); // missing return
        assert!(XQuery::parse("for $b in //book return <a>{$b").is_err()); // bad constructor
        assert!(XQuery::parse("for in //book return 1").is_err()); // missing var
        assert!(XQuery::parse("///").is_err()); // bad bare xpath
    }

    #[test]
    fn keywords_inside_strings_not_clauses() {
        // 'return' inside a string literal must not terminate the where
        // clause scan.
        let items = run("for $b in //book where $b/title != 'return' return $b/title");
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn item_to_element_wraps_values() {
        let item = XQueryItem::Value("42".into());
        let e = item.to_element();
        assert_eq!(e.name.local, "value");
        assert_eq!(e.text(), "42");
    }
}
