//! The collection tree and the thread-safe database façade.

use dais_util::sync::RwLock;
use dais_xml::{parse, XPathContext, XPathExpr, XPathValue, XmlElement};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors raised by the XML store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlDbError {
    NoSuchCollection(String),
    CollectionExists(String),
    NoSuchDocument(String),
    DocumentExists(String),
    InvalidName(String),
    Xml(String),
    Query(String),
}

impl fmt::Display for XmlDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlDbError::NoSuchCollection(c) => write!(f, "no such collection: {c}"),
            XmlDbError::CollectionExists(c) => write!(f, "collection already exists: {c}"),
            XmlDbError::NoSuchDocument(d) => write!(f, "no such document: {d}"),
            XmlDbError::DocumentExists(d) => write!(f, "document already exists: {d}"),
            XmlDbError::InvalidName(n) => write!(f, "invalid name: {n}"),
            XmlDbError::Xml(m) => write!(f, "XML error: {m}"),
            XmlDbError::Query(m) => write!(f, "query error: {m}"),
        }
    }
}

impl std::error::Error for XmlDbError {}

/// A collection: documents plus subcollections, both name-keyed.
#[derive(Debug, Clone, Default)]
pub struct Collection {
    documents: BTreeMap<String, XmlElement>,
    subcollections: BTreeMap<String, Collection>,
}

impl Collection {
    fn resolve(&self, path: &[&str]) -> Option<&Collection> {
        match path.split_first() {
            None => Some(self),
            Some((head, rest)) => self.subcollections.get(*head).and_then(|c| c.resolve(rest)),
        }
    }

    fn resolve_mut(&mut self, path: &[&str]) -> Option<&mut Collection> {
        match path.split_first() {
            None => Some(self),
            Some((head, rest)) => {
                self.subcollections.get_mut(*head).and_then(|c| c.resolve_mut(rest))
            }
        }
    }

    fn document_count_recursive(&self) -> usize {
        self.documents.len()
            + self.subcollections.values().map(Collection::document_count_recursive).sum::<usize>()
    }
}

fn split_path(path: &str) -> Vec<&str> {
    path.split('/').filter(|s| !s.is_empty()).collect()
}

fn valid_segment(s: &str) -> bool {
    !s.is_empty() && !s.contains('/') && s.trim() == s
}

/// A thread-safe XML database. Cloning shares state.
#[derive(Clone)]
pub struct XmlDatabase {
    name: String,
    root: Arc<RwLock<Collection>>,
}

impl XmlDatabase {
    pub fn new(name: impl Into<String>) -> XmlDatabase {
        XmlDatabase { name: name.into(), root: Arc::new(RwLock::new(Collection::default())) }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Create a collection at `path`; all ancestors must already exist
    /// except the final segment.
    pub fn create_collection(&self, path: &str) -> Result<(), XmlDbError> {
        let segments = split_path(path);
        let Some((last, ancestors)) = segments.split_last() else {
            return Err(XmlDbError::InvalidName(path.to_string()));
        };
        if !valid_segment(last) {
            return Err(XmlDbError::InvalidName((*last).to_string()));
        }
        let mut root = self.root.write();
        let parent = root
            .resolve_mut(ancestors)
            .ok_or_else(|| XmlDbError::NoSuchCollection(ancestors.join("/")))?;
        if parent.subcollections.contains_key(*last) {
            return Err(XmlDbError::CollectionExists(path.to_string()));
        }
        parent.subcollections.insert((*last).to_string(), Collection::default());
        Ok(())
    }

    /// Remove a collection (and everything beneath it).
    pub fn remove_collection(&self, path: &str) -> Result<(), XmlDbError> {
        let segments = split_path(path);
        let Some((last, ancestors)) = segments.split_last() else {
            return Err(XmlDbError::InvalidName(path.to_string()));
        };
        let mut root = self.root.write();
        let parent = root
            .resolve_mut(ancestors)
            .ok_or_else(|| XmlDbError::NoSuchCollection(ancestors.join("/")))?;
        parent
            .subcollections
            .remove(*last)
            .map(|_| ())
            .ok_or_else(|| XmlDbError::NoSuchCollection(path.to_string()))
    }

    pub fn has_collection(&self, path: &str) -> bool {
        self.root.read().resolve(&split_path(path)).is_some()
    }

    /// Names of the subcollections of `path`.
    pub fn list_collections(&self, path: &str) -> Result<Vec<String>, XmlDbError> {
        let root = self.root.read();
        let c = root
            .resolve(&split_path(path))
            .ok_or_else(|| XmlDbError::NoSuchCollection(path.to_string()))?;
        Ok(c.subcollections.keys().cloned().collect())
    }

    /// Add a document (parsed from text) to a collection.
    pub fn add_document(&self, collection: &str, name: &str, xml: &str) -> Result<(), XmlDbError> {
        let doc = parse(xml).map_err(|e| XmlDbError::Xml(e.to_string()))?;
        self.add_document_element(collection, name, doc)
    }

    /// Add an already-parsed document.
    pub fn add_document_element(
        &self,
        collection: &str,
        name: &str,
        doc: XmlElement,
    ) -> Result<(), XmlDbError> {
        if !valid_segment(name) {
            return Err(XmlDbError::InvalidName(name.to_string()));
        }
        let mut root = self.root.write();
        let c = root
            .resolve_mut(&split_path(collection))
            .ok_or_else(|| XmlDbError::NoSuchCollection(collection.to_string()))?;
        if c.documents.contains_key(name) {
            return Err(XmlDbError::DocumentExists(name.to_string()));
        }
        c.documents.insert(name.to_string(), doc);
        Ok(())
    }

    /// Replace a document wholesale (used by XUpdate).
    pub fn replace_document(
        &self,
        collection: &str,
        name: &str,
        doc: XmlElement,
    ) -> Result<(), XmlDbError> {
        let mut root = self.root.write();
        let c = root
            .resolve_mut(&split_path(collection))
            .ok_or_else(|| XmlDbError::NoSuchCollection(collection.to_string()))?;
        if !c.documents.contains_key(name) {
            return Err(XmlDbError::NoSuchDocument(name.to_string()));
        }
        c.documents.insert(name.to_string(), doc);
        Ok(())
    }

    pub fn get_document(&self, collection: &str, name: &str) -> Result<XmlElement, XmlDbError> {
        let root = self.root.read();
        let c = root
            .resolve(&split_path(collection))
            .ok_or_else(|| XmlDbError::NoSuchCollection(collection.to_string()))?;
        c.documents.get(name).cloned().ok_or_else(|| XmlDbError::NoSuchDocument(name.to_string()))
    }

    pub fn remove_document(&self, collection: &str, name: &str) -> Result<(), XmlDbError> {
        let mut root = self.root.write();
        let c = root
            .resolve_mut(&split_path(collection))
            .ok_or_else(|| XmlDbError::NoSuchCollection(collection.to_string()))?;
        c.documents
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| XmlDbError::NoSuchDocument(name.to_string()))
    }

    /// Names of the documents directly in `collection`.
    pub fn list_documents(&self, collection: &str) -> Result<Vec<String>, XmlDbError> {
        let root = self.root.read();
        let c = root
            .resolve(&split_path(collection))
            .ok_or_else(|| XmlDbError::NoSuchCollection(collection.to_string()))?;
        Ok(c.documents.keys().cloned().collect())
    }

    /// Total number of documents in the database.
    pub fn document_count(&self) -> usize {
        self.root.read().document_count_recursive()
    }

    /// Run an XPath expression over every document in a collection
    /// (non-recursive), concatenating node results in document-name order.
    pub fn xpath_query(
        &self,
        collection: &str,
        xpath: &str,
    ) -> Result<Vec<XmlElement>, XmlDbError> {
        self.xpath_query_with(collection, xpath, &XPathContext::default())
    }

    /// As [`XmlDatabase::xpath_query`] with namespace/variable bindings.
    pub fn xpath_query_with(
        &self,
        collection: &str,
        xpath: &str,
        ctx: &XPathContext,
    ) -> Result<Vec<XmlElement>, XmlDbError> {
        let expr = XPathExpr::parse(xpath).map_err(|e| XmlDbError::Query(e.to_string()))?;
        let root = self.root.read();
        let c = root
            .resolve(&split_path(collection))
            .ok_or_else(|| XmlDbError::NoSuchCollection(collection.to_string()))?;
        let mut out = Vec::new();
        for doc in c.documents.values() {
            match expr.evaluate_with(doc, ctx).map_err(|e| XmlDbError::Query(e.to_string()))? {
                XPathValue::NodeSet(nodes) => {
                    for n in nodes {
                        match n {
                            dais_xml::xpath::XPathNode::Element(e)
                            | dais_xml::xpath::XPathNode::Root(e) => out.push(e),
                            dais_xml::xpath::XPathNode::Text(t) => {
                                out.push(XmlElement::new_local("text").with_text(t))
                            }
                            dais_xml::xpath::XPathNode::Attribute { name, value } => out.push(
                                XmlElement::new_local("attribute")
                                    .with_attr("name", name.lexical())
                                    .with_text(value),
                            ),
                            dais_xml::xpath::XPathNode::Comment(_) => {}
                        }
                    }
                }
                // Scalar results are wrapped so collection queries always
                // return elements (one per document).
                XPathValue::Boolean(b) => {
                    out.push(XmlElement::new_local("value").with_text(b.to_string()))
                }
                XPathValue::Number(n) => out.push(
                    XmlElement::new_local("value")
                        .with_text(dais_xml::xpath::XPathValue::Number(n).to_xpath_string()),
                ),
                XPathValue::String(s) => out.push(XmlElement::new_local("value").with_text(s)),
            }
        }
        Ok(out)
    }

    /// Visit each document in a collection (name + element).
    pub fn for_each_document<R>(
        &self,
        collection: &str,
        mut f: impl FnMut(&str, &XmlElement) -> Result<(), R>,
    ) -> Result<Result<(), R>, XmlDbError> {
        let root = self.root.read();
        let c = root
            .resolve(&split_path(collection))
            .ok_or_else(|| XmlDbError::NoSuchCollection(collection.to_string()))?;
        for (name, doc) in &c.documents {
            if let Err(e) = f(name, doc) {
                return Ok(Err(e));
            }
        }
        Ok(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> XmlDatabase {
        let db = XmlDatabase::new("test");
        db.create_collection("lib").unwrap();
        db.create_collection("lib/archive").unwrap();
        db.add_document("lib", "b1", "<book year='2001'><title>A</title></book>").unwrap();
        db.add_document("lib", "b2", "<book year='2005'><title>B</title></book>").unwrap();
        db.add_document("lib/archive", "old", "<book year='1990'><title>C</title></book>").unwrap();
        db
    }

    #[test]
    fn collection_management() {
        let db = seeded();
        assert!(db.has_collection("lib"));
        assert!(db.has_collection("lib/archive"));
        assert!(!db.has_collection("nope"));
        assert_eq!(db.list_collections("lib").unwrap(), vec!["archive"]);
        assert_eq!(db.list_collections("").unwrap(), vec!["lib"]);
        assert_eq!(db.document_count(), 3);
        db.remove_collection("lib/archive").unwrap();
        assert_eq!(db.document_count(), 2);
        assert!(db.remove_collection("lib/archive").is_err());
    }

    #[test]
    fn collection_creation_errors() {
        let db = seeded();
        assert_eq!(
            db.create_collection("lib").unwrap_err(),
            XmlDbError::CollectionExists("lib".into())
        );
        assert!(matches!(
            db.create_collection("missing/child"),
            Err(XmlDbError::NoSuchCollection(_))
        ));
        assert!(matches!(db.create_collection(""), Err(XmlDbError::InvalidName(_))));
    }

    #[test]
    fn document_management() {
        let db = seeded();
        assert_eq!(db.list_documents("lib").unwrap(), vec!["b1", "b2"]);
        let doc = db.get_document("lib", "b1").unwrap();
        assert_eq!(doc.child_text("", "title").as_deref(), Some("A"));
        assert!(matches!(db.get_document("lib", "zz"), Err(XmlDbError::NoSuchDocument(_))));
        assert!(matches!(
            db.add_document("lib", "b1", "<dup/>"),
            Err(XmlDbError::DocumentExists(_))
        ));
        assert!(matches!(db.add_document("lib", "bad", "<unclosed"), Err(XmlDbError::Xml(_))));
        db.remove_document("lib", "b1").unwrap();
        assert!(db.get_document("lib", "b1").is_err());
    }

    #[test]
    fn replace_document() {
        let db = seeded();
        let new_doc = parse("<book year='2020'><title>A2</title></book>").unwrap();
        db.replace_document("lib", "b1", new_doc.clone()).unwrap();
        assert_eq!(db.get_document("lib", "b1").unwrap(), new_doc);
        assert!(db.replace_document("lib", "zz", new_doc).is_err());
    }

    #[test]
    fn xpath_over_collection() {
        let db = seeded();
        let titles = db.xpath_query("lib", "/book/title").unwrap();
        assert_eq!(titles.len(), 2);
        let hits = db.xpath_query("lib", "/book[@year > 2003]").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].child_text("", "title").as_deref(), Some("B"));
        // Archive not searched (non-recursive).
        assert_eq!(db.xpath_query("lib", "/book[@year < 2000]").unwrap().len(), 0);
        assert_eq!(db.xpath_query("lib/archive", "/book").unwrap().len(), 1);
    }

    #[test]
    fn xpath_scalar_results_wrapped() {
        let db = seeded();
        let counts = db.xpath_query("lib", "count(/book/title)").unwrap();
        assert_eq!(counts.len(), 2); // one per document
        assert_eq!(counts[0].text(), "1");
    }

    #[test]
    fn xpath_errors_are_reported() {
        let db = seeded();
        assert!(matches!(db.xpath_query("lib", "///"), Err(XmlDbError::Query(_))));
        assert!(matches!(db.xpath_query("none", "/x"), Err(XmlDbError::NoSuchCollection(_))));
    }

    #[test]
    fn concurrent_access() {
        let db = seeded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for j in 0..25 {
                        let name = format!("t{i}_{j}");
                        db.add_document("lib", &name, "<x/>").unwrap();
                        let _ = db.xpath_query("lib", "/book").unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.document_count(), 3 + 100);
    }
}
