//! Session and script-level behaviours: statement splitting, session
//! isolation visibility (the READ UNCOMMITTED honesty), and prepared
//! statement reuse through `execute_stmt`.

use dais_sql::db::split_statements;
use dais_sql::parser::parse_statement;
use dais_sql::{Database, Value};

#[test]
fn split_statements_handles_strings_and_whitespace() {
    let script = "INSERT INTO t VALUES ('a;b');\n  SELECT 1 ;;\nSELECT 2";
    let parts = split_statements(script);
    assert_eq!(parts.len(), 3);
    assert_eq!(parts[0], "INSERT INTO t VALUES ('a;b')");
    assert_eq!(parts[1], "SELECT 1");
    assert_eq!(parts[2], "SELECT 2");
    assert!(split_statements("   ").is_empty());
}

#[test]
fn execute_script_stops_at_first_error() {
    let db = Database::new("s");
    let err = db
        .execute_script(
            "CREATE TABLE t (a INTEGER);
             INSERT INTO t VALUES (1);
             THIS IS NOT SQL;
             INSERT INTO t VALUES (2);",
        )
        .unwrap_err();
    assert_eq!(err.sqlstate(), "42601");
    // Statements before the error applied; after did not.
    let r = db.execute("SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(r.rowset().unwrap().rows[0][0], Value::Int(1));
}

#[test]
fn uncommitted_writes_visible_to_other_sessions() {
    // The engine documents READ UNCOMMITTED: a write inside an open
    // transaction is visible to other sessions until rolled back. The
    // DAIS layer advertises exactly this through TransactionIsolation.
    let db = Database::new("s");
    db.execute("CREATE TABLE t (a INTEGER)", &[]).unwrap();
    let mut writer = db.connect();
    writer.execute("BEGIN", &[]).unwrap();
    writer.execute("INSERT INTO t VALUES (1)", &[]).unwrap();

    let reader = db.connect();
    drop(reader); // readers need no session state for autocommit reads
    let seen = db.execute("SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(seen.rowset().unwrap().rows[0][0], Value::Int(1), "dirty read expected");

    writer.execute("ROLLBACK", &[]).unwrap();
    let seen = db.execute("SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(seen.rowset().unwrap().rows[0][0], Value::Int(0));
}

#[test]
fn parsed_statements_are_reusable() {
    let db = Database::new("s");
    db.execute("CREATE TABLE t (a INTEGER)", &[]).unwrap();
    let insert = parse_statement("INSERT INTO t VALUES (?)").unwrap();
    let mut session = db.connect();
    for i in 0..10 {
        session.execute_stmt(&insert, &[Value::Int(i)]).unwrap();
    }
    let select = parse_statement("SELECT COUNT(*) FROM t WHERE a >= ?").unwrap();
    let r = session.execute_stmt(&select, &[Value::Int(5)]).unwrap();
    assert_eq!(r.rowset().unwrap().rows[0][0], Value::Int(5));
    // Missing parameter still errors per execution.
    assert!(session.execute_stmt(&select, &[]).is_err());
}

#[test]
fn two_sessions_interleave_transactions() {
    let db = Database::new("s");
    db.execute("CREATE TABLE t (a INTEGER)", &[]).unwrap();
    let mut s1 = db.connect();
    let mut s2 = db.connect();
    s1.execute("BEGIN", &[]).unwrap();
    s2.execute("BEGIN", &[]).unwrap();
    s1.execute("INSERT INTO t VALUES (1)", &[]).unwrap();
    s2.execute("INSERT INTO t VALUES (2)", &[]).unwrap();
    s1.execute("COMMIT", &[]).unwrap();
    s2.execute("ROLLBACK", &[]).unwrap();
    let r = db.execute("SELECT a FROM t ORDER BY a", &[]).unwrap();
    assert_eq!(r.rowset().unwrap().rows, vec![vec![Value::Int(1)]]);
}

#[test]
fn in_transaction_flag() {
    let db = Database::new("s");
    let mut s = db.connect();
    assert!(!s.in_transaction());
    s.execute("BEGIN", &[]).unwrap();
    assert!(s.in_transaction());
    s.execute("COMMIT", &[]).unwrap();
    assert!(!s.in_transaction());
}
