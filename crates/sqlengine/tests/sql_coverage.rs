//! Scenario coverage for the SQL engine: multi-table analytics over a
//! small orders schema (the kind of workload a DAIS service fronts).

use dais_sql::{Database, SqlErrorKind, Value};

fn shop() -> Database {
    let db = Database::new("shop");
    db.execute_script(
        "CREATE TABLE customer (
             id INTEGER PRIMARY KEY,
             name VARCHAR NOT NULL,
             region VARCHAR NOT NULL
         );
         CREATE TABLE product (
             id INTEGER PRIMARY KEY,
             name VARCHAR NOT NULL UNIQUE,
             price DOUBLE NOT NULL,
             CHECK (price > 0)
         );
         CREATE TABLE orders (
             id INTEGER PRIMARY KEY,
             customer_id INTEGER NOT NULL REFERENCES customer (id),
             product_id INTEGER NOT NULL REFERENCES product (id),
             quantity INTEGER NOT NULL DEFAULT 1,
             CHECK (quantity > 0)
         );
         INSERT INTO customer VALUES
             (1, 'ada', 'north'), (2, 'bob', 'south'), (3, 'cyd', 'north'), (4, 'dee', 'east');
         INSERT INTO product VALUES
             (10, 'anvil', 100.0), (11, 'rope', 5.0), (12, 'rocket', 250.0), (13, 'paint', 15.0);
         INSERT INTO orders (id, customer_id, product_id, quantity) VALUES
             (100, 1, 10, 1), (101, 1, 11, 4), (102, 2, 12, 1),
             (103, 3, 11, 2), (104, 3, 13, 3), (105, 1, 12, 2);",
    )
    .unwrap();
    db
}

fn rows(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    db.execute(sql, &[]).unwrap().rowset().unwrap().rows.clone()
}

#[test]
fn three_way_join_with_aggregation() {
    let db = shop();
    let r = rows(
        &db,
        "SELECT c.region, SUM(p.price * o.quantity) AS revenue
         FROM orders o
         JOIN customer c ON o.customer_id = c.id
         JOIN product p ON o.product_id = p.id
         GROUP BY c.region
         ORDER BY revenue DESC",
    );
    // north: ada(100 + 4*5 + 2*250) + cyd(2*5 + 3*15) = 620 + 55 = 675
    // south: bob 250; east: none (dee never ordered)
    assert_eq!(r.len(), 2);
    assert_eq!(r[0][0], Value::Str("north".into()));
    assert_eq!(r[0][1], Value::Double(675.0));
    assert_eq!(r[1][1], Value::Double(250.0));
}

#[test]
fn left_join_finds_customers_without_orders() {
    let db = shop();
    let r = rows(
        &db,
        "SELECT c.name FROM customer c
         LEFT JOIN orders o ON o.customer_id = c.id
         WHERE o.id IS NULL",
    );
    assert_eq!(r, vec![vec![Value::Str("dee".into())]]);
}

#[test]
fn self_join() {
    let db = shop();
    // Pairs of customers from the same region.
    let r = rows(
        &db,
        "SELECT a.name, b.name FROM customer a
         JOIN customer b ON a.region = b.region
         WHERE a.id < b.id",
    );
    assert_eq!(r, vec![vec![Value::Str("ada".into()), Value::Str("cyd".into())]]);
}

#[test]
fn having_filters_groups() {
    let db = shop();
    let r = rows(
        &db,
        "SELECT customer_id, COUNT(*) AS n FROM orders
         GROUP BY customer_id HAVING COUNT(*) >= 2 ORDER BY n DESC",
    );
    assert_eq!(r.len(), 2); // ada (3), cyd (2)
    assert_eq!(r[0][0], Value::Int(1));
    assert_eq!(r[0][1], Value::Int(3));
}

#[test]
fn case_expressions_in_projection_and_order() {
    let db = shop();
    let r = rows(
        &db,
        "SELECT name, CASE WHEN price >= 100 THEN 'premium'
                           WHEN price >= 10 THEN 'standard'
                           ELSE 'budget' END AS tier
         FROM product ORDER BY tier, name",
    );
    let tiers: Vec<String> = r.iter().map(|row| row[1].to_display_string()).collect();
    assert_eq!(tiers, vec!["budget", "premium", "premium", "standard"]);
}

#[test]
fn insert_select_copies_across_tables() {
    let db = shop();
    db.execute("CREATE TABLE big_spender (id INTEGER, name VARCHAR)", &[]).unwrap();
    let r = db
        .execute(
            "INSERT INTO big_spender
             SELECT c.id, c.name FROM customer c
             JOIN orders o ON o.customer_id = c.id
             JOIN product p ON o.product_id = p.id
             WHERE p.price >= 250",
            &[],
        )
        .unwrap();
    assert_eq!(r.update_count(), 2); // ada (rocket) and bob (rocket)
    let r = rows(&db, "SELECT name FROM big_spender ORDER BY name");
    assert_eq!(r.len(), 2);
}

#[test]
fn distinct_on_expressions() {
    let db = shop();
    let r = rows(&db, "SELECT DISTINCT region FROM customer ORDER BY region");
    assert_eq!(r.len(), 3);
    let r = rows(
        &db,
        "SELECT DISTINCT o.product_id FROM orders o WHERE o.quantity > 1 ORDER BY o.product_id",
    );
    assert_eq!(r.len(), 3); // rope(101,103), paint(104), rocket(105)
}

#[test]
fn scalar_functions_compose() {
    let db = shop();
    let r = rows(
        &db,
        "SELECT UPPER(SUBSTRING(name, 1, 3)) || '-' || LENGTH(name) FROM product WHERE id = 10",
    );
    assert_eq!(r[0][0], Value::Str("ANV-5".into()));
    let r =
        rows(&db, "SELECT COALESCE(NULLIF(region, 'north'), 'home') FROM customer WHERE id = 1");
    assert_eq!(r[0][0], Value::Str("home".into()));
}

#[test]
fn aggregate_expressions_combine() {
    let db = shop();
    let r = rows(&db, "SELECT MAX(price) - MIN(price), AVG(price) * 2, COUNT(*) + 1 FROM product");
    assert_eq!(r[0][0], Value::Double(245.0));
    assert_eq!(r[0][1], Value::Double(185.0));
    assert_eq!(r[0][2], Value::Int(5));
}

#[test]
fn update_with_join_like_subcondition_via_in() {
    let db = shop();
    // No subqueries: but IN over literals + expression predicates cover
    // the common service patterns.
    let r = db.execute("UPDATE product SET price = price * 1.1 WHERE id IN (10, 12)", &[]).unwrap();
    assert_eq!(r.update_count(), 2);
    let check = rows(&db, "SELECT price FROM product WHERE id = 10");
    assert!(matches!(check[0][0], Value::Double(p) if (p - 110.0).abs() < 1e-9));
}

#[test]
fn fk_chain_enforced_end_to_end() {
    let db = shop();
    // Cannot delete a customer with orders.
    let err = db.execute("DELETE FROM customer WHERE id = 1", &[]).unwrap_err();
    assert_eq!(err.kind, SqlErrorKind::ForeignKeyViolation);
    // Delete the orders first, then the customer goes.
    db.execute("DELETE FROM orders WHERE customer_id = 1", &[]).unwrap();
    db.execute("DELETE FROM customer WHERE id = 1", &[]).unwrap();
    // Dropping the referenced table is still blocked by remaining FKs.
    let err = db.execute("DROP TABLE product", &[]).unwrap_err();
    assert_eq!(err.kind, SqlErrorKind::ForeignKeyViolation);
}

#[test]
fn multi_statement_transaction_over_the_schema() {
    let db = shop();
    let mut s = db.connect();
    s.execute("BEGIN", &[]).unwrap();
    s.execute("INSERT INTO customer VALUES (5, 'eve', 'west')", &[]).unwrap();
    s.execute("INSERT INTO orders (id, customer_id, product_id) VALUES (200, 5, 11)", &[]).unwrap();
    s.execute("UPDATE product SET price = 6.0 WHERE id = 11", &[]).unwrap();
    s.execute("ROLLBACK", &[]).unwrap();
    assert!(rows(&db, "SELECT * FROM customer WHERE id = 5").is_empty());
    assert!(rows(&db, "SELECT * FROM orders WHERE id = 200").is_empty());
    assert_eq!(rows(&db, "SELECT price FROM product WHERE id = 11")[0][0], Value::Double(5.0));
}

#[test]
fn order_by_multiple_keys_with_nulls() {
    let db = shop();
    db.execute("CREATE TABLE s (a INTEGER, b INTEGER)", &[]).unwrap();
    db.execute("INSERT INTO s VALUES (1, 2), (1, NULL), (2, 1), (1, 1)", &[]).unwrap();
    let r = rows(&db, "SELECT a, b FROM s ORDER BY a, b DESC");
    // a=1 group first; within it b DESC with NULL last (total order: null
    // sorts first ascending, so DESC puts it last).
    assert_eq!(r[0], vec![Value::Int(1), Value::Int(2)]);
    assert_eq!(r[1], vec![Value::Int(1), Value::Int(1)]);
    assert!(r[2][1].is_null());
    assert_eq!(r[3], vec![Value::Int(2), Value::Int(1)]);
}

#[test]
fn cross_join_cardinality() {
    let db = shop();
    let r = rows(&db, "SELECT COUNT(*) FROM customer CROSS JOIN product");
    assert_eq!(r[0][0], Value::Int(16));
}

#[test]
fn group_by_expression() {
    let db = shop();
    let r =
        rows(&db, "SELECT price >= 100, COUNT(*) FROM product GROUP BY price >= 100 ORDER BY 1");
    assert_eq!(r.len(), 2);
    assert_eq!(r[0][1], Value::Int(2)); // cheap: rope, paint
    assert_eq!(r[1][1], Value::Int(2)); // premium: anvil, rocket
}

#[test]
fn union_combines_and_deduplicates() {
    let db = shop();
    // Plain UNION deduplicates.
    let r =
        rows(&db, "SELECT region FROM customer UNION SELECT region FROM customer ORDER BY region");
    assert_eq!(r.len(), 3); // east, north, south
                            // UNION ALL keeps duplicates.
    let r = rows(&db, "SELECT region FROM customer UNION ALL SELECT region FROM customer");
    assert_eq!(r.len(), 8);
    // Heterogeneous sources with matching arity.
    let r = rows(
        &db,
        "SELECT name, price FROM product WHERE price > 100
         UNION SELECT name, 0.0 FROM customer WHERE region = 'east'
         ORDER BY 2 DESC, 1",
    );
    assert_eq!(r.len(), 2);
    assert_eq!(r[0][0], Value::Str("rocket".into()));
    assert_eq!(r[1][0], Value::Str("dee".into()));
}

#[test]
fn union_chains_and_limits() {
    let db = shop();
    let r = rows(
        &db,
        "SELECT id FROM customer UNION ALL SELECT id FROM product UNION ALL SELECT id FROM orders
         ORDER BY id LIMIT 5 OFFSET 2",
    );
    assert_eq!(r.len(), 5);
    assert_eq!(r[0][0], Value::Int(3)); // 1,2,[3,4,10,11,12],13,...
    assert_eq!(r[4][0], Value::Int(12));
}

#[test]
fn union_errors() {
    let db = shop();
    // Mismatched arity.
    let e =
        db.execute("SELECT id FROM customer UNION SELECT id, name FROM product", &[]).unwrap_err();
    assert_eq!(e.sqlstate(), "42601");
    // ORDER BY over a union must name an output column.
    let e = db
        .execute("SELECT name FROM customer UNION SELECT name FROM product ORDER BY region", &[])
        .unwrap_err();
    assert_eq!(e.kind, dais_sql::SqlErrorKind::NotSupported);
}

#[test]
fn union_with_aggregates_and_params() {
    let db = shop();
    let r = db
        .execute(
            "SELECT 'customers', COUNT(*) FROM customer
             UNION ALL SELECT 'products', COUNT(*) FROM product
             UNION ALL SELECT 'big-orders', COUNT(*) FROM orders WHERE quantity > ?
             ORDER BY 1",
            &[Value::Int(1)],
        )
        .unwrap();
    let r = &r.rowset().unwrap().rows;
    assert_eq!(r.len(), 3);
    assert_eq!(r[0][0], Value::Str("big-orders".into()));
    assert_eq!(r[0][1], Value::Int(4)); // orders 101, 103, 104, 105
    assert_eq!(r[1][1], Value::Int(4)); // customers
}

#[test]
fn like_and_in_against_strings() {
    let db = shop();
    let r = rows(&db, "SELECT name FROM product WHERE name LIKE 'r%' ORDER BY name");
    assert_eq!(r.len(), 2); // rocket, rope
    let r = rows(&db, "SELECT name FROM customer WHERE region IN ('north', 'east') ORDER BY name");
    assert_eq!(r.len(), 3);
}
