//! Property-based tests of engine invariants: LIKE against a reference
//! matcher, value ordering laws, constraint enforcement under random
//! workloads, and statement atomicity.
//!
//! Driven by the in-repo mini property harness (`dais_util::prop`);
//! failing cases print a replay seed.

use dais_sql::expr::like_match;
use dais_sql::value::GroupKey;
use dais_sql::{Database, SqlErrorKind, Value};
use dais_util::prop::{run_cases, Gen};
use std::cmp::Ordering;

/// A slow, obviously-correct LIKE reference via dynamic programming.
fn reference_like(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let mut dp = vec![vec![false; p.len() + 1]; t.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        dp[0][j] = p[j - 1] == '%' && dp[0][j - 1];
    }
    for i in 1..=t.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i][j - 1] || dp[i - 1][j],
                '_' => dp[i - 1][j - 1],
                c => c == t[i - 1] && dp[i - 1][j - 1],
            };
        }
    }
    dp[t.len()][p.len()]
}

fn arb_value(g: &mut Gen) -> Value {
    match g.usize_in(0, 5) {
        0 => Value::Null,
        1 => Value::Bool(g.bool_any()),
        2 => Value::Int(g.u64_in(0, 200) as i64 - 100),
        3 => Value::Double(g.f64_in(-100.0, 100.0)),
        _ => Value::Str(g.string_from("abc", 0, 3)),
    }
}

#[test]
fn like_matches_reference() {
    run_cases("like_matches_reference", 128, 0x11E, |g| {
        let text = g.string_from("ab", 0, 8);
        let pattern = g.string_from("ab%_", 0, 8);
        assert_eq!(like_match(&text, &pattern), reference_like(&text, &pattern));
    });
}

/// total_cmp is a total order: antisymmetric and transitive over samples.
#[test]
fn total_cmp_laws() {
    run_cases("total_cmp_laws", 128, 0x7C2, |g| {
        let a = arb_value(g);
        let b = arb_value(g);
        let c = arb_value(g);
        // Antisymmetry.
        assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity (for the ≤ relation).
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        // Reflexivity.
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
    });
}

/// group_key equality coincides with sql_cmp equality on non-null values.
#[test]
fn group_key_respects_equality() {
    run_cases("group_key_respects_equality", 128, 0x96B, |g| {
        let a = arb_value(g);
        let b = arb_value(g);
        if !a.is_null() && !b.is_null() {
            let sql_equal = a.sql_cmp(&b) == Some(Ordering::Equal);
            let key_equal = a.group_key() == b.group_key();
            if sql_equal {
                assert!(key_equal, "{a} = {b} but keys differ");
            }
            // The converse holds except across comparable-type boundaries
            // (keys never equate values sql_cmp cannot compare).
            if key_equal && a.sql_cmp(&b).is_some() {
                assert!(sql_equal, "keys equal but {a} != {b}");
            }
        } else {
            // NULL keys group together.
            assert_eq!(
                a.is_null() && b.is_null(),
                a.is_null() && a.group_key() == b.group_key() && b.is_null()
            );
        }
    });
}

/// Unique constraints hold under arbitrary insert sequences: the
/// table never ends up with duplicates, and every rejected insert
/// reports UniqueViolation.
#[test]
fn unique_constraint_invariant() {
    run_cases("unique_constraint_invariant", 128, 0x0C1, |g| {
        let keys = g.vec_of(1, 39, |g| g.u64_in(0, 20) as i64);
        let db = Database::new("p");
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY)", &[]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for k in keys {
            let outcome = db.execute("INSERT INTO t VALUES (?)", &[Value::Int(k)]);
            if seen.insert(k) {
                assert!(outcome.is_ok(), "fresh key {k} rejected");
            } else {
                let err = outcome.unwrap_err();
                assert_eq!(err.kind, SqlErrorKind::UniqueViolation);
            }
        }
        let count = db.execute("SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(&count.rowset().unwrap().rows[0][0], &Value::Int(seen.len() as i64));
    });
}

/// DISTINCT result sets contain no duplicate rows and exactly the
/// distinct values of the input.
#[test]
fn distinct_is_exact() {
    run_cases("distinct_is_exact", 128, 0xD15, |g| {
        let values = g.vec_of(0, 39, |g| g.u64_in(0, 10) as i64 - 5);
        let db = Database::new("p");
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        for v in &values {
            db.execute("INSERT INTO t VALUES (?)", &[Value::Int(*v)]).unwrap();
        }
        let got = db.execute("SELECT DISTINCT v FROM t ORDER BY v", &[]).unwrap();
        let got: Vec<i64> = got
            .rowset()
            .unwrap()
            .rows
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                ref other => panic!("{other:?}"),
            })
            .collect();
        let mut expected: Vec<i64> = values.clone();
        expected.sort();
        expected.dedup();
        assert_eq!(got, expected);
    });
}

/// GROUP BY partitions: group counts sum to the table size, and each
/// group's count matches the reference partition.
#[test]
fn group_by_partitions() {
    run_cases("group_by_partitions", 128, 0x6B1, |g| {
        let values = g.vec_of(1, 49, |g| g.u64_in(0, 6) as i64);
        let db = Database::new("p");
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        for v in &values {
            db.execute("INSERT INTO t VALUES (?)", &[Value::Int(*v)]).unwrap();
        }
        let got = db.execute("SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v", &[]).unwrap();
        let mut reference = std::collections::BTreeMap::new();
        for v in &values {
            *reference.entry(*v).or_insert(0i64) += 1;
        }
        let rows = &got.rowset().unwrap().rows;
        assert_eq!(rows.len(), reference.len());
        for (row, (k, n)) in rows.iter().zip(reference.iter()) {
            assert_eq!(&row[0], &Value::Int(*k));
            assert_eq!(&row[1], &Value::Int(*n));
        }
        let total: i64 = rows
            .iter()
            .map(|r| match r[1] {
                Value::Int(n) => n,
                _ => 0,
            })
            .sum();
        assert_eq!(total, values.len() as i64);
    });
}

/// LIMIT/OFFSET windows agree with slicing the full ordered result.
#[test]
fn limit_offset_windows() {
    run_cases("limit_offset_windows", 128, 0x10F, |g| {
        let n = g.usize_in(0, 30);
        let offset = g.u64_in(0, 35);
        let limit = g.u64_in(0, 35);
        let db = Database::new("p");
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        for i in 0..n {
            db.execute("INSERT INTO t VALUES (?)", &[Value::Int(i as i64)]).unwrap();
        }
        let got = db
            .execute(&format!("SELECT v FROM t ORDER BY v LIMIT {limit} OFFSET {offset}"), &[])
            .unwrap();
        let expected: Vec<i64> = (0..n as i64).skip(offset as usize).take(limit as usize).collect();
        let got: Vec<i64> = got
            .rowset()
            .unwrap()
            .rows
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                ref other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(got, expected);
    });
}

/// Failed multi-row statements are atomic regardless of where the
/// failure lands.
#[test]
fn statement_atomicity() {
    run_cases("statement_atomicity", 128, 0xA70, |g| {
        let prefix = g.vec_of(0, 9, |g| g.u64_in(0, 50) as i64);
        let db = Database::new("p");
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY)", &[]).unwrap();
        db.execute("INSERT INTO t VALUES (999)", &[]).unwrap();
        // Build a multi-row insert whose last row always conflicts.
        let mut rows: Vec<String> = prefix.iter().map(|k| format!("({k})")).collect();
        rows.push("(999)".into());
        let sql = format!("INSERT INTO t VALUES {}", rows.join(", "));
        let err = db.execute(&sql, &[]).unwrap_err();
        assert_eq!(err.kind, SqlErrorKind::UniqueViolation);
        // Nothing from the failed statement stuck.
        let count = db.execute("SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(&count.rowset().unwrap().rows[0][0], &Value::Int(1));
    });
}

/// GroupKey is usable as advertised: HashMap-compatible.
#[test]
fn group_keys_hash() {
    use std::collections::HashMap;
    let mut m: HashMap<GroupKey, u32> = HashMap::new();
    m.insert(Value::Int(1).group_key(), 1);
    assert_eq!(m.get(&Value::Double(1.0).group_key()), Some(&1));
    assert_eq!(m.get(&Value::Str("1".into()).group_key()), None);
}
