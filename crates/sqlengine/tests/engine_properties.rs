//! Property-based tests of engine invariants: LIKE against a reference
//! matcher, value ordering laws, constraint enforcement under random
//! workloads, and statement atomicity.

use dais_sql::expr::like_match;
use dais_sql::value::GroupKey;
use dais_sql::{Database, SqlErrorKind, Value};
use proptest::prelude::*;
use std::cmp::Ordering;

/// A slow, obviously-correct LIKE reference via dynamic programming.
fn reference_like(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let mut dp = vec![vec![false; p.len() + 1]; t.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        dp[0][j] = p[j - 1] == '%' && dp[0][j - 1];
    }
    for i in 1..=t.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i][j - 1] || dp[i - 1][j],
                '_' => dp[i - 1][j - 1],
                c => c == t[i - 1] && dp[i - 1][j - 1],
            };
        }
    }
    dp[t.len()][p.len()]
}

fn arb_pattern() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ab%_]{0,8}").unwrap()
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-100i64..100).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(Value::Double),
        proptest::string::string_regex("[a-c]{0,3}").unwrap().prop_map(Value::Str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn like_matches_reference(text in "[ab]{0,8}", pattern in arb_pattern()) {
        prop_assert_eq!(like_match(&text, &pattern), reference_like(&text, &pattern));
    }

    /// total_cmp is a total order: antisymmetric and transitive over samples.
    #[test]
    fn total_cmp_laws(a in arb_value(), b in arb_value(), c in arb_value()) {
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity (for the ≤ relation).
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        // Reflexivity.
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    /// group_key equality coincides with sql_cmp equality on non-null values.
    #[test]
    fn group_key_respects_equality(a in arb_value(), b in arb_value()) {
        if !a.is_null() && !b.is_null() {
            let sql_equal = a.sql_cmp(&b) == Some(Ordering::Equal);
            let key_equal = a.group_key() == b.group_key();
            if sql_equal {
                prop_assert!(key_equal, "{a} = {b} but keys differ");
            }
            // The converse holds except across comparable-type boundaries
            // (keys never equate values sql_cmp cannot compare).
            if key_equal && a.sql_cmp(&b).is_some() {
                prop_assert!(sql_equal, "keys equal but {a} != {b}");
            }
        } else {
            // NULL keys group together.
            prop_assert_eq!(a.is_null() && b.is_null(),
                a.is_null() && a.group_key() == b.group_key() && b.is_null());
        }
    }

    /// Unique constraints hold under arbitrary insert sequences: the
    /// table never ends up with duplicates, and every rejected insert
    /// reports UniqueViolation.
    #[test]
    fn unique_constraint_invariant(keys in proptest::collection::vec(0i64..20, 1..40)) {
        let db = Database::new("p");
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY)", &[]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for k in keys {
            let outcome = db.execute("INSERT INTO t VALUES (?)", &[Value::Int(k)]);
            if seen.insert(k) {
                prop_assert!(outcome.is_ok(), "fresh key {k} rejected");
            } else {
                let err = outcome.unwrap_err();
                prop_assert_eq!(err.kind, SqlErrorKind::UniqueViolation);
            }
        }
        let count = db.execute("SELECT COUNT(*) FROM t", &[]).unwrap();
        prop_assert_eq!(&count.rowset().unwrap().rows[0][0], &Value::Int(seen.len() as i64));
    }

    /// DISTINCT result sets contain no duplicate rows and exactly the
    /// distinct values of the input.
    #[test]
    fn distinct_is_exact(values in proptest::collection::vec(-5i64..5, 0..40)) {
        let db = Database::new("p");
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        for v in &values {
            db.execute("INSERT INTO t VALUES (?)", &[Value::Int(*v)]).unwrap();
        }
        let got = db.execute("SELECT DISTINCT v FROM t ORDER BY v", &[]).unwrap();
        let got: Vec<i64> = got.rowset().unwrap().rows.iter().map(|r| match r[0] {
            Value::Int(i) => i,
            ref other => panic!("{other:?}"),
        }).collect();
        let mut expected: Vec<i64> = values.clone();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(got, expected);
    }

    /// GROUP BY partitions: group counts sum to the table size, and each
    /// group's count matches the reference partition.
    #[test]
    fn group_by_partitions(values in proptest::collection::vec(0i64..6, 1..50)) {
        let db = Database::new("p");
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        for v in &values {
            db.execute("INSERT INTO t VALUES (?)", &[Value::Int(*v)]).unwrap();
        }
        let got = db.execute("SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v", &[]).unwrap();
        let mut reference = std::collections::BTreeMap::new();
        for v in &values {
            *reference.entry(*v).or_insert(0i64) += 1;
        }
        let rows = &got.rowset().unwrap().rows;
        prop_assert_eq!(rows.len(), reference.len());
        for (row, (k, n)) in rows.iter().zip(reference.iter()) {
            prop_assert_eq!(&row[0], &Value::Int(*k));
            prop_assert_eq!(&row[1], &Value::Int(*n));
        }
        let total: i64 = rows.iter().map(|r| match r[1] { Value::Int(n) => n, _ => 0 }).sum();
        prop_assert_eq!(total, values.len() as i64);
    }

    /// LIMIT/OFFSET windows agree with slicing the full ordered result.
    #[test]
    fn limit_offset_windows(
        n in 0usize..30,
        offset in 0u64..35,
        limit in 0u64..35,
    ) {
        let db = Database::new("p");
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        for i in 0..n {
            db.execute("INSERT INTO t VALUES (?)", &[Value::Int(i as i64)]).unwrap();
        }
        let got = db.execute(
            &format!("SELECT v FROM t ORDER BY v LIMIT {limit} OFFSET {offset}"),
            &[],
        ).unwrap();
        let expected: Vec<i64> = (0..n as i64).skip(offset as usize).take(limit as usize).collect();
        let got: Vec<i64> = got.rowset().unwrap().rows.iter().map(|r| match r[0] {
            Value::Int(i) => i,
            ref other => panic!("{other:?}"),
        }).collect();
        prop_assert_eq!(got, expected);
    }

    /// Failed multi-row statements are atomic regardless of where the
    /// failure lands.
    #[test]
    fn statement_atomicity(prefix in proptest::collection::vec(0i64..50, 0..10)) {
        let db = Database::new("p");
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY)", &[]).unwrap();
        db.execute("INSERT INTO t VALUES (999)", &[]).unwrap();
        // Build a multi-row insert whose last row always conflicts.
        let mut rows: Vec<String> = prefix.iter().map(|k| format!("({k})")).collect();
        rows.push("(999)".into());
        let sql = format!("INSERT INTO t VALUES {}", rows.join(", "));
        let err = db.execute(&sql, &[]).unwrap_err();
        prop_assert_eq!(err.kind, SqlErrorKind::UniqueViolation);
        // Nothing from the failed statement stuck.
        let count = db.execute("SELECT COUNT(*) FROM t", &[]).unwrap();
        prop_assert_eq!(&count.rowset().unwrap().rows[0][0], &Value::Int(1));
    }
}

/// GroupKey is usable as advertised: HashMap-compatible.
#[test]
fn group_keys_hash() {
    use std::collections::HashMap;
    let mut m: HashMap<GroupKey, u32> = HashMap::new();
    m.insert(Value::Int(1).group_key(), 1);
    assert_eq!(m.get(&Value::Double(1.0).group_key()), Some(&1));
    assert_eq!(m.get(&Value::Str("1".into()).group_key()), None);
}
