//! # dais-sql
//!
//! An embedded, in-memory relational engine: the DBMS substrate behind the
//! WS-DAIR realisation of the DAIS specifications.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The paper assumes DAIS services wrap an *existing* relational DBMS
//! reached over JDBC-era plumbing. No such embeddable engine fits this
//! Rust reproduction, so this crate implements one: a SQL parser,
//! materialising executor, constraint system (PK/unique/NOT NULL/CHECK/
//! foreign keys), secondary indexes, undo-log transactions, SQLSTATE
//! diagnostics and WebRowSet XML encoding. Everything WS-DAIR needs from a
//! DBMS — statements in, rowsets/update counts/communication areas out,
//! catalog metadata for CIM rendering — is provided by this crate.
//!
//! ## Supported SQL
//!
//! * `CREATE TABLE` (column types BOOLEAN/INTEGER/DOUBLE/VARCHAR,
//!   NOT NULL, UNIQUE, DEFAULT, PRIMARY KEY incl. composite, table-level
//!   CHECK, REFERENCES), `DROP TABLE [IF EXISTS]`, `CREATE [UNIQUE] INDEX`
//! * `SELECT` with DISTINCT, expressions/aliases, INNER/LEFT/CROSS JOIN,
//!   WHERE, GROUP BY + HAVING, aggregate functions
//!   (COUNT/SUM/AVG/MIN/MAX, incl. DISTINCT), ORDER BY
//!   (expression/alias/ordinal), LIMIT/OFFSET
//! * `INSERT … VALUES` (multi-row) and `INSERT … SELECT`, `UPDATE`,
//!   `DELETE`, positional `?` parameters
//! * `BEGIN` / `COMMIT` / `ROLLBACK` (undo-log based, READ UNCOMMITTED
//!   visibility — which is what the service layer advertises)
//!
//! Scalar functions: UPPER, LOWER, LENGTH, TRIM, ABS, ROUND, MOD,
//! COALESCE, NULLIF, SUBSTRING/SUBSTR, `||` concatenation; full
//! three-valued NULL logic, LIKE, IN, BETWEEN, IS (NOT) NULL, CASE.
//!
//! * `UNION` / `UNION ALL` chains (ORDER BY over a union references
//!   output columns by name or ordinal)
//!
//! Not implemented (documented limitations): subqueries, INTERSECT/EXCEPT,
//! comma joins, RIGHT/FULL OUTER JOIN, views, and multi-statement
//! isolation above READ UNCOMMITTED.
//!
//! ```
//! use dais_sql::{Database, Value};
//!
//! let db = Database::new("demo");
//! db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR)", &[]).unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')", &[]).unwrap();
//! let result = db.execute("SELECT name FROM t WHERE id = ?", &[Value::Int(2)]).unwrap();
//! assert_eq!(result.rowset().unwrap().rows[0][0], Value::Str("two".into()));
//! ```

pub mod ast;
pub mod catalog;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod rowset;
pub mod sqlcomm;
pub mod storage;
pub mod stream;
pub mod value;

pub use db::{Database, Session, StatementResult};
pub use error::{SqlError, SqlErrorKind};
pub use rowset::{Rowset, RowsetColumn, RowsetCursor, RowsetWriter};
pub use sqlcomm::SqlCommunicationArea;
pub use stream::{RowRef, RowStream};
pub use value::{SqlType, Value};
