//! Scalar expression evaluation with SQL three-valued logic.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::error::{SqlError, SqlErrorKind};
use crate::value::Value;

/// A column visible during execution: an optional table qualifier (table
/// name or alias) and the column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecColumn {
    pub qualifier: Option<String>,
    pub name: String,
}

/// The schema of the rows flowing through an operator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecSchema {
    pub columns: Vec<ExecColumn>,
}

impl ExecSchema {
    pub fn new(columns: Vec<ExecColumn>) -> Self {
        ExecSchema { columns }
    }

    /// Resolve a (possibly qualified) column reference to an ordinal,
    /// detecting ambiguity.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, SqlError> {
        let mut matches = self.columns.iter().enumerate().filter(|(_, c)| {
            c.name.eq_ignore_ascii_case(name)
                && match qualifier {
                    None => true,
                    Some(q) => c.qualifier.as_deref().is_some_and(|cq| cq.eq_ignore_ascii_case(q)),
                }
        });
        match (matches.next(), matches.next()) {
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => Err(SqlError::new(
                SqlErrorKind::AmbiguousColumn,
                format!("ambiguous column reference '{}'", display_ref(qualifier, name)),
            )),
            (None, _) => Err(SqlError::new(
                SqlErrorKind::UndefinedColumn,
                format!("no such column '{}'", display_ref(qualifier, name)),
            )),
        }
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &ExecSchema) -> ExecSchema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        ExecSchema { columns }
    }
}

fn display_ref(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

/// Everything an expression may reference at evaluation time.
pub struct EvalContext<'a> {
    pub schema: &'a ExecSchema,
    pub row: &'a [Value],
    pub params: &'a [Value],
}

impl<'a> EvalContext<'a> {
    pub fn new(schema: &'a ExecSchema, row: &'a [Value], params: &'a [Value]) -> Self {
        EvalContext { schema, row, params }
    }
}

/// Evaluate an expression against a row. Aggregate calls must have been
/// rewritten away before this point (the executor does so); hitting one
/// here is a grouping error.
pub fn eval(expr: &Expr, ctx: &EvalContext<'_>) -> Result<Value, SqlError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { qualifier, name } => {
            let i = ctx.schema.resolve(qualifier.as_deref(), name)?;
            Ok(ctx.row[i].clone())
        }
        Expr::Param(i) => ctx.params.get(*i).cloned().ok_or_else(|| {
            SqlError::new(
                SqlErrorKind::InvalidParameter,
                format!("no value bound for parameter ?{}", i + 1),
            )
        }),
        Expr::Unary { op, expr } => {
            let v = eval(expr, ctx)?;
            match op {
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Double(d) => Ok(Value::Double(-d)),
                    other => Err(type_error("-", &other)),
                },
                UnaryOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(type_error("NOT", &other)),
                },
            }
        }
        Expr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, ctx),
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, ctx)?;
            let p = eval(pattern, ctx)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(p)) => {
                    let m = like_match(&s, &p);
                    Ok(Value::Bool(if *negated { !m } else { m }))
                }
                (a, b) => Err(SqlError::new(
                    SqlErrorKind::InvalidCast,
                    format!("LIKE requires strings, got {a} and {b}"),
                )),
            }
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, ctx)?;
                if w.is_null() {
                    saw_null = true;
                    continue;
                }
                if v.sql_cmp(&w) == Some(std::cmp::Ordering::Equal) {
                    return Ok(Value::Bool(!negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, ctx)?;
            let lo = eval(low, ctx)?;
            let hi = eval(high, ctx)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let ge = matches!(
                v.sql_cmp(&lo),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            );
            let le = matches!(
                v.sql_cmp(&hi),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            );
            let within = ge && le;
            Ok(Value::Bool(if *negated { !within } else { within }))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Case { operand, branches, else_value } => {
            for (when, then) in branches {
                let hit = match operand {
                    Some(op) => {
                        let lhs = eval(op, ctx)?;
                        let rhs = eval(when, ctx)?;
                        lhs.sql_cmp(&rhs) == Some(std::cmp::Ordering::Equal)
                    }
                    None => matches!(eval(when, ctx)?, Value::Bool(true)),
                };
                if hit {
                    return eval(then, ctx);
                }
            }
            match else_value {
                Some(e) => eval(e, ctx),
                None => Ok(Value::Null),
            }
        }
        Expr::Function { name, args, star, .. } => {
            if *star || crate::ast::is_aggregate_name(name) {
                return Err(SqlError::new(
                    SqlErrorKind::Grouping,
                    format!("aggregate function {name} is not allowed here"),
                ));
            }
            let values: Vec<Value> = args.iter().map(|a| eval(a, ctx)).collect::<Result<_, _>>()?;
            eval_scalar_function(name, &values)
        }
    }
}

fn type_error(op: &str, v: &Value) -> SqlError {
    SqlError::new(SqlErrorKind::InvalidCast, format!("operator {op} cannot be applied to {v}"))
}

fn eval_binary(
    op: BinaryOp,
    lhs: &Expr,
    rhs: &Expr,
    ctx: &EvalContext<'_>,
) -> Result<Value, SqlError> {
    // Kleene logic for AND/OR: short-circuit where the result is decided.
    match op {
        BinaryOp::And => {
            let l = eval(lhs, ctx)?;
            if let Value::Bool(false) = l {
                return Ok(Value::Bool(false));
            }
            let r = eval(rhs, ctx)?;
            return Ok(match (l, r) {
                (_, Value::Bool(false)) => Value::Bool(false),
                (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                (Value::Null, _) | (_, Value::Null) => Value::Null,
                (a, b) => {
                    return Err(type_error(
                        "AND",
                        if matches!(a, Value::Bool(_)) { &b } else { &a },
                    )
                    .clone())
                }
            });
        }
        BinaryOp::Or => {
            let l = eval(lhs, ctx)?;
            if let Value::Bool(true) = l {
                return Ok(Value::Bool(true));
            }
            let r = eval(rhs, ctx)?;
            return Ok(match (l, r) {
                (_, Value::Bool(true)) => Value::Bool(true),
                (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                (Value::Null, _) | (_, Value::Null) => Value::Null,
                (a, b) => {
                    return Err(
                        type_error("OR", if matches!(a, Value::Bool(_)) { &b } else { &a }).clone()
                    )
                }
            });
        }
        _ => {}
    }

    let l = eval(lhs, ctx)?;
    let r = eval(rhs, ctx)?;
    match op {
        BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
            match l.sql_cmp(&r) {
                None => {
                    if l.is_null() || r.is_null() {
                        Ok(Value::Null)
                    } else {
                        Err(SqlError::new(
                            SqlErrorKind::InvalidCast,
                            format!("cannot compare {l} with {r}"),
                        ))
                    }
                }
                Some(ord) => {
                    use std::cmp::Ordering::*;
                    let b = match op {
                        BinaryOp::Eq => ord == Equal,
                        BinaryOp::Ne => ord != Equal,
                        BinaryOp::Lt => ord == Less,
                        BinaryOp::Le => ord != Greater,
                        BinaryOp::Gt => ord == Greater,
                        BinaryOp::Ge => ord != Less,
                        _ => unreachable!(),
                    };
                    Ok(Value::Bool(b))
                }
            }
        }
        BinaryOp::Concat => match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (a, b) => Ok(Value::Str(format!("{}{}", a.to_display_string(), b.to_display_string()))),
        },
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic stays integral except division by a
            // non-divisor; doubles contaminate.
            match (&l, &r) {
                (Value::Int(a), Value::Int(b)) => {
                    let (a, b) = (*a, *b);
                    match op {
                        BinaryOp::Add => Ok(Value::Int(a.wrapping_add(b))),
                        BinaryOp::Sub => Ok(Value::Int(a.wrapping_sub(b))),
                        BinaryOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
                        BinaryOp::Div => {
                            if b == 0 {
                                Err(SqlError::new(SqlErrorKind::DivisionByZero, "division by zero"))
                            } else if a % b == 0 {
                                Ok(Value::Int(a / b))
                            } else {
                                Ok(Value::Double(a as f64 / b as f64))
                            }
                        }
                        BinaryOp::Mod => {
                            if b == 0 {
                                Err(SqlError::new(SqlErrorKind::DivisionByZero, "modulo by zero"))
                            } else {
                                Ok(Value::Int(a % b))
                            }
                        }
                        _ => unreachable!(),
                    }
                }
                _ => {
                    let a = l.as_f64().ok_or_else(|| type_error("arithmetic", &l))?;
                    let b = r.as_f64().ok_or_else(|| type_error("arithmetic", &r))?;
                    match op {
                        BinaryOp::Add => Ok(Value::Double(a + b)),
                        BinaryOp::Sub => Ok(Value::Double(a - b)),
                        BinaryOp::Mul => Ok(Value::Double(a * b)),
                        BinaryOp::Div => {
                            if b == 0.0 {
                                Err(SqlError::new(SqlErrorKind::DivisionByZero, "division by zero"))
                            } else {
                                Ok(Value::Double(a / b))
                            }
                        }
                        BinaryOp::Mod => {
                            if b == 0.0 {
                                Err(SqlError::new(SqlErrorKind::DivisionByZero, "modulo by zero"))
                            } else {
                                Ok(Value::Double(a % b))
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

/// SQL LIKE with `%` (any run) and `_` (any single character).
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Try every split point.
                (0..=t.len()).any(|i| rec(&t[i..], &p[1..]))
            }
            Some('_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(&c) => t.first() == Some(&c) && rec(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

/// The scalar function library.
fn eval_scalar_function(name: &str, args: &[Value]) -> Result<Value, SqlError> {
    let arity = |n: usize| -> Result<(), SqlError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(SqlError::new(
                SqlErrorKind::UndefinedFunction,
                format!("{name}() expects {n} argument(s), got {}", args.len()),
            ))
        }
    };
    let str_arg = |v: &Value| -> Result<Option<String>, SqlError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(other.to_display_string())),
        }
    };
    match name {
        "UPPER" => {
            arity(1)?;
            Ok(str_arg(&args[0])?.map(|s| Value::Str(s.to_uppercase())).unwrap_or(Value::Null))
        }
        "LOWER" => {
            arity(1)?;
            Ok(str_arg(&args[0])?.map(|s| Value::Str(s.to_lowercase())).unwrap_or(Value::Null))
        }
        "LENGTH" | "CHAR_LENGTH" => {
            arity(1)?;
            Ok(str_arg(&args[0])?
                .map(|s| Value::Int(s.chars().count() as i64))
                .unwrap_or(Value::Null))
        }
        "TRIM" => {
            arity(1)?;
            Ok(str_arg(&args[0])?.map(|s| Value::Str(s.trim().to_string())).unwrap_or(Value::Null))
        }
        "ABS" => {
            arity(1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(i.abs()),
                Value::Double(d) => Value::Double(d.abs()),
                other => return Err(type_error("ABS", other)),
            })
        }
        "ROUND" => {
            if args.is_empty() || args.len() > 2 {
                return Err(SqlError::new(
                    SqlErrorKind::UndefinedFunction,
                    "ROUND() expects 1 or 2 arguments",
                ));
            }
            let digits = if args.len() == 2 {
                match &args[1] {
                    Value::Int(i) => *i,
                    Value::Null => return Ok(Value::Null),
                    other => return Err(type_error("ROUND digits", other)),
                }
            } else {
                0
            };
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(*i),
                Value::Double(d) => {
                    let f = 10f64.powi(digits as i32);
                    Value::Double((d * f).round() / f)
                }
                other => return Err(type_error("ROUND", other)),
            })
        }
        "MOD" => {
            arity(2)?;
            match (&args[0], &args[1]) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Int(a), Value::Int(b)) => {
                    if *b == 0 {
                        Err(SqlError::new(SqlErrorKind::DivisionByZero, "modulo by zero"))
                    } else {
                        Ok(Value::Int(a % b))
                    }
                }
                (a, b) => Err(SqlError::new(
                    SqlErrorKind::InvalidCast,
                    format!("MOD requires integers, got {a} and {b}"),
                )),
            }
        }
        "COALESCE" => {
            if args.is_empty() {
                return Err(SqlError::new(
                    SqlErrorKind::UndefinedFunction,
                    "COALESCE() expects at least 1 argument",
                ));
            }
            Ok(args.iter().find(|v| !v.is_null()).cloned().unwrap_or(Value::Null))
        }
        "NULLIF" => {
            arity(2)?;
            if !args[0].is_null() && args[0].sql_cmp(&args[1]) == Some(std::cmp::Ordering::Equal) {
                Ok(Value::Null)
            } else {
                Ok(args[0].clone())
            }
        }
        "SUBSTRING" | "SUBSTR" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(SqlError::new(
                    SqlErrorKind::UndefinedFunction,
                    "SUBSTRING() expects 2 or 3 arguments",
                ));
            }
            let Some(s) = str_arg(&args[0])? else { return Ok(Value::Null) };
            let start = match &args[1] {
                Value::Int(i) => *i,
                Value::Null => return Ok(Value::Null),
                other => return Err(type_error("SUBSTRING start", other)),
            };
            let len = if args.len() == 3 {
                match &args[2] {
                    Value::Int(i) => Some((*i).max(0) as usize),
                    Value::Null => return Ok(Value::Null),
                    other => return Err(type_error("SUBSTRING length", other)),
                }
            } else {
                None
            };
            let chars: Vec<char> = s.chars().collect();
            // SQL is 1-based.
            let begin = (start.max(1) - 1) as usize;
            let out: String = match len {
                Some(l) => chars.iter().skip(begin).take(l).collect(),
                None => chars.iter().skip(begin).collect(),
            };
            Ok(Value::Str(out))
        }
        other => Err(SqlError::new(
            SqlErrorKind::UndefinedFunction,
            format!("unknown function {other}()"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn eval_str(expr_sql: &str) -> Result<Value, SqlError> {
        // Parse through a SELECT to reuse the expression grammar.
        let stmt = parse_statement(&format!("SELECT {expr_sql}")).unwrap();
        let expr = match stmt {
            crate::ast::Stmt::Select(s) => match s.items.into_iter().next().unwrap() {
                crate::ast::SelectItem::Expr { expr, .. } => expr,
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        };
        let schema = ExecSchema::default();
        let ctx = EvalContext::new(&schema, &[], &[]);
        eval(&expr, &ctx)
    }

    fn v(expr_sql: &str) -> Value {
        eval_str(expr_sql).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(v("1 + 2 * 3"), Value::Int(7));
        assert_eq!(v("7 / 2"), Value::Double(3.5));
        assert_eq!(v("8 / 2"), Value::Int(4));
        assert_eq!(v("7 % 3"), Value::Int(1));
        assert_eq!(v("-(2 + 3)"), Value::Int(-5));
        assert_eq!(v("1.5 + 1"), Value::Double(2.5));
        assert!(matches!(eval_str("1 / 0"), Err(e) if e.kind == SqlErrorKind::DivisionByZero));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(v("NULL + 1"), Value::Null);
        assert_eq!(v("NULL = NULL"), Value::Null);
        assert_eq!(v("1 < NULL"), Value::Null);
        assert_eq!(v("NOT NULL"), Value::Null);
        assert_eq!(v("'a' || NULL"), Value::Null);
    }

    #[test]
    fn kleene_logic() {
        assert_eq!(v("TRUE AND NULL"), Value::Null);
        assert_eq!(v("FALSE AND NULL"), Value::Bool(false));
        assert_eq!(v("TRUE OR NULL"), Value::Bool(true));
        assert_eq!(v("FALSE OR NULL"), Value::Null);
        assert_eq!(v("NOT TRUE"), Value::Bool(false));
    }

    #[test]
    fn comparisons() {
        assert_eq!(v("1 < 2"), Value::Bool(true));
        assert_eq!(v("2 <= 2"), Value::Bool(true));
        assert_eq!(v("'abc' < 'abd'"), Value::Bool(true));
        assert_eq!(v("1 = 1.0"), Value::Bool(true));
        assert_eq!(v("1 <> 2"), Value::Bool(true));
        assert!(eval_str("'a' < 1").is_err());
    }

    #[test]
    fn is_null_and_in() {
        assert_eq!(v("NULL IS NULL"), Value::Bool(true));
        assert_eq!(v("1 IS NOT NULL"), Value::Bool(true));
        assert_eq!(v("2 IN (1, 2, 3)"), Value::Bool(true));
        assert_eq!(v("4 IN (1, 2, 3)"), Value::Bool(false));
        assert_eq!(v("4 NOT IN (1, 2, 3)"), Value::Bool(true));
        // NULL member makes a non-match unknown.
        assert_eq!(v("4 IN (1, NULL)"), Value::Null);
        assert_eq!(v("1 IN (1, NULL)"), Value::Bool(true));
    }

    #[test]
    fn between() {
        assert_eq!(v("2 BETWEEN 1 AND 3"), Value::Bool(true));
        assert_eq!(v("0 BETWEEN 1 AND 3"), Value::Bool(false));
        assert_eq!(v("0 NOT BETWEEN 1 AND 3"), Value::Bool(true));
        assert_eq!(v("NULL BETWEEN 1 AND 3"), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert_eq!(v("'hello' LIKE 'h%'"), Value::Bool(true));
        assert_eq!(v("'hello' LIKE '%llo'"), Value::Bool(true));
        assert_eq!(v("'hello' LIKE 'h_llo'"), Value::Bool(true));
        assert_eq!(v("'hello' LIKE 'h_l%'"), Value::Bool(true));
        assert_eq!(v("'hello' LIKE 'x%'"), Value::Bool(false));
        assert_eq!(v("'hello' NOT LIKE 'x%'"), Value::Bool(true));
        assert_eq!(v("'' LIKE '%'"), Value::Bool(true));
        assert_eq!(v("'abc' LIKE 'abc'"), Value::Bool(true));
        assert_eq!(v("'abc' LIKE 'ab'"), Value::Bool(false));
    }

    #[test]
    fn case_expressions() {
        assert_eq!(v("CASE WHEN 1 < 2 THEN 'y' ELSE 'n' END"), Value::Str("y".into()));
        assert_eq!(v("CASE WHEN 1 > 2 THEN 'y' END"), Value::Null);
        assert_eq!(v("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END"), Value::Str("two".into()));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(v("UPPER('abc')"), Value::Str("ABC".into()));
        assert_eq!(v("LOWER('ABC')"), Value::Str("abc".into()));
        assert_eq!(v("LENGTH('héllo')"), Value::Int(5));
        assert_eq!(v("ABS(-3)"), Value::Int(3));
        assert_eq!(v("ABS(-3.5)"), Value::Double(3.5));
        assert_eq!(v("COALESCE(NULL, NULL, 7)"), Value::Int(7));
        assert_eq!(v("COALESCE(NULL)"), Value::Null);
        assert_eq!(v("NULLIF(1, 1)"), Value::Null);
        assert_eq!(v("NULLIF(1, 2)"), Value::Int(1));
        assert_eq!(v("SUBSTRING('hello', 2, 3)"), Value::Str("ell".into()));
        assert_eq!(v("SUBSTR('hello', 3)"), Value::Str("llo".into()));
        assert_eq!(v("TRIM('  x ')"), Value::Str("x".into()));
        assert_eq!(v("ROUND(2.567, 2)"), Value::Double(2.57));
        assert_eq!(v("MOD(7, 3)"), Value::Int(1));
        assert_eq!(v("UPPER(NULL)"), Value::Null);
        assert!(eval_str("NO_SUCH_FN(1)").is_err());
        assert!(eval_str("UPPER('a', 'b')").is_err());
    }

    #[test]
    fn concatenation() {
        assert_eq!(v("'a' || 'b' || 'c'"), Value::Str("abc".into()));
        assert_eq!(v("'n=' || 42"), Value::Str("n=42".into()));
    }

    #[test]
    fn column_resolution() {
        let schema = ExecSchema::new(vec![
            ExecColumn { qualifier: Some("t".into()), name: "a".into() },
            ExecColumn { qualifier: Some("u".into()), name: "a".into() },
            ExecColumn { qualifier: Some("t".into()), name: "b".into() },
        ]);
        assert!(schema.resolve(None, "a").is_err()); // ambiguous
        assert_eq!(schema.resolve(Some("t"), "a").unwrap(), 0);
        assert_eq!(schema.resolve(Some("U"), "A").unwrap(), 1);
        assert_eq!(schema.resolve(None, "b").unwrap(), 2);
        assert!(schema.resolve(None, "zzz").is_err());
    }

    #[test]
    fn params_resolve() {
        let schema = ExecSchema::default();
        let params = vec![Value::Int(42)];
        let ctx = EvalContext::new(&schema, &[], &params);
        assert_eq!(eval(&Expr::Param(0), &ctx).unwrap(), Value::Int(42));
        assert!(eval(&Expr::Param(1), &ctx).is_err());
    }

    #[test]
    fn aggregates_rejected_in_scalar_context() {
        assert!(matches!(
            eval_str("COUNT(*)"),
            Err(e) if e.kind == SqlErrorKind::Grouping
        ));
    }
}
