//! Materialised result sets and their WebRowSet-style XML encoding.
//!
//! WS-DAIR responses carry relational data as XML rowsets; the format
//! implemented here follows the shape of Sun's WebRowSet schema (the
//! format named in the paper's Figure 5 scenario: "create another data
//! resource which uses a web row set format").

use crate::error::{SqlError, SqlErrorKind};
use crate::value::{SqlType, Value};
use dais_xml::{ns, PullEvent, PullParser, QName, XmlElement, XmlSink, XmlWriter};
use std::fmt::Write as _;

/// A column of a result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowsetColumn {
    pub name: String,
    pub ty: SqlType,
}

/// A fully materialised result set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Rowset {
    pub columns: Vec<RowsetColumn>,
    pub rows: Vec<Vec<Value>>,
}

impl Rowset {
    pub fn new(columns: Vec<RowsetColumn>) -> Self {
        Rowset { columns, rows: Vec::new() }
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// A sub-range of rows (used by the WS-DAIR `GetTuples` operation).
    pub fn slice(&self, start: usize, count: usize) -> Rowset {
        let end = (start + count).min(self.rows.len());
        let rows =
            if start >= self.rows.len() { Vec::new() } else { self.rows[start..end].to_vec() };
        Rowset { columns: self.columns.clone(), rows }
    }

    /// Encode as WebRowSet-style XML.
    pub fn to_xml(&self) -> XmlElement {
        let mut root = XmlElement::new(ns::ROWSET, "wrs", "webRowSet");
        let mut metadata = XmlElement::new(ns::ROWSET, "wrs", "metadata");
        metadata.push(
            XmlElement::new(ns::ROWSET, "wrs", "column-count")
                .with_text(self.columns.len().to_string()),
        );
        for (i, c) in self.columns.iter().enumerate() {
            metadata.push(
                XmlElement::new(ns::ROWSET, "wrs", "column-definition")
                    .with_child(
                        XmlElement::new(ns::ROWSET, "wrs", "column-index")
                            .with_text((i + 1).to_string()),
                    )
                    .with_child(
                        XmlElement::new(ns::ROWSET, "wrs", "column-name").with_text(&c.name),
                    )
                    .with_child(
                        XmlElement::new(ns::ROWSET, "wrs", "column-type").with_text(c.ty.name()),
                    ),
            );
        }
        root.push(metadata);
        let mut data = XmlElement::new(ns::ROWSET, "wrs", "data");
        for row in &self.rows {
            let mut current = XmlElement::new(ns::ROWSET, "wrs", "currentRow");
            for value in row {
                if value.is_null() {
                    current.push(
                        XmlElement::new(ns::ROWSET, "wrs", "columnValue").with_attr("null", "true"),
                    );
                } else {
                    let text = value.to_display_string();
                    // Values with leading/trailing whitespace (or that are
                    // entirely whitespace) travel as an attribute, which
                    // survives whitespace-stripping protocol parsers.
                    if text.trim() != text || text.is_empty() {
                        current.push(
                            XmlElement::new(ns::ROWSET, "wrs", "columnValue")
                                .with_attr("value", text),
                        );
                    } else {
                        current.push(
                            XmlElement::new(ns::ROWSET, "wrs", "columnValue").with_text(text),
                        );
                    }
                }
            }
            data.push(current);
        }
        root.push(data);
        root
    }

    /// Stream the WebRowSet encoding through an [`XmlWriter`] — the wire
    /// fast lane for large `GetTuples` pages. Produces exactly the bytes
    /// the tree path (`to_xml` + serialise) would, but never builds the
    /// intermediate element tree. Implemented on the incremental
    /// [`RowsetWriter`], so every cursor-fed encoder shares this byte
    /// shape by construction.
    pub fn write_into<S: XmlSink>(&self, w: &mut XmlWriter<'_, S>) {
        let mut rw = RowsetWriter::new();
        rw.begin(w, &self.columns);
        for row in &self.rows {
            rw.row(w, row);
        }
        rw.finish(w);
    }

    /// Stream only the `[start, start + count)` row window — a
    /// `GetTuples` page — without cloning a sub-rowset first. Bytes are
    /// identical to `self.slice(start, count)` encoded whole.
    pub fn write_window_into<S: XmlSink>(
        &self,
        start: usize,
        count: usize,
        w: &mut XmlWriter<'_, S>,
    ) {
        let mut rw = RowsetWriter::new();
        rw.begin(w, &self.columns);
        for row in self.rows.iter().skip(start).take(count) {
            rw.row(w, row);
        }
        rw.finish(w);
    }

    /// Serialise the WebRowSet document straight to wire bytes, appended
    /// to a caller-supplied (typically pooled) buffer, via
    /// [`Rowset::write_into`].
    pub fn to_wire_bytes_into(&self, out: &mut Vec<u8>) {
        let mut w = XmlWriter::new(out);
        self.write_into(&mut w);
        w.finish();
    }

    /// Decode a WebRowSet document from a pull parser whose next event
    /// is the `wrs:webRowSet` start tag — the zero-tree counterpart of
    /// [`Rowset::from_xml`] for the client wire fast path. Consumes the
    /// whole `webRowSet` subtree (including its end tag).
    pub fn read_from_pull(p: &mut PullParser<'_>) -> Result<Rowset, SqlError> {
        fn xml_err(e: dais_xml::XmlError) -> SqlError {
            SqlError::new(SqlErrorKind::InvalidCast, format!("malformed webRowSet: {e}"))
        }
        match p.next().map_err(xml_err)? {
            Some(PullEvent::Start { namespace, local })
                if namespace.as_str() == ns::ROWSET && local == "webRowSet" => {}
            other => {
                return Err(SqlError::new(
                    SqlErrorKind::InvalidCast,
                    format!("expected wrs:webRowSet, found {other:?}"),
                ))
            }
        }
        let mut columns: Vec<RowsetColumn> = Vec::new();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut scratch = String::new();
        loop {
            match p.next().map_err(xml_err)? {
                Some(PullEvent::End) => break,
                Some(PullEvent::Start { local: "metadata", .. }) => loop {
                    match p.next().map_err(xml_err)? {
                        Some(PullEvent::End) => break,
                        Some(PullEvent::Start { local: "column-definition", .. }) => {
                            let mut name: Option<String> = None;
                            let mut ty_name = String::new();
                            loop {
                                match p.next().map_err(xml_err)? {
                                    Some(PullEvent::End) => break,
                                    Some(PullEvent::Start { local: "column-name", .. }) => {
                                        scratch.clear();
                                        p.text_content_into(&mut scratch).map_err(xml_err)?;
                                        name = Some(scratch.clone());
                                    }
                                    Some(PullEvent::Start { local: "column-type", .. }) => {
                                        ty_name.clear();
                                        p.text_content_into(&mut ty_name).map_err(xml_err)?;
                                    }
                                    Some(PullEvent::Start { .. }) => {
                                        p.skip_element().map_err(xml_err)?
                                    }
                                    Some(PullEvent::Text(_)) => {}
                                    None => {
                                        return Err(SqlError::new(
                                            SqlErrorKind::InvalidCast,
                                            "truncated column-definition",
                                        ))
                                    }
                                }
                            }
                            let name = name.ok_or_else(|| {
                                SqlError::new(SqlErrorKind::InvalidCast, "column without a name")
                            })?;
                            let ty = SqlType::parse(&ty_name).ok_or_else(|| {
                                SqlError::new(
                                    SqlErrorKind::InvalidCast,
                                    format!("unknown column type '{ty_name}'"),
                                )
                            })?;
                            columns.push(RowsetColumn { name, ty });
                        }
                        Some(PullEvent::Start { .. }) => p.skip_element().map_err(xml_err)?,
                        Some(PullEvent::Text(_)) => {}
                        None => {
                            return Err(SqlError::new(
                                SqlErrorKind::InvalidCast,
                                "truncated metadata",
                            ))
                        }
                    }
                },
                Some(PullEvent::Start { local: "data", .. }) => loop {
                    match p.next().map_err(xml_err)? {
                        Some(PullEvent::End) => break,
                        Some(PullEvent::Start { local: "currentRow", .. }) => {
                            let mut row = Vec::with_capacity(columns.len());
                            loop {
                                match p.next().map_err(xml_err)? {
                                    Some(PullEvent::End) => break,
                                    Some(PullEvent::Start { local: "columnValue", .. }) => {
                                        let column = columns.get(row.len()).ok_or_else(|| {
                                            SqlError::new(
                                                SqlErrorKind::InvalidCast,
                                                "row wider than metadata",
                                            )
                                        })?;
                                        if p.attr("null") == Some("true") {
                                            p.skip_element().map_err(xml_err)?;
                                            row.push(Value::Null);
                                        } else if let Some(v) = p.attr("value") {
                                            let v = Value::parse_typed(v, column.ty)?;
                                            p.skip_element().map_err(xml_err)?;
                                            row.push(v);
                                        } else {
                                            scratch.clear();
                                            p.text_content_into(&mut scratch).map_err(xml_err)?;
                                            row.push(Value::parse_typed(&scratch, column.ty)?);
                                        }
                                    }
                                    Some(PullEvent::Start { .. }) => {
                                        p.skip_element().map_err(xml_err)?
                                    }
                                    Some(PullEvent::Text(_)) => {}
                                    None => {
                                        return Err(SqlError::new(
                                            SqlErrorKind::InvalidCast,
                                            "truncated currentRow",
                                        ))
                                    }
                                }
                            }
                            if row.len() != columns.len() {
                                return Err(SqlError::new(
                                    SqlErrorKind::InvalidCast,
                                    "row narrower than metadata",
                                ));
                            }
                            rows.push(row);
                        }
                        Some(PullEvent::Start { .. }) => p.skip_element().map_err(xml_err)?,
                        Some(PullEvent::Text(_)) => {}
                        None => {
                            return Err(SqlError::new(SqlErrorKind::InvalidCast, "truncated data"))
                        }
                    }
                },
                Some(PullEvent::Start { .. }) => p.skip_element().map_err(xml_err)?,
                Some(PullEvent::Text(_)) => {}
                None => {
                    return Err(SqlError::new(SqlErrorKind::InvalidCast, "truncated webRowSet"))
                }
            }
        }
        Ok(Rowset { columns, rows })
    }

    /// Decode a WebRowSet XML document.
    pub fn from_xml(root: &XmlElement) -> Result<Rowset, SqlError> {
        if !root.name.is(ns::ROWSET, "webRowSet") {
            return Err(SqlError::new(
                SqlErrorKind::InvalidCast,
                format!("expected wrs:webRowSet, found {}", root.name),
            ));
        }
        let metadata = root.child(ns::ROWSET, "metadata").ok_or_else(|| {
            SqlError::new(SqlErrorKind::InvalidCast, "webRowSet missing metadata")
        })?;
        let mut columns = Vec::new();
        for def in metadata.children_named(ns::ROWSET, "column-definition") {
            let name = def
                .child_text(ns::ROWSET, "column-name")
                .ok_or_else(|| SqlError::new(SqlErrorKind::InvalidCast, "column without a name"))?;
            let ty_name = def.child_text(ns::ROWSET, "column-type").unwrap_or_default();
            let ty = SqlType::parse(&ty_name).ok_or_else(|| {
                SqlError::new(SqlErrorKind::InvalidCast, format!("unknown column type '{ty_name}'"))
            })?;
            columns.push(RowsetColumn { name, ty });
        }
        let mut rowset = Rowset::new(columns);
        if let Some(data) = root.child(ns::ROWSET, "data") {
            for row_el in data.children_named(ns::ROWSET, "currentRow") {
                let mut row = Vec::with_capacity(rowset.columns.len());
                for (i, cell) in row_el.children_named(ns::ROWSET, "columnValue").enumerate() {
                    let column = rowset.columns.get(i).ok_or_else(|| {
                        SqlError::new(SqlErrorKind::InvalidCast, "row wider than metadata")
                    })?;
                    if cell.attribute("null") == Some("true") {
                        row.push(Value::Null);
                    } else if let Some(v) = cell.attribute("value") {
                        row.push(Value::parse_typed(v, column.ty)?);
                    } else {
                        row.push(Value::parse_typed(&cell.text(), column.ty)?);
                    }
                }
                if row.len() != rowset.columns.len() {
                    return Err(SqlError::new(
                        SqlErrorKind::InvalidCast,
                        "row narrower than metadata",
                    ));
                }
                rowset.rows.push(row);
            }
        }
        Ok(rowset)
    }
}

/// An incremental WebRowSet encoder: metadata up front, then one call
/// per row, then the trailer. This is the zero-materialisation wire
/// path — a cursor (or a page window over a held rowset) feeds cells
/// straight into the sink without ever building `Vec<Vec<Value>>` or an
/// element tree. Element names are interned once per writer and every
/// numeric cell is formatted through one reusable scratch buffer, so
/// the per-row cost is refcount bumps, not allocations.
///
/// [`Rowset::write_into`] is implemented on top of this type, which
/// pins the byte shape: whatever a materialised rowset would serialise
/// to, the incremental writer produces byte-for-byte.
pub struct RowsetWriter {
    n_root: QName,
    n_metadata: QName,
    n_count: QName,
    n_def: QName,
    n_index: QName,
    n_name: QName,
    n_type: QName,
    n_data: QName,
    n_row: QName,
    n_cell: QName,
    scratch: String,
}

impl RowsetWriter {
    pub fn new() -> RowsetWriter {
        RowsetWriter {
            n_root: QName::new(ns::ROWSET, "wrs", "webRowSet"),
            n_metadata: QName::new(ns::ROWSET, "wrs", "metadata"),
            n_count: QName::new(ns::ROWSET, "wrs", "column-count"),
            n_def: QName::new(ns::ROWSET, "wrs", "column-definition"),
            n_index: QName::new(ns::ROWSET, "wrs", "column-index"),
            n_name: QName::new(ns::ROWSET, "wrs", "column-name"),
            n_type: QName::new(ns::ROWSET, "wrs", "column-type"),
            n_data: QName::new(ns::ROWSET, "wrs", "data"),
            n_row: QName::new(ns::ROWSET, "wrs", "currentRow"),
            n_cell: QName::new(ns::ROWSET, "wrs", "columnValue"),
            scratch: String::new(),
        }
    }

    /// Open the document: root, the full metadata block, and the `data`
    /// element, left open for [`row`](Self::row) calls.
    pub fn begin<S: XmlSink>(&mut self, w: &mut XmlWriter<'_, S>, columns: &[RowsetColumn]) {
        w.start(&self.n_root);
        w.start(&self.n_metadata);
        w.start(&self.n_count);
        self.scratch.clear();
        let _ = write!(self.scratch, "{}", columns.len());
        w.text(&self.scratch);
        w.end();
        for (i, c) in columns.iter().enumerate() {
            w.start(&self.n_def);
            w.start(&self.n_index);
            self.scratch.clear();
            let _ = write!(self.scratch, "{}", i + 1);
            w.text(&self.scratch);
            w.end();
            w.start(&self.n_name);
            w.text(&c.name);
            w.end();
            w.start(&self.n_type);
            w.text(c.ty.name());
            w.end();
            w.end();
        }
        w.end();
        w.start(&self.n_data);
    }

    /// Encode one `currentRow` from any cell iterator — borrowed cursor
    /// rows, slices of a held rowset, anything yielding `&Value`.
    pub fn row<'v, S: XmlSink>(
        &mut self,
        w: &mut XmlWriter<'_, S>,
        cells: impl IntoIterator<Item = &'v Value>,
    ) {
        w.start(&self.n_row);
        for value in cells {
            w.start(&self.n_cell);
            if value.is_null() {
                w.attr("null", "true");
            } else if let Value::Str(s) = value {
                // Values with leading/trailing whitespace (or that are
                // entirely whitespace) travel as an attribute, which
                // survives whitespace-stripping protocol parsers.
                if s.trim() != s || s.is_empty() {
                    w.attr("value", s);
                } else {
                    w.text(s);
                }
            } else {
                self.scratch.clear();
                value.write_display_into(&mut self.scratch);
                w.text(&self.scratch);
            }
            w.end();
        }
        w.end();
    }

    /// Close the `data` element and the document root.
    pub fn finish<S: XmlSink>(&mut self, w: &mut XmlWriter<'_, S>) {
        w.end();
        w.end();
    }
}

impl Default for RowsetWriter {
    fn default() -> Self {
        RowsetWriter::new()
    }
}

fn cursor_xml_err(e: dais_xml::XmlError) -> SqlError {
    SqlError::new(SqlErrorKind::InvalidCast, format!("malformed webRowSet: {e}"))
}

/// The pull-decoding counterpart of [`RowsetWriter`]: metadata is parsed
/// eagerly, then rows are decoded one at a time on demand — the
/// federation merge path consumes k of these at once without ever
/// materialising any shard's rowset. The caller's row buffer is reused
/// across [`next_row_into`](Self::next_row_into) calls, so steady-state
/// decoding allocates only for string cells.
pub struct RowsetCursor<'a> {
    parser: PullParser<'a>,
    columns: Vec<RowsetColumn>,
    scratch: String,
    /// True once the `data` element (and the document) is exhausted.
    done: bool,
    /// True while positioned inside the `data` element.
    in_data: bool,
}

impl<'a> RowsetCursor<'a> {
    /// Start decoding from a parser whose next event is the
    /// `wrs:webRowSet` start tag. Consumes the metadata block.
    pub fn new(mut parser: PullParser<'a>) -> Result<RowsetCursor<'a>, SqlError> {
        match parser.next().map_err(cursor_xml_err)? {
            Some(PullEvent::Start { namespace, local })
                if namespace.as_str() == ns::ROWSET && local == "webRowSet" => {}
            other => {
                return Err(SqlError::new(
                    SqlErrorKind::InvalidCast,
                    format!("expected wrs:webRowSet, found {other:?}"),
                ))
            }
        }
        let mut cursor = RowsetCursor {
            parser,
            columns: Vec::new(),
            scratch: String::new(),
            done: false,
            in_data: false,
        };
        // Consume children up to (and into) `data`; metadata precedes
        // data in the pinned byte shape, but tolerate reordering.
        loop {
            match cursor.parser.next().map_err(cursor_xml_err)? {
                Some(PullEvent::End) => {
                    // No data element at all: an empty rowset.
                    cursor.done = true;
                    return Ok(cursor);
                }
                Some(PullEvent::Start { local: "metadata", .. }) => cursor.read_metadata()?,
                Some(PullEvent::Start { local: "data", .. }) => {
                    cursor.in_data = true;
                    return Ok(cursor);
                }
                Some(PullEvent::Start { .. }) => {
                    cursor.parser.skip_element().map_err(cursor_xml_err)?
                }
                Some(PullEvent::Text(_)) => {}
                None => {
                    return Err(SqlError::new(SqlErrorKind::InvalidCast, "truncated webRowSet"))
                }
            }
        }
    }

    fn read_metadata(&mut self) -> Result<(), SqlError> {
        loop {
            match self.parser.next().map_err(cursor_xml_err)? {
                Some(PullEvent::End) => return Ok(()),
                Some(PullEvent::Start { local: "column-definition", .. }) => {
                    let mut name: Option<String> = None;
                    let mut ty_name = String::new();
                    loop {
                        match self.parser.next().map_err(cursor_xml_err)? {
                            Some(PullEvent::End) => break,
                            Some(PullEvent::Start { local: "column-name", .. }) => {
                                self.scratch.clear();
                                self.parser
                                    .text_content_into(&mut self.scratch)
                                    .map_err(cursor_xml_err)?;
                                name = Some(self.scratch.clone());
                            }
                            Some(PullEvent::Start { local: "column-type", .. }) => {
                                ty_name.clear();
                                self.parser
                                    .text_content_into(&mut ty_name)
                                    .map_err(cursor_xml_err)?;
                            }
                            Some(PullEvent::Start { .. }) => {
                                self.parser.skip_element().map_err(cursor_xml_err)?
                            }
                            Some(PullEvent::Text(_)) => {}
                            None => {
                                return Err(SqlError::new(
                                    SqlErrorKind::InvalidCast,
                                    "truncated column-definition",
                                ))
                            }
                        }
                    }
                    let name = name.ok_or_else(|| {
                        SqlError::new(SqlErrorKind::InvalidCast, "column without a name")
                    })?;
                    let ty = SqlType::parse(&ty_name).ok_or_else(|| {
                        SqlError::new(
                            SqlErrorKind::InvalidCast,
                            format!("unknown column type '{ty_name}'"),
                        )
                    })?;
                    self.columns.push(RowsetColumn { name, ty });
                }
                Some(PullEvent::Start { .. }) => {
                    self.parser.skip_element().map_err(cursor_xml_err)?
                }
                Some(PullEvent::Text(_)) => {}
                None => return Err(SqlError::new(SqlErrorKind::InvalidCast, "truncated metadata")),
            }
        }
    }

    /// The column definitions from the metadata block.
    pub fn columns(&self) -> &[RowsetColumn] {
        &self.columns
    }

    /// Decode the next row into `row` (cleared first). `Ok(false)` when
    /// the rowset is exhausted; the buffer is reusable across calls.
    pub fn next_row_into(&mut self, row: &mut Vec<Value>) -> Result<bool, SqlError> {
        row.clear();
        if self.done {
            return Ok(false);
        }
        loop {
            match self.parser.next().map_err(cursor_xml_err)? {
                Some(PullEvent::End) if self.in_data => {
                    // `data` closed; drain to the end of the document.
                    self.in_data = false;
                    loop {
                        match self.parser.next().map_err(cursor_xml_err)? {
                            Some(PullEvent::End) => {
                                self.done = true;
                                return Ok(false);
                            }
                            Some(PullEvent::Start { .. }) => {
                                self.parser.skip_element().map_err(cursor_xml_err)?
                            }
                            Some(PullEvent::Text(_)) => {}
                            None => {
                                return Err(SqlError::new(
                                    SqlErrorKind::InvalidCast,
                                    "truncated webRowSet",
                                ))
                            }
                        }
                    }
                }
                Some(PullEvent::Start { local: "currentRow", .. }) if self.in_data => {
                    self.read_row(row)?;
                    return Ok(true);
                }
                Some(PullEvent::Start { .. }) => {
                    self.parser.skip_element().map_err(cursor_xml_err)?
                }
                Some(PullEvent::Text(_)) => {}
                Some(PullEvent::End) => {
                    self.done = true;
                    return Ok(false);
                }
                None => return Err(SqlError::new(SqlErrorKind::InvalidCast, "truncated data")),
            }
        }
    }

    fn read_row(&mut self, row: &mut Vec<Value>) -> Result<(), SqlError> {
        loop {
            match self.parser.next().map_err(cursor_xml_err)? {
                Some(PullEvent::End) => break,
                Some(PullEvent::Start { local: "columnValue", .. }) => {
                    let column = self.columns.get(row.len()).ok_or_else(|| {
                        SqlError::new(SqlErrorKind::InvalidCast, "row wider than metadata")
                    })?;
                    if self.parser.attr("null") == Some("true") {
                        self.parser.skip_element().map_err(cursor_xml_err)?;
                        row.push(Value::Null);
                    } else if let Some(v) = self.parser.attr("value") {
                        let v = Value::parse_typed(v, column.ty)?;
                        self.parser.skip_element().map_err(cursor_xml_err)?;
                        row.push(v);
                    } else {
                        self.scratch.clear();
                        self.parser.text_content_into(&mut self.scratch).map_err(cursor_xml_err)?;
                        row.push(Value::parse_typed(&self.scratch, column.ty)?);
                    }
                }
                Some(PullEvent::Start { .. }) => {
                    self.parser.skip_element().map_err(cursor_xml_err)?
                }
                Some(PullEvent::Text(_)) => {}
                None => {
                    return Err(SqlError::new(SqlErrorKind::InvalidCast, "truncated currentRow"))
                }
            }
        }
        if row.len() != self.columns.len() {
            return Err(SqlError::new(SqlErrorKind::InvalidCast, "row narrower than metadata"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Rowset {
        let mut rs = Rowset::new(vec![
            RowsetColumn { name: "id".into(), ty: SqlType::Integer },
            RowsetColumn { name: "name".into(), ty: SqlType::Varchar },
            RowsetColumn { name: "price".into(), ty: SqlType::Double },
            RowsetColumn { name: "active".into(), ty: SqlType::Boolean },
        ]);
        rs.rows.push(vec![
            Value::Int(1),
            Value::Str("widget <&>".into()),
            Value::Double(2.5),
            Value::Bool(true),
        ]);
        rs.rows.push(vec![Value::Int(2), Value::Null, Value::Double(4.0), Value::Bool(false)]);
        rs
    }

    #[test]
    fn xml_roundtrip() {
        let rs = sample();
        let xml = rs.to_xml();
        let rt = Rowset::from_xml(&xml).unwrap();
        assert_eq!(rt, rs);
    }

    #[test]
    fn roundtrip_through_text() {
        let rs = sample();
        let text = dais_xml::to_string(&rs.to_xml());
        let parsed = dais_xml::parse(&text).unwrap();
        assert_eq!(Rowset::from_xml(&parsed).unwrap(), rs);
    }

    #[test]
    fn nulls_marked_explicitly() {
        let xml = sample().to_xml();
        let text = dais_xml::to_string(&xml);
        assert!(text.contains("null=\"true\""));
    }

    #[test]
    fn slice_for_paging() {
        let mut rs = Rowset::new(vec![RowsetColumn { name: "n".into(), ty: SqlType::Integer }]);
        for i in 0..10 {
            rs.rows.push(vec![Value::Int(i)]);
        }
        let page = rs.slice(3, 4);
        assert_eq!(page.row_count(), 4);
        assert_eq!(page.rows[0][0], Value::Int(3));
        assert_eq!(rs.slice(8, 5).row_count(), 2);
        assert_eq!(rs.slice(20, 5).row_count(), 0);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Rowset::from_xml(&XmlElement::new_local("x")).is_err());
        // Row wider than metadata.
        let mut xml = sample().to_xml();
        // Append an extra cell to the first row.
        let data = xml.children.iter_mut().find_map(|c| match c {
            dais_xml::XmlNode::Element(e) if e.name.local == "data" => Some(e),
            _ => None,
        });
        if let Some(data) = data {
            if let Some(dais_xml::XmlNode::Element(row)) = data.children.first_mut() {
                row.push(XmlElement::new(ns::ROWSET, "wrs", "columnValue").with_text("extra"));
            }
        }
        assert!(Rowset::from_xml(&xml).is_err());
    }

    #[test]
    fn streamed_bytes_match_tree_serialisation() {
        let mut rs = sample();
        // Whitespace-edged and empty strings exercise the attribute form.
        rs.rows.push(vec![
            Value::Int(3),
            Value::Str("  padded  ".into()),
            Value::Double(0.25),
            Value::Bool(true),
        ]);
        rs.rows.push(vec![Value::Int(4), Value::Str(String::new()), Value::Null, Value::Null]);
        let tree = dais_xml::to_string(&rs.to_xml());
        let mut streamed = String::new();
        let mut w = dais_xml::XmlWriter::new(&mut streamed);
        rs.write_into(&mut w);
        w.finish();
        assert_eq!(streamed, tree);
    }

    #[test]
    fn empty_rowset_streams_identically() {
        let rs = Rowset::new(vec![]);
        let mut streamed = String::new();
        let mut w = dais_xml::XmlWriter::new(&mut streamed);
        rs.write_into(&mut w);
        w.finish();
        assert_eq!(streamed, dais_xml::to_string(&rs.to_xml()));
    }

    #[test]
    fn window_writer_matches_sliced_rowset() {
        let mut rs = Rowset::new(vec![RowsetColumn { name: "n".into(), ty: SqlType::Integer }]);
        for i in 0..10 {
            rs.rows.push(vec![Value::Int(i)]);
        }
        for (start, count) in [(0, 10), (3, 4), (8, 5), (20, 5), (0, 0)] {
            let mut windowed = String::new();
            let mut w = dais_xml::XmlWriter::new(&mut windowed);
            rs.write_window_into(start, count, &mut w);
            w.finish();
            let mut sliced = String::new();
            let mut w = dais_xml::XmlWriter::new(&mut sliced);
            rs.slice(start, count).write_into(&mut w);
            w.finish();
            assert_eq!(windowed, sliced, "window ({start}, {count})");
        }
    }

    #[test]
    fn pull_decode_roundtrips_wire_bytes() {
        let mut rs = sample();
        // Attribute-form and NULL-dense rows exercise every cell shape.
        rs.rows.push(vec![
            Value::Int(3),
            Value::Str("  padded  ".into()),
            Value::Double(0.25),
            Value::Bool(true),
        ]);
        rs.rows.push(vec![Value::Int(4), Value::Str(String::new()), Value::Null, Value::Null]);
        let mut bytes = Vec::new();
        rs.to_wire_bytes_into(&mut bytes);
        let text = std::str::from_utf8(&bytes).unwrap();
        let mut p = PullParser::new(text).unwrap();
        assert_eq!(Rowset::read_from_pull(&mut p).unwrap(), rs);
        // And it agrees with the tree decoder.
        let mut p = PullParser::new(text).unwrap();
        let pulled = Rowset::read_from_pull(&mut p).unwrap();
        assert_eq!(pulled, Rowset::from_xml(&dais_xml::parse(text).unwrap()).unwrap());
    }

    #[test]
    fn pull_decode_rejects_malformed_documents() {
        for bad in [
            "<x/>",
            "<wrs:webRowSet xmlns:wrs='http://java.sun.com/xml/ns/jdbc'>\
             <wrs:metadata><wrs:column-definition><wrs:column-type>INTEGER\
             </wrs:column-type></wrs:column-definition></wrs:metadata></wrs:webRowSet>",
        ] {
            let mut p = PullParser::new(bad).unwrap();
            assert!(Rowset::read_from_pull(&mut p).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn cursor_agrees_with_batch_pull_decode() {
        let mut rs = sample();
        rs.rows.push(vec![
            Value::Int(3),
            Value::Str("  padded  ".into()),
            Value::Double(0.25),
            Value::Bool(true),
        ]);
        rs.rows.push(vec![Value::Int(4), Value::Str(String::new()), Value::Null, Value::Null]);
        let mut bytes = Vec::new();
        rs.to_wire_bytes_into(&mut bytes);
        let text = std::str::from_utf8(&bytes).unwrap();

        let mut cursor = RowsetCursor::new(PullParser::new(text).unwrap()).unwrap();
        assert_eq!(cursor.columns(), rs.columns.as_slice());
        let mut row = Vec::new();
        let mut seen = Vec::new();
        while cursor.next_row_into(&mut row).unwrap() {
            seen.push(row.clone());
        }
        assert_eq!(seen, rs.rows);
        // Exhausted cursors stay exhausted.
        assert!(!cursor.next_row_into(&mut row).unwrap());
    }

    #[test]
    fn cursor_on_empty_rowset() {
        let rs = Rowset::new(vec![RowsetColumn { name: "n".into(), ty: SqlType::Integer }]);
        let mut bytes = Vec::new();
        rs.to_wire_bytes_into(&mut bytes);
        let text = std::str::from_utf8(&bytes).unwrap();
        let mut cursor = RowsetCursor::new(PullParser::new(text).unwrap()).unwrap();
        assert_eq!(cursor.columns().len(), 1);
        let mut row = Vec::new();
        assert!(!cursor.next_row_into(&mut row).unwrap());
    }

    #[test]
    fn cursor_rejects_truncated_documents() {
        let mut rs = sample();
        rs.rows.push(vec![Value::Int(9), Value::Str("x".into()), Value::Null, Value::Null]);
        let mut bytes = Vec::new();
        rs.to_wire_bytes_into(&mut bytes);
        // Chop the document mid-data: decoding must surface an error,
        // never a silently shorter rowset.
        let cut = bytes.len() - 40;
        let text = std::str::from_utf8(&bytes[..cut]).unwrap();
        let mut cursor = match RowsetCursor::new(PullParser::new(text).unwrap()) {
            Ok(c) => c,
            Err(_) => return, // truncation already caught at metadata
        };
        let mut row = Vec::new();
        let mut result = Ok(true);
        while matches!(result, Ok(true)) {
            result = cursor.next_row_into(&mut row);
        }
        assert!(result.is_err(), "truncated rowset decoded cleanly");
    }

    #[test]
    fn column_index_lookup() {
        let rs = sample();
        assert_eq!(rs.column_index("PRICE"), Some(2));
        assert_eq!(rs.column_index("none"), None);
    }

    #[test]
    fn empty_rowset_roundtrip() {
        let rs = Rowset::new(vec![]);
        assert_eq!(Rowset::from_xml(&rs.to_xml()).unwrap(), rs);
    }
}
