//! SQL values and types.

use crate::error::{SqlError, SqlErrorKind};
use std::cmp::Ordering;
use std::fmt;

/// The column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    Boolean,
    Integer,
    Double,
    Varchar,
}

impl SqlType {
    /// SQL name of the type (as used in DDL and metadata documents).
    pub fn name(self) -> &'static str {
        match self {
            SqlType::Boolean => "BOOLEAN",
            SqlType::Integer => "INTEGER",
            SqlType::Double => "DOUBLE",
            SqlType::Varchar => "VARCHAR",
        }
    }

    /// Parse a DDL type name (with common synonyms).
    pub fn parse(name: &str) -> Option<SqlType> {
        Some(match name.to_ascii_uppercase().as_str() {
            "BOOLEAN" | "BOOL" => SqlType::Boolean,
            "INTEGER" | "INT" | "BIGINT" | "SMALLINT" => SqlType::Integer,
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => SqlType::Double,
            "VARCHAR" | "CHAR" | "TEXT" | "STRING" | "CHARACTER" => SqlType::Varchar,
            _ => return None,
        })
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A runtime SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(String),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The type of a non-null value.
    pub fn sql_type(&self) -> Option<SqlType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(SqlType::Boolean),
            Value::Int(_) => Some(SqlType::Integer),
            Value::Double(_) => Some(SqlType::Double),
            Value::Str(_) => Some(SqlType::Varchar),
        }
    }

    /// Coerce for storage into a column of type `ty`. Integer widens to
    /// double; everything else must match exactly (strict typing keeps the
    /// engine predictable under property testing).
    pub fn coerce_to(self, ty: SqlType) -> Result<Value, SqlError> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(i), SqlType::Double) => Ok(Value::Double(i as f64)),
            (v, t) if v.sql_type() == Some(t) => Ok(v),
            (v, t) => Err(SqlError::new(
                SqlErrorKind::InvalidCast,
                format!("cannot store {} value into {} column", v.type_name(), t),
            )),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Bool(_) => "BOOLEAN",
            Value::Int(_) => "INTEGER",
            Value::Double(_) => "DOUBLE",
            Value::Str(_) => "VARCHAR",
        }
    }

    /// Numeric view, for arithmetic. `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is NULL (three-valued
    /// logic) or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total ordering for ORDER BY / DISTINCT / grouping: NULL sorts first,
    /// then booleans, numbers, strings. Unlike [`Value::sql_cmp`] this is
    /// total, so it can drive sorting.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Double(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let x = a.as_f64().unwrap_or(f64::NAN);
                let y = b.as_f64().unwrap_or(f64::NAN);
                x.total_cmp(&y)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Grouping/DISTINCT equality key: NULLs group together, and `1` and
    /// `1.0` are the same key.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Int(i) => GroupKey::Num((*i as f64).to_bits()),
            Value::Double(d) => {
                GroupKey::Num(if *d == 0.0 { 0.0f64.to_bits() } else { d.to_bits() })
            }
            Value::Str(s) => GroupKey::Str(s.clone()),
        }
    }

    /// Render as SQL literal text (for display and WebRowSet encoding).
    pub fn to_display_string(&self) -> String {
        let mut out = String::new();
        self.write_display_into(&mut out);
        out
    }

    /// Append the display text to a reusable buffer — same output as
    /// [`Value::to_display_string`] without the per-value allocation.
    /// The streaming rowset writer formats every cell through one
    /// scratch buffer this way.
    pub fn write_display_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Value::Null => out.push_str("NULL"),
            Value::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Double(d) => {
                if d.fract() == 0.0 && d.abs() < 1e15 {
                    let _ = write!(out, "{:.1}", d);
                } else {
                    let _ = write!(out, "{d}");
                }
            }
            Value::Str(s) => out.push_str(s),
        }
    }

    /// Parse a value of a known type from its display text (WebRowSet
    /// decoding).
    pub fn parse_typed(text: &str, ty: SqlType) -> Result<Value, SqlError> {
        let bad =
            || SqlError::new(SqlErrorKind::InvalidCast, format!("'{text}' is not a valid {ty}"));
        Ok(match ty {
            SqlType::Boolean => match text.to_ascii_uppercase().as_str() {
                "TRUE" | "T" | "1" => Value::Bool(true),
                "FALSE" | "F" | "0" => Value::Bool(false),
                _ => return Err(bad()),
            },
            SqlType::Integer => Value::Int(text.parse().map_err(|_| bad())?),
            SqlType::Double => Value::Double(text.parse().map_err(|_| bad())?),
            SqlType::Varchar => Value::Str(text.to_string()),
        })
    }
}

/// Hashable key for grouping and duplicate elimination.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
}

/// Equality for tests and materialised comparisons: numeric values compare
/// across Int/Double; NULL equals NULL (this is *not* SQL semantics, which
/// live in [`Value::sql_cmp`] — it is structural equality for rowsets).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_display_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parsing_and_names() {
        assert_eq!(SqlType::parse("int"), Some(SqlType::Integer));
        assert_eq!(SqlType::parse("VARCHAR"), Some(SqlType::Varchar));
        assert_eq!(SqlType::parse("real"), Some(SqlType::Double));
        assert_eq!(SqlType::parse("bogus"), None);
        assert_eq!(SqlType::Integer.name(), "INTEGER");
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(Value::Int(3).coerce_to(SqlType::Double).unwrap(), Value::Double(3.0));
        assert!(Value::Str("x".into()).coerce_to(SqlType::Integer).is_err());
        assert!(Value::Double(1.5).coerce_to(SqlType::Integer).is_err());
        assert_eq!(Value::Null.coerce_to(SqlType::Integer).unwrap(), Value::Null);
    }

    #[test]
    fn sql_cmp_three_valued() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::Int(2).sql_cmp(&Value::Double(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Str("b".into())), Some(Ordering::Less));
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_nulls_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn group_keys_unify_numerics() {
        assert_eq!(Value::Int(1).group_key(), Value::Double(1.0).group_key());
        assert_eq!(Value::Double(0.0).group_key(), Value::Double(-0.0).group_key());
        assert_ne!(Value::Int(1).group_key(), Value::Str("1".into()).group_key());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for (v, t) in [
            (Value::Int(42), SqlType::Integer),
            (Value::Double(2.5), SqlType::Double),
            (Value::Bool(true), SqlType::Boolean),
            (Value::Str("hi".into()), SqlType::Varchar),
        ] {
            let text = v.to_display_string();
            assert_eq!(Value::parse_typed(&text, t).unwrap(), v);
        }
        assert!(Value::parse_typed("xyz", SqlType::Integer).is_err());
    }

    #[test]
    fn double_display_keeps_decimal_point() {
        assert_eq!(Value::Double(3.0).to_display_string(), "3.0");
        assert_eq!(Value::Double(3.25).to_display_string(), "3.25");
    }
}
