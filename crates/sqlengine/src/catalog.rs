//! Table metadata: schemas, constraints and indexes.
//!
//! The catalog is the source of the relational metadata that WS-DAIR
//! exposes through the `CIMDescription` property (paper §4.2): table
//! names, column names/types/nullability, primary keys, unique
//! constraints, foreign keys and indexes.

use crate::ast::Expr;
use crate::value::{SqlType, Value};

/// Metadata for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    pub name: String,
    pub ty: SqlType,
    pub not_null: bool,
    pub unique: bool,
    /// Pre-evaluated DEFAULT value (defaults must be constant expressions).
    pub default: Option<Value>,
    /// Foreign key: `(referenced_table, referenced_column)`.
    pub references: Option<(String, String)>,
}

/// Metadata for a secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexMeta {
    pub name: String,
    /// Ordinal of the indexed column.
    pub column: usize,
    pub unique: bool,
}

/// The schema of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnMeta>,
    /// Ordinals of the primary key columns (empty = no primary key).
    pub primary_key: Vec<usize>,
    /// Table-level CHECK constraint expressions.
    pub checks: Vec<Expr>,
    pub indexes: Vec<IndexMeta>,
}

impl TableSchema {
    /// Find a column ordinal by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Is the column ordinal part of the primary key?
    pub fn is_pk_column(&self, ordinal: usize) -> bool {
        self.primary_key.contains(&ordinal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema {
            name: "t".into(),
            columns: vec![
                ColumnMeta {
                    name: "Id".into(),
                    ty: SqlType::Integer,
                    not_null: true,
                    unique: false,
                    default: None,
                    references: None,
                },
                ColumnMeta {
                    name: "name".into(),
                    ty: SqlType::Varchar,
                    not_null: false,
                    unique: true,
                    default: Some(Value::Str("anon".into())),
                    references: None,
                },
            ],
            primary_key: vec![0],
            checks: Vec::new(),
            indexes: Vec::new(),
        }
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.column_index("id"), Some(0));
        assert_eq!(s.column_index("ID"), Some(0));
        assert_eq!(s.column_index("NAME"), Some(1));
        assert_eq!(s.column_index("zzz"), None);
    }

    #[test]
    fn pk_membership() {
        let s = schema();
        assert!(s.is_pk_column(0));
        assert!(!s.is_pk_column(1));
        assert_eq!(s.column_names(), vec!["Id", "name"]);
    }
}
