//! In-memory heap tables with primary-key and secondary index maintenance.

use crate::catalog::{IndexMeta, TableSchema};
use crate::error::{SqlError, SqlErrorKind};
use crate::value::{GroupKey, Value};
use std::collections::{BTreeMap, HashMap};

/// A stored row id. Monotonic per table; row ids are stable across updates
/// and reused only when a transaction rollback reinstates a deleted row.
pub type RowId = u64;

/// One table: schema, rows and index structures.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    rows: BTreeMap<RowId, Vec<Value>>,
    next_rowid: RowId,
    /// Primary key index (composite keys supported). Absent if no PK.
    pk_index: HashMap<Vec<GroupKey>, RowId>,
    /// Unique single-column indexes: ordinal → value-key → rowid.
    /// NULLs are not indexed (SQL: NULLs never conflict).
    unique_indexes: HashMap<usize, HashMap<GroupKey, RowId>>,
    /// Non-unique secondary indexes: ordinal → value-key → rowids.
    secondary_indexes: HashMap<usize, HashMap<GroupKey, Vec<RowId>>>,
}

impl Table {
    pub fn new(schema: TableSchema) -> Table {
        let mut unique_indexes = HashMap::new();
        let mut secondary_indexes = HashMap::new();
        for (i, c) in schema.columns.iter().enumerate() {
            if c.unique && !schema.primary_key.contains(&i) {
                unique_indexes.insert(i, HashMap::new());
            }
        }
        for idx in &schema.indexes {
            if idx.unique {
                unique_indexes.entry(idx.column).or_default();
            } else {
                secondary_indexes.entry(idx.column).or_default();
            }
        }
        Table {
            schema,
            rows: BTreeMap::new(),
            next_rowid: 1,
            pk_index: HashMap::new(),
            unique_indexes,
            secondary_indexes,
        }
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Iterate rows in insertion (rowid) order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Vec<Value>)> {
        self.rows.iter().map(|(k, v)| (*k, v))
    }

    pub fn get(&self, rowid: RowId) -> Option<&Vec<Value>> {
        self.rows.get(&rowid)
    }

    /// Fast path: look up by full primary key.
    pub fn get_by_pk(&self, key: &[Value]) -> Option<(RowId, &Vec<Value>)> {
        let gk: Vec<GroupKey> = key.iter().map(Value::group_key).collect();
        let rowid = *self.pk_index.get(&gk)?;
        self.rows.get(&rowid).map(|r| (rowid, r))
    }

    /// Look up rowids through a secondary or unique index on `ordinal`.
    /// Returns `None` when no index exists on that column.
    pub fn index_lookup(&self, ordinal: usize, value: &Value) -> Option<Vec<RowId>> {
        if value.is_null() {
            return Some(Vec::new()); // indexed NULLs are unreachable by equality
        }
        let key = value.group_key();
        if self.schema.primary_key == [ordinal] {
            return Some(self.pk_index.get(&vec![key]).copied().into_iter().collect());
        }
        if let Some(m) = self.unique_indexes.get(&ordinal) {
            return Some(m.get(&key).copied().into_iter().collect());
        }
        if let Some(m) = self.secondary_indexes.get(&ordinal) {
            return Some(m.get(&key).cloned().unwrap_or_default());
        }
        None
    }

    /// True when equality lookups on `ordinal` can use an index.
    pub fn has_index_on(&self, ordinal: usize) -> bool {
        self.schema.primary_key == [ordinal]
            || self.unique_indexes.contains_key(&ordinal)
            || self.secondary_indexes.contains_key(&ordinal)
    }

    /// Does any row hold `value` in column `ordinal`? (FK existence check.)
    pub fn contains_value(&self, ordinal: usize, value: &Value) -> bool {
        if value.is_null() {
            return false;
        }
        if let Some(ids) = self.index_lookup(ordinal, value) {
            return !ids.is_empty();
        }
        self.rows.values().any(|r| r[ordinal] == *value)
    }

    fn pk_key(&self, row: &[Value]) -> Option<Vec<GroupKey>> {
        if self.schema.primary_key.is_empty() {
            return None;
        }
        Some(self.schema.primary_key.iter().map(|&i| row[i].group_key()).collect())
    }

    /// Validate uniqueness of `row` against existing rows, ignoring
    /// `except` (used when updating a row in place).
    fn check_unique(&self, row: &[Value], except: Option<RowId>) -> Result<(), SqlError> {
        if let Some(key) = self.pk_key(row) {
            if self.schema.primary_key.iter().any(|&i| row[i].is_null()) {
                return Err(SqlError::new(
                    SqlErrorKind::NotNullViolation,
                    format!("primary key of table {} cannot be NULL", self.schema.name),
                ));
            }
            if let Some(&existing) = self.pk_index.get(&key) {
                if Some(existing) != except {
                    return Err(SqlError::new(
                        SqlErrorKind::UniqueViolation,
                        format!("duplicate primary key in table {}", self.schema.name),
                    ));
                }
            }
        }
        for (&ordinal, index) in &self.unique_indexes {
            if row[ordinal].is_null() {
                continue;
            }
            if let Some(&existing) = index.get(&row[ordinal].group_key()) {
                if Some(existing) != except {
                    return Err(SqlError::new(
                        SqlErrorKind::UniqueViolation,
                        format!(
                            "duplicate value for unique column {}.{}",
                            self.schema.name, self.schema.columns[ordinal].name
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    fn index_insert(&mut self, rowid: RowId, row: &[Value]) {
        if let Some(key) = self.pk_key(row) {
            self.pk_index.insert(key, rowid);
        }
        for (&ordinal, index) in &mut self.unique_indexes {
            if !row[ordinal].is_null() {
                index.insert(row[ordinal].group_key(), rowid);
            }
        }
        for (&ordinal, index) in &mut self.secondary_indexes {
            if !row[ordinal].is_null() {
                index.entry(row[ordinal].group_key()).or_default().push(rowid);
            }
        }
    }

    fn index_remove(&mut self, rowid: RowId, row: &[Value]) {
        if let Some(key) = self.pk_key(row) {
            self.pk_index.remove(&key);
        }
        for (&ordinal, index) in &mut self.unique_indexes {
            if !row[ordinal].is_null() {
                index.remove(&row[ordinal].group_key());
            }
        }
        for (&ordinal, index) in &mut self.secondary_indexes {
            if !row[ordinal].is_null() {
                if let Some(ids) = index.get_mut(&row[ordinal].group_key()) {
                    ids.retain(|&id| id != rowid);
                }
            }
        }
    }

    /// Insert a fully-typed row (constraint checks for uniqueness happen
    /// here; NOT NULL / CHECK / FK are the executor's responsibility).
    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId, SqlError> {
        debug_assert_eq!(row.len(), self.schema.columns.len());
        self.check_unique(&row, None)?;
        let rowid = self.next_rowid;
        self.next_rowid += 1;
        self.index_insert(rowid, &row);
        self.rows.insert(rowid, row);
        Ok(rowid)
    }

    /// Reinstate a previously deleted row at its old id (rollback path).
    pub fn reinsert(&mut self, rowid: RowId, row: Vec<Value>) {
        self.index_insert(rowid, &row);
        self.rows.insert(rowid, row);
        self.next_rowid = self.next_rowid.max(rowid + 1);
    }

    /// Delete a row, returning its values.
    pub fn delete(&mut self, rowid: RowId) -> Option<Vec<Value>> {
        let row = self.rows.remove(&rowid)?;
        self.index_remove(rowid, &row);
        Some(row)
    }

    /// Replace a row in place, returning the old values.
    pub fn update(&mut self, rowid: RowId, new_row: Vec<Value>) -> Result<Vec<Value>, SqlError> {
        debug_assert_eq!(new_row.len(), self.schema.columns.len());
        let Some(old) = self.rows.get(&rowid).cloned() else {
            return Err(SqlError::new(SqlErrorKind::InvalidParameter, "no such row"));
        };
        self.check_unique(&new_row, Some(rowid))?;
        self.index_remove(rowid, &old);
        self.index_insert(rowid, &new_row);
        self.rows.insert(rowid, new_row);
        Ok(old)
    }

    /// Remove an index by name (rollback of CREATE INDEX). Unique
    /// constraints declared in the schema itself are untouched.
    pub fn drop_index(&mut self, name: &str) {
        if let Some(pos) =
            self.schema.indexes.iter().position(|i| i.name.eq_ignore_ascii_case(name))
        {
            let meta = self.schema.indexes.remove(pos);
            // Only drop the runtime structure if no remaining index or
            // schema-level unique constraint still needs it.
            let still_unique = self.schema.columns.get(meta.column).is_some_and(|c| c.unique)
                || self.schema.indexes.iter().any(|i| i.column == meta.column && i.unique);
            let still_secondary =
                self.schema.indexes.iter().any(|i| i.column == meta.column && !i.unique);
            if meta.unique && !still_unique {
                self.unique_indexes.remove(&meta.column);
            }
            if !meta.unique && !still_secondary {
                self.secondary_indexes.remove(&meta.column);
            }
        }
    }

    /// Add a secondary index over existing data.
    pub fn create_index(&mut self, meta: IndexMeta) -> Result<(), SqlError> {
        if meta.unique {
            let mut index: HashMap<GroupKey, RowId> = HashMap::new();
            for (rowid, row) in &self.rows {
                if row[meta.column].is_null() {
                    continue;
                }
                if index.insert(row[meta.column].group_key(), *rowid).is_some() {
                    return Err(SqlError::new(
                        SqlErrorKind::UniqueViolation,
                        format!("cannot create unique index {}: duplicate values exist", meta.name),
                    ));
                }
            }
            self.unique_indexes.insert(meta.column, index);
        } else {
            let mut index: HashMap<GroupKey, Vec<RowId>> = HashMap::new();
            for (rowid, row) in &self.rows {
                if !row[meta.column].is_null() {
                    index.entry(row[meta.column].group_key()).or_default().push(*rowid);
                }
            }
            self.secondary_indexes.insert(meta.column, index);
        }
        self.schema.indexes.push(meta);
        Ok(())
    }
}

/// All tables of one database, keyed by lower-cased name.
#[derive(Debug, Default, Clone)]
pub struct Storage {
    tables: HashMap<String, Table>,
}

impl Storage {
    pub fn new() -> Storage {
        Storage::default()
    }

    pub fn table(&self, name: &str) -> Result<&Table, SqlError> {
        self.tables.get(&name.to_ascii_lowercase()).ok_or_else(|| {
            SqlError::new(SqlErrorKind::UndefinedTable, format!("no such table: {name}"))
        })
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, SqlError> {
        self.tables.get_mut(&name.to_ascii_lowercase()).ok_or_else(|| {
            SqlError::new(SqlErrorKind::UndefinedTable, format!("no such table: {name}"))
        })
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    pub fn add_table(&mut self, table: Table) -> Result<(), SqlError> {
        let key = table.schema.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(SqlError::new(
                SqlErrorKind::DuplicateTable,
                format!("table {} already exists", table.schema.name),
            ));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    pub fn remove_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(&name.to_ascii_lowercase())
    }

    /// Table names, sorted (stable metadata output).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.values().map(|t| t.schema.name.clone()).collect();
        v.sort();
        v
    }

    /// All tables (for FK reverse checks and metadata export).
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnMeta;
    use crate::value::SqlType;

    fn schema() -> TableSchema {
        TableSchema {
            name: "t".into(),
            columns: vec![
                ColumnMeta {
                    name: "id".into(),
                    ty: SqlType::Integer,
                    not_null: true,
                    unique: false,
                    default: None,
                    references: None,
                },
                ColumnMeta {
                    name: "email".into(),
                    ty: SqlType::Varchar,
                    not_null: false,
                    unique: true,
                    default: None,
                    references: None,
                },
            ],
            primary_key: vec![0],
            checks: Vec::new(),
            indexes: Vec::new(),
        }
    }

    fn row(id: i64, email: Option<&str>) -> Vec<Value> {
        vec![Value::Int(id), email.map(|e| Value::Str(e.into())).unwrap_or(Value::Null)]
    }

    #[test]
    fn insert_scan_get() {
        let mut t = Table::new(schema());
        let r1 = t.insert(row(1, Some("a@x"))).unwrap();
        let r2 = t.insert(row(2, Some("b@x"))).unwrap();
        assert_ne!(r1, r2);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.get(r1).unwrap()[0], Value::Int(1));
        let ids: Vec<RowId> = t.scan().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![r1, r2]);
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut t = Table::new(schema());
        t.insert(row(1, None)).unwrap();
        let err = t.insert(row(1, None)).unwrap_err();
        assert_eq!(err.kind, SqlErrorKind::UniqueViolation);
        let err = t.insert(vec![Value::Null, Value::Null]).unwrap_err();
        assert_eq!(err.kind, SqlErrorKind::NotNullViolation);
    }

    #[test]
    fn unique_column_allows_multiple_nulls() {
        let mut t = Table::new(schema());
        t.insert(row(1, None)).unwrap();
        t.insert(row(2, None)).unwrap();
        t.insert(row(3, Some("x@x"))).unwrap();
        let err = t.insert(row(4, Some("x@x"))).unwrap_err();
        assert_eq!(err.kind, SqlErrorKind::UniqueViolation);
    }

    #[test]
    fn pk_lookup() {
        let mut t = Table::new(schema());
        t.insert(row(7, None)).unwrap();
        let (rid, r) = t.get_by_pk(&[Value::Int(7)]).unwrap();
        assert_eq!(r[0], Value::Int(7));
        assert!(t.get_by_pk(&[Value::Int(8)]).is_none());
        t.delete(rid).unwrap();
        assert!(t.get_by_pk(&[Value::Int(7)]).is_none());
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = Table::new(schema());
        let rid = t.insert(row(1, Some("old@x"))).unwrap();
        t.insert(row(2, Some("other@x"))).unwrap();
        let old = t.update(rid, row(1, Some("new@x"))).unwrap();
        assert_eq!(old[1], Value::Str("old@x".into()));
        // old email is free again
        t.insert(row(3, Some("old@x"))).unwrap();
        // but the new one conflicts
        assert!(t.insert(row(4, Some("new@x"))).is_err());
        // updating into an existing unique value fails
        let rid2 = t.get_by_pk(&[Value::Int(2)]).unwrap().0;
        assert!(t.update(rid2, row(2, Some("new@x"))).is_err());
        // updating a row to keep its own value is fine
        t.update(rid, row(1, Some("new@x"))).unwrap();
    }

    #[test]
    fn delete_and_reinsert_roundtrip() {
        let mut t = Table::new(schema());
        let rid = t.insert(row(1, Some("a@x"))).unwrap();
        let removed = t.delete(rid).unwrap();
        assert_eq!(t.row_count(), 0);
        t.reinsert(rid, removed);
        assert_eq!(t.row_count(), 1);
        assert!(t.get_by_pk(&[Value::Int(1)]).is_some());
        assert!(t.delete(999).is_none());
    }

    #[test]
    fn secondary_index_lookup() {
        let mut s2 = schema();
        s2.columns[1].unique = false; // duplicates expected below
        let mut t = Table::new(s2);
        for i in 0..10 {
            t.insert(row(i, Some(&format!("u{}@x", i % 3)))).unwrap();
        }
        t.create_index(IndexMeta { name: "i_email".into(), column: 1, unique: false }).unwrap();
        assert!(t.has_index_on(1));
        let hits = t.index_lookup(1, &Value::Str("u0@x".into())).unwrap();
        assert_eq!(hits.len(), 4); // 0,3,6,9
        assert_eq!(t.index_lookup(1, &Value::Str("nope".into())).unwrap().len(), 0);
    }

    #[test]
    fn unique_index_creation_detects_duplicates() {
        let mut s2 = schema();
        s2.columns[1].unique = false;
        let mut t = Table::new(s2);
        t.insert(row(1, Some("dup@x"))).unwrap();
        t.insert(row(2, Some("dup@x"))).unwrap();
        let err = t
            .create_index(IndexMeta { name: "u_email".into(), column: 1, unique: true })
            .unwrap_err();
        assert_eq!(err.kind, SqlErrorKind::UniqueViolation);
    }

    #[test]
    fn storage_table_management() {
        let mut s = Storage::new();
        s.add_table(Table::new(schema())).unwrap();
        assert!(s.has_table("T")); // case-insensitive
        assert!(s.table("t").is_ok());
        assert!(s.add_table(Table::new(schema())).is_err());
        assert_eq!(s.table_names(), vec!["t"]);
        assert!(s.remove_table("t").is_some());
        assert!(s.table("t").is_err());
    }

    #[test]
    fn contains_value_for_fk_checks() {
        let mut t = Table::new(schema());
        t.insert(row(5, None)).unwrap();
        assert!(t.contains_value(0, &Value::Int(5)));
        assert!(!t.contains_value(0, &Value::Int(6)));
        assert!(!t.contains_value(0, &Value::Null));
    }
}
