//! SQL errors with SQLSTATE classification.
//!
//! SQLSTATEs matter to the DAIS stack because WS-DAIR responses carry an
//! SQL communication area (paper §4.1, Figure 2: "the SQL realisation
//! extends the message pattern to also include information from the SQL
//! communication area"); the state codes reported here flow into it.

use std::fmt;

/// Error classes, each mapped to a standard SQLSTATE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlErrorKind {
    /// 42601 — syntax error in the statement text.
    Syntax,
    /// 42P01 — referenced table does not exist.
    UndefinedTable,
    /// 42P07 — table already exists.
    DuplicateTable,
    /// 42703 — referenced column does not exist.
    UndefinedColumn,
    /// 42702 — ambiguous column reference.
    AmbiguousColumn,
    /// 42803 — grouping error (column not in GROUP BY).
    Grouping,
    /// 42883 — unknown function or wrong argument count.
    UndefinedFunction,
    /// 22012 — division by zero.
    DivisionByZero,
    /// 22P02 — invalid text representation / cast failure.
    InvalidCast,
    /// 23502 — NOT NULL constraint violated.
    NotNullViolation,
    /// 23505 — unique/primary key constraint violated.
    UniqueViolation,
    /// 23503 — foreign key constraint violated.
    ForeignKeyViolation,
    /// 23514 — CHECK constraint violated.
    CheckViolation,
    /// 22023 — invalid parameter value (e.g. missing placeholder binding).
    InvalidParameter,
    /// 25001 — invalid transaction state (nested BEGIN etc.).
    TransactionState,
    /// 0A000 — feature not supported by this engine.
    NotSupported,
    /// 42501 — insufficient privilege (read-only resource written, etc.).
    InsufficientPrivilege,
    /// XX000 — an engine invariant failed; a bug, not a user error.
    Internal,
}

impl SqlErrorKind {
    /// The five-character SQLSTATE for this class.
    pub fn sqlstate(self) -> &'static str {
        match self {
            SqlErrorKind::Syntax => "42601",
            SqlErrorKind::UndefinedTable => "42P01",
            SqlErrorKind::DuplicateTable => "42P07",
            SqlErrorKind::UndefinedColumn => "42703",
            SqlErrorKind::AmbiguousColumn => "42702",
            SqlErrorKind::Grouping => "42803",
            SqlErrorKind::UndefinedFunction => "42883",
            SqlErrorKind::DivisionByZero => "22012",
            SqlErrorKind::InvalidCast => "22P02",
            SqlErrorKind::NotNullViolation => "23502",
            SqlErrorKind::UniqueViolation => "23505",
            SqlErrorKind::ForeignKeyViolation => "23503",
            SqlErrorKind::CheckViolation => "23514",
            SqlErrorKind::InvalidParameter => "22023",
            SqlErrorKind::TransactionState => "25001",
            SqlErrorKind::NotSupported => "0A000",
            SqlErrorKind::InsufficientPrivilege => "42501",
            SqlErrorKind::Internal => "XX000",
        }
    }
}

/// An error produced while parsing, planning or executing a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    pub kind: SqlErrorKind,
    pub message: String,
}

impl SqlError {
    pub fn new(kind: SqlErrorKind, message: impl Into<String>) -> Self {
        SqlError { kind, message: message.into() }
    }

    pub fn syntax(message: impl Into<String>) -> Self {
        Self::new(SqlErrorKind::Syntax, message)
    }

    /// The SQLSTATE of this error.
    pub fn sqlstate(&self) -> &'static str {
        self.kind.sqlstate()
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error [{}]: {}", self.sqlstate(), self.message)
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqlstates_are_stable() {
        assert_eq!(SqlError::syntax("x").sqlstate(), "42601");
        assert_eq!(SqlError::new(SqlErrorKind::UniqueViolation, "x").sqlstate(), "23505");
        assert_eq!(SqlError::new(SqlErrorKind::DivisionByZero, "x").sqlstate(), "22012");
    }

    #[test]
    fn display_includes_state_and_message() {
        let e = SqlError::new(SqlErrorKind::UndefinedTable, "no table t");
        assert_eq!(e.to_string(), "SQL error [42P01]: no table t");
    }
}
