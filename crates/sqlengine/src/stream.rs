//! A pull cursor over SELECT results.
//!
//! [`RowStream`] is the zero-materialisation read path: when a statement
//! is pushdown-eligible (see the planner in [`crate::exec`]) the cursor
//! lends rows straight off the table pages — selection and projection
//! applied on the fly, nothing collected into `Vec<Vec<Value>>` — and
//! falls back to iterating a materialised rowset otherwise. Either way
//! the caller sees the same [`RowRef`] lending interface, so encoders
//! (the WebRowSet streaming writer in particular) are written once.

use crate::ast::{Expr, Select};
use crate::error::SqlError;
use crate::exec::{self, PushdownPlan};
use crate::expr::{eval, EvalContext, ExecSchema};
use crate::rowset::{Rowset, RowsetColumn};
use crate::storage::Storage;
use crate::value::Value;

/// One result row, lent by [`RowStream::next`]. Cells are views into
/// engine-owned storage (or the stream's materialised fallback); the
/// projection indirection is what lets a scan row serve a narrower
/// SELECT without copying the surviving cells.
pub struct RowRef<'a> {
    cells: &'a [Value],
    projection: &'a [usize],
}

impl<'a> RowRef<'a> {
    pub fn len(&self) -> usize {
        self.projection.len()
    }

    pub fn is_empty(&self) -> bool {
        self.projection.is_empty()
    }

    /// The `i`-th output cell.
    pub fn get(&self, i: usize) -> &'a Value {
        &self.cells[self.projection[i]]
    }

    /// Output cells in projection order.
    pub fn iter(&self) -> impl Iterator<Item = &'a Value> + '_ {
        self.projection.iter().map(move |&i| &self.cells[i])
    }
}

enum Source<'a> {
    /// Pushdown: borrowed table scan with on-the-fly selection,
    /// projection and windowing. Only surviving cells are ever touched.
    Scan {
        rows: Box<dyn Iterator<Item = &'a Vec<Value>> + 'a>,
        schema: ExecSchema,
        predicate: Option<&'a Expr>,
        params: &'a [Value],
        projection: Vec<usize>,
        to_skip: usize,
        remaining: usize,
    },
    /// Fallback: a materialised result, iterated in place.
    Owned { rowset: Rowset, identity: Vec<usize>, pos: usize },
}

/// A pull-based cursor over the rows of one SELECT.
pub struct RowStream<'a> {
    columns: Vec<RowsetColumn>,
    source: Source<'a>,
}

impl<'a> RowStream<'a> {
    /// Wrap an already-materialised rowset (identity projection).
    pub fn from_rowset(rowset: Rowset) -> RowStream<'a> {
        let identity = (0..rowset.columns.len()).collect();
        RowStream {
            columns: rowset.columns.clone(),
            source: Source::Owned { rowset, identity, pos: 0 },
        }
    }

    /// The output columns (names and declared types).
    pub fn columns(&self) -> &[RowsetColumn] {
        &self.columns
    }

    /// The next row, or `None` when the stream is exhausted. WHERE
    /// evaluation errors surface here, exactly as the materialising
    /// executor would raise them. Not `Iterator::next`: the rows borrow
    /// from the cursor, which a lending `Iterator` cannot express.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<RowRef<'_>>, SqlError> {
        match &mut self.source {
            Source::Scan { rows, schema, predicate, params, projection, to_skip, remaining } => {
                if *remaining == 0 {
                    return Ok(None);
                }
                for row in rows.by_ref() {
                    if let Some(p) = predicate {
                        let ctx = EvalContext::new(schema, row, params);
                        if !matches!(eval(p, &ctx)?, Value::Bool(true)) {
                            continue;
                        }
                    }
                    if *to_skip > 0 {
                        *to_skip -= 1;
                        continue;
                    }
                    *remaining -= 1;
                    return Ok(Some(RowRef { cells: row, projection }));
                }
                Ok(None)
            }
            Source::Owned { rowset, identity, pos } => match rowset.rows.get(*pos) {
                Some(row) => {
                    *pos += 1;
                    Ok(Some(RowRef { cells: row, projection: identity }))
                }
                None => Ok(None),
            },
        }
    }

    /// Drain the remainder into a materialised rowset (tests, adapters).
    pub fn collect_rowset(&mut self) -> Result<Rowset, SqlError> {
        let mut out = Rowset::new(self.columns.clone());
        while let Some(row) = self.next()? {
            out.rows.push(row.iter().cloned().collect());
        }
        Ok(out)
    }
}

/// Open a cursor over a parsed SELECT. Pushdown-eligible, unordered
/// statements stream borrowed rows straight off the scan; ordered
/// pushdowns and everything else materialise first (a sort needs all
/// rows anyway), then iterate.
pub fn open_stream<'a>(
    select: &'a Select,
    storage: &'a Storage,
    params: &'a [Value],
) -> Result<RowStream<'a>, SqlError> {
    if select.unions.is_empty() {
        if let Some(plan) = exec::plan_pushdown(select, storage) {
            if plan.order.is_empty() {
                let table = storage.table(&plan.table)?;
                let PushdownPlan { schema, projection, columns, offset, limit, .. } = plan;
                return Ok(RowStream {
                    columns,
                    source: Source::Scan {
                        rows: Box::new(table.scan().map(|(_, r)| r)),
                        schema,
                        predicate: select.where_clause.as_ref(),
                        params,
                        projection,
                        to_skip: offset,
                        remaining: limit,
                    },
                });
            }
            let rowset = exec::run_pushdown(&plan, select.where_clause.as_ref(), storage, params)?;
            return Ok(RowStream::from_rowset(rowset));
        }
    }
    Ok(RowStream::from_rowset(exec::run_select(select, storage, params)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::parser::parse_statement;
    use crate::value::SqlType;

    fn db() -> Database {
        let db = Database::new("s");
        db.execute_script(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR, d DOUBLE);
             INSERT INTO t VALUES (1, 'a', 1.5), (2, NULL, 2.5), (3, 'c', 3.5),
                                  (4, 'd', 4.5), (5, 'e', 5.5);",
        )
        .unwrap();
        db
    }

    fn streamed(db: &Database, sql: &str, params: &[Value]) -> Rowset {
        db.stream_query(sql, params, |s| s.collect_rowset()).unwrap().unwrap()
    }

    #[test]
    fn stream_matches_materialised_execution() {
        let db = db();
        for sql in [
            "SELECT * FROM t",
            "SELECT id, v FROM t WHERE d > 2.0",
            "SELECT v FROM t WHERE v IS NULL",
            "SELECT id FROM t LIMIT 2 OFFSET 1",
            "SELECT id, d FROM t ORDER BY d DESC LIMIT 3",
            "SELECT COUNT(*) FROM t",
            "SELECT a.id FROM t a JOIN t b ON a.id = b.id WHERE b.d > 3.0",
        ] {
            let direct = db.execute(sql, &[]).unwrap().rowset().unwrap().clone();
            assert_eq!(streamed(&db, sql, &[]), direct, "divergence for {sql}");
        }
    }

    #[test]
    fn stream_lends_projected_cells() {
        let db = db();
        db.stream_query("SELECT v, id FROM t WHERE id = ?", &[Value::Int(3)], |s| {
            assert_eq!(s.columns().len(), 2);
            assert_eq!(s.columns()[0].ty, SqlType::Varchar);
            let row = s.next().unwrap().expect("one row");
            assert_eq!(row.len(), 2);
            assert_eq!(row.get(0), &Value::Str("c".into()));
            assert_eq!(row.get(1), &Value::Int(3));
            assert_eq!(row.iter().count(), 2);
            assert!(s.next().unwrap().is_none());
        })
        .unwrap();
    }

    #[test]
    fn stream_surfaces_eval_errors() {
        let db = db();
        let err = db
            .stream_query("SELECT id FROM t WHERE id = ?", &[], |s| s.next().map(|r| r.is_some()))
            .unwrap()
            .unwrap_err();
        assert_eq!(err.kind, crate::error::SqlErrorKind::InvalidParameter);
    }

    #[test]
    fn stream_rejects_non_select() {
        let db = db();
        assert!(db.stream_query("DELETE FROM t", &[], |_| ()).is_err());
    }

    #[test]
    fn open_stream_uses_scan_source_when_unordered() {
        let db = db();
        let stmt = parse_statement("SELECT id FROM t WHERE d > 2.0 LIMIT 2").unwrap();
        let crate::ast::Stmt::Select(select) = &stmt else { unreachable!() };
        db.with_storage(|storage| {
            let mut s = open_stream(select, storage, &[]).unwrap();
            assert!(matches!(s.source, Source::Scan { .. }));
            let mut ids = Vec::new();
            while let Some(row) = s.next().unwrap() {
                ids.push(row.get(0).clone());
            }
            assert_eq!(ids, vec![Value::Int(2), Value::Int(3)]);
        });
    }
}
