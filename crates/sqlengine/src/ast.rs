//! The SQL abstract syntax tree.

use crate::value::{SqlType, Value};

/// A complete statement.
// Statements are parsed once and immediately executed; boxing the big
// variants would buy nothing on this non-hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Select(Select),
    Insert(Insert),
    Update(Update),
    Delete(Delete),
    CreateTable(CreateTable),
    DropTable { name: String, if_exists: bool },
    CreateIndex { name: String, table: String, column: String, unique: bool },
    Begin,
    Commit,
    Rollback,
}

/// A SELECT statement (optionally the head of a UNION chain).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    /// `UNION [ALL]` arms, in order. Each arm is a core select (no ORDER
    /// BY / LIMIT of its own); the outer `order_by`/`limit`/`offset`
    /// apply to the combined result, per SQL.
    pub unions: Vec<UnionArm>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

/// One `UNION [ALL] <select>` arm.
#[derive(Debug, Clone, PartialEq)]
pub struct UnionArm {
    /// `UNION ALL` keeps duplicates; plain `UNION` deduplicates the
    /// entire combined result.
    pub all: bool,
    pub select: Select,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr { expr: Expr, alias: Option<String> },
}

#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is addressed by in column qualifiers.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinKind,
    pub table: TableRef,
    /// Absent only for CROSS joins.
    pub on: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub ascending: bool,
}

/// An INSERT statement: literal rows or a source query.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    /// Target columns; empty means "all columns, in table order".
    pub columns: Vec<String>,
    pub source: InsertSource,
}

#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Box<Select>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub where_clause: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub where_clause: Option<Expr>,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: SqlType,
    pub not_null: bool,
    pub unique: bool,
    pub primary_key: bool,
    pub default: Option<Expr>,
    /// `REFERENCES other_table (other_column)`.
    pub references: Option<(String, String)>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub if_not_exists: bool,
    pub columns: Vec<ColumnDef>,
    /// Table-level PRIMARY KEY constraint columns (may be composite).
    pub primary_key: Vec<String>,
    /// Table-level CHECK constraints.
    pub checks: Vec<Expr>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    And,
    Or,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    /// `name` or `qualifier.name`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// The `?` placeholder, numbered left to right from 0.
    Param(usize),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinaryOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `expr LIKE pattern` (pattern is any expression, usually a literal).
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `expr IN (a, b, c)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// Searched CASE (`CASE WHEN c THEN v ... [ELSE e] END`) or simple
    /// CASE when `operand` is present.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_value: Option<Box<Expr>>,
    },
    /// A function call; aggregates use the same node and are recognised by
    /// name during planning. `COUNT(*)` is `Function { name: "COUNT", args: [], star: true }`.
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
        star: bool,
    },
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column { qualifier: None, name: name.to_string() }
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    /// Does this expression (sub)tree contain an aggregate function call?
    pub fn contains_aggregate(&self) -> bool {
        if let Expr::Function { name, star, .. } = self {
            if *star || is_aggregate_name(name) {
                return true;
            }
        }
        self.children().iter().any(|c| c.contains_aggregate())
    }

    /// Immediate sub-expressions.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) => Vec::new(),
            Expr::Unary { expr, .. } => vec![expr],
            Expr::Binary { lhs, rhs, .. } => vec![lhs, rhs],
            Expr::Like { expr, pattern, .. } => vec![expr, pattern],
            Expr::InList { expr, list, .. } => {
                let mut v = vec![expr.as_ref()];
                v.extend(list.iter());
                v
            }
            Expr::Between { expr, low, high, .. } => vec![expr, low, high],
            Expr::IsNull { expr, .. } => vec![expr],
            Expr::Case { operand, branches, else_value } => {
                let mut v = Vec::new();
                if let Some(o) = operand {
                    v.push(o.as_ref());
                }
                for (w, t) in branches {
                    v.push(w);
                    v.push(t);
                }
                if let Some(e) = else_value {
                    v.push(e.as_ref());
                }
                v
            }
            Expr::Function { args, .. } => args.iter().collect(),
        }
    }
}

/// Is this an aggregate function name?
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name.to_ascii_uppercase().as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function {
            name: "SUM".into(),
            args: vec![Expr::col("x")],
            distinct: false,
            star: false,
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(Expr::lit(Value::Int(1))),
            rhs: Box::new(agg),
        };
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let scalar_fn = Expr::Function {
            name: "UPPER".into(),
            args: vec![Expr::col("x")],
            distinct: false,
            star: false,
        };
        assert!(!scalar_fn.contains_aggregate());
    }

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableRef { name: "orders".into(), alias: Some("o".into()) };
        assert_eq!(t.binding_name(), "o");
        let t = TableRef { name: "orders".into(), alias: None };
        assert_eq!(t.binding_name(), "orders");
    }
}
