//! The SQL communication area.
//!
//! Figure 2 of the paper notes that "the SQL realisation extends the
//! message pattern to also include information from the SQL communication
//! area" — the SQLSTATE, update count and diagnostic messages of the
//! statement just executed. WS-DAIR responses embed this structure.

use dais_xml::{ns, XmlElement};

/// Diagnostics describing the outcome of one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlCommunicationArea {
    /// Five-character SQLSTATE; `00000` is success, `02000` is
    /// success-with-no-data.
    pub sqlstate: String,
    /// Rows affected by a DML statement.
    pub update_count: u64,
    /// Human-readable diagnostics.
    pub messages: Vec<String>,
}

impl Default for SqlCommunicationArea {
    fn default() -> Self {
        Self::success()
    }
}

impl SqlCommunicationArea {
    /// Successful completion.
    pub fn success() -> Self {
        SqlCommunicationArea { sqlstate: "00000".into(), update_count: 0, messages: Vec::new() }
    }

    /// Successful completion of a DML statement affecting `n` rows.
    /// SQLSTATE 02000 signals that zero rows matched.
    pub fn with_update_count(n: u64) -> Self {
        SqlCommunicationArea {
            sqlstate: if n == 0 { "02000".into() } else { "00000".into() },
            update_count: n,
            messages: Vec::new(),
        }
    }

    /// A failed statement.
    pub fn failure(sqlstate: impl Into<String>, message: impl Into<String>) -> Self {
        SqlCommunicationArea {
            sqlstate: sqlstate.into(),
            update_count: 0,
            messages: vec![message.into()],
        }
    }

    /// Did the statement succeed?
    pub fn is_success(&self) -> bool {
        self.sqlstate.starts_with("00") || self.sqlstate.starts_with("02")
    }

    /// Encode as the `SQLCommunicationArea` element of WS-DAIR messages.
    pub fn to_xml(&self) -> XmlElement {
        let mut el = XmlElement::new(ns::WSDAIR, "wsdair", "SQLCommunicationArea");
        el.push(XmlElement::new(ns::WSDAIR, "wsdair", "SQLState").with_text(&self.sqlstate));
        el.push(
            XmlElement::new(ns::WSDAIR, "wsdair", "SQLUpdateCount")
                .with_text(self.update_count.to_string()),
        );
        for m in &self.messages {
            el.push(XmlElement::new(ns::WSDAIR, "wsdair", "SQLMessage").with_text(m));
        }
        el
    }

    /// Decode from the message form.
    pub fn from_xml(el: &XmlElement) -> Option<SqlCommunicationArea> {
        if !el.name.is(ns::WSDAIR, "SQLCommunicationArea") {
            return None;
        }
        Some(SqlCommunicationArea {
            sqlstate: el.child_text(ns::WSDAIR, "SQLState")?,
            update_count: el
                .child_text(ns::WSDAIR, "SQLUpdateCount")
                .and_then(|t| t.parse().ok())
                .unwrap_or(0),
            messages: el.children_named(ns::WSDAIR, "SQLMessage").map(|m| m.text()).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_states() {
        assert!(SqlCommunicationArea::success().is_success());
        assert!(SqlCommunicationArea::with_update_count(0).is_success());
        assert_eq!(SqlCommunicationArea::with_update_count(0).sqlstate, "02000");
        assert_eq!(SqlCommunicationArea::with_update_count(3).sqlstate, "00000");
        assert!(!SqlCommunicationArea::failure("42601", "syntax").is_success());
    }

    #[test]
    fn xml_roundtrip() {
        let c = SqlCommunicationArea {
            sqlstate: "23505".into(),
            update_count: 0,
            messages: vec!["duplicate key".into(), "second note".into()],
        };
        let rt = SqlCommunicationArea::from_xml(&c.to_xml()).unwrap();
        assert_eq!(rt, c);
    }

    #[test]
    fn from_xml_rejects_other_elements() {
        assert!(SqlCommunicationArea::from_xml(&XmlElement::new_local("x")).is_none());
    }
}
