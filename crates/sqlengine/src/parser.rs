//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::{tokenize, Token};
use crate::value::{SqlType, Value};

/// Parse one statement (a trailing semicolon is tolerated).
pub fn parse_statement(sql: &str) -> Result<Stmt, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = P { tokens: &tokens, pos: 0, params: 0 };
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    if p.pos != tokens.len() {
        return Err(SqlError::syntax(format!("unexpected input after statement: {:?}", p.peek())));
    }
    Ok(stmt)
}

/// Count the `?` placeholders in a statement (for binding validation).
pub fn count_params(stmt: &Stmt) -> usize {
    fn expr_max(e: &Expr, max: &mut usize) {
        if let Expr::Param(i) = e {
            *max = (*max).max(i + 1);
        }
        for c in e.children() {
            expr_max(c, max);
        }
    }
    fn select_max(s: &Select, max: &mut usize) {
        for item in &s.items {
            if let SelectItem::Expr { expr, .. } = item {
                expr_max(expr, max);
            }
        }
        for j in &s.joins {
            if let Some(on) = &j.on {
                expr_max(on, max);
            }
        }
        if let Some(w) = &s.where_clause {
            expr_max(w, max);
        }
        for g in &s.group_by {
            expr_max(g, max);
        }
        if let Some(h) = &s.having {
            expr_max(h, max);
        }
        for arm in &s.unions {
            select_max(&arm.select, max);
        }
        for o in &s.order_by {
            expr_max(&o.expr, max);
        }
    }
    let mut max = 0;
    match stmt {
        Stmt::Select(s) => select_max(s, &mut max),
        Stmt::Insert(i) => match &i.source {
            InsertSource::Values(rows) => {
                for r in rows {
                    for e in r {
                        expr_max(e, &mut max);
                    }
                }
            }
            InsertSource::Query(q) => select_max(q, &mut max),
        },
        Stmt::Update(u) => {
            for (_, e) in &u.assignments {
                expr_max(e, &mut max);
            }
            if let Some(w) = &u.where_clause {
                expr_max(w, &mut max);
            }
        }
        Stmt::Delete(d) => {
            if let Some(w) = &d.where_clause {
                expr_max(w, &mut max);
            }
        }
        _ => {}
    }
    max
}

struct P<'a> {
    tokens: &'a [Token],
    pos: usize,
    params: usize,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Keyword(k)) = self.peek() {
            if k == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::syntax(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), SqlError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(SqlError::syntax(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    /// An identifier; keywords are not identifiers.
    fn ident(&mut self) -> Result<String, SqlError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::syntax(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Stmt, SqlError> {
        if self.peek_kw("SELECT") {
            return Ok(Stmt::Select(self.select()?));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            let unique = self.eat_kw("UNIQUE");
            self.expect_kw("INDEX")?;
            return self.create_index(unique);
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            return Ok(Stmt::DropTable { name, if_exists });
        }
        if self.eat_kw("BEGIN") {
            self.eat_kw("TRANSACTION");
            return Ok(Stmt::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Stmt::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            return Ok(Stmt::Rollback);
        }
        Err(SqlError::syntax(format!("unrecognised statement start: {:?}", self.peek())))
    }

    // -- SELECT ---------------------------------------------------------

    /// A full query: core select, UNION arms, then ORDER BY/LIMIT/OFFSET
    /// applying to the combined result.
    fn select(&mut self) -> Result<Select, SqlError> {
        let mut select = self.select_core()?;
        while self.eat_kw("UNION") {
            let all = self.eat_kw("ALL");
            let arm = self.select_core()?;
            select.unions.push(UnionArm { all, select: arm });
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                select.order_by.push(OrderItem { expr, ascending });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            select.limit = Some(self.unsigned()?);
        }
        if self.eat_kw("OFFSET") {
            select.offset = Some(self.unsigned()?);
        }
        Ok(select)
    }

    /// A core select without ORDER BY/LIMIT/OFFSET (the unit UNION chains).
    fn select_core(&mut self) -> Result<Select, SqlError> {
        self.expect_kw("SELECT")?;
        let mut select = Select::default();
        if self.eat_kw("DISTINCT") {
            select.distinct = true;
        } else {
            self.eat_kw("ALL");
        }

        loop {
            select.items.push(self.select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }

        if self.eat_kw("FROM") {
            select.from = Some(self.table_ref()?);
            loop {
                let kind = if self.eat_kw("INNER") {
                    self.expect_kw("JOIN")?;
                    JoinKind::Inner
                } else if self.eat_kw("LEFT") {
                    self.eat_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinKind::Left
                } else if self.eat_kw("CROSS") {
                    self.expect_kw("JOIN")?;
                    JoinKind::Cross
                } else if self.eat_kw("JOIN") {
                    JoinKind::Inner
                } else {
                    break;
                };
                let table = self.table_ref()?;
                let on = if kind == JoinKind::Cross {
                    None
                } else {
                    self.expect_kw("ON")?;
                    Some(self.expr()?)
                };
                select.joins.push(Join { kind, table, on });
            }
        }

        if self.eat_kw("WHERE") {
            select.where_clause = Some(self.expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                select.group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            select.having = Some(self.expr()?);
        }
        Ok(select)
    }

    fn unsigned(&mut self) -> Result<u64, SqlError> {
        match self.bump() {
            Some(Token::Number(n)) => {
                n.parse().map_err(|_| SqlError::syntax(format!("expected an integer, found {n}")))
            }
            other => Err(SqlError::syntax(format!("expected an integer, found {other:?}"))),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let (Some(Token::Ident(q)), Some(Token::Dot), Some(Token::Star)) =
            (self.peek(), self.tokens.get(self.pos + 1), self.tokens.get(self.pos + 2))
        {
            let q = q.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(_)) = self.peek() {
            // Bare alias.
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let name = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(_)) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    // -- DML ---------------------------------------------------------------

    fn insert(&mut self) -> Result<Stmt, SqlError> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat(&Token::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        let source = if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.peek_kw("SELECT") {
            InsertSource::Query(Box::new(self.select()?))
        } else {
            return Err(SqlError::syntax("expected VALUES or SELECT in INSERT"));
        };
        Ok(Stmt::Insert(Insert { table, columns, source }))
    }

    fn update(&mut self) -> Result<Stmt, SqlError> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Stmt::Update(Update { table, assignments, where_clause }))
    }

    fn delete(&mut self) -> Result<Stmt, SqlError> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Stmt::Delete(Delete { table, where_clause }))
    }

    // -- DDL ---------------------------------------------------------------

    fn create_table(&mut self) -> Result<Stmt, SqlError> {
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns: Vec<ColumnDef> = Vec::new();
        let mut primary_key: Vec<String> = Vec::new();
        let mut checks: Vec<Expr> = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect(&Token::LParen)?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            } else if self.eat_kw("CHECK") {
                self.expect(&Token::LParen)?;
                checks.push(self.expr()?);
                self.expect(&Token::RParen)?;
            } else if self.eat_kw("FOREIGN") {
                self.expect_kw("KEY")?;
                self.expect(&Token::LParen)?;
                let col = self.ident()?;
                self.expect(&Token::RParen)?;
                self.expect_kw("REFERENCES")?;
                let ftable = self.ident()?;
                self.expect(&Token::LParen)?;
                let fcol = self.ident()?;
                self.expect(&Token::RParen)?;
                if let Some(c) = columns.iter_mut().find(|c| c.name.eq_ignore_ascii_case(&col)) {
                    c.references = Some((ftable, fcol));
                } else {
                    return Err(SqlError::syntax(format!(
                        "FOREIGN KEY names unknown column {col}"
                    )));
                }
            } else {
                columns.push(self.column_def()?);
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Stmt::CreateTable(CreateTable { name, if_not_exists, columns, primary_key, checks }))
    }

    fn column_def(&mut self) -> Result<ColumnDef, SqlError> {
        let name = self.ident()?;
        let ty_name = self.ident()?;
        let ty = SqlType::parse(&ty_name)
            .ok_or_else(|| SqlError::syntax(format!("unknown column type '{ty_name}'")))?;
        // Optional length, e.g. VARCHAR(64) — accepted and ignored.
        if self.eat(&Token::LParen) {
            self.unsigned()?;
            if self.eat(&Token::Comma) {
                self.unsigned()?;
            }
            self.expect(&Token::RParen)?;
        }
        let mut def = ColumnDef {
            name,
            ty,
            not_null: false,
            unique: false,
            primary_key: false,
            default: None,
            references: None,
        };
        loop {
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                def.not_null = true;
            } else if self.eat_kw("NULL") {
                // explicit nullable, default
            } else if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                def.primary_key = true;
                def.not_null = true;
            } else if self.eat_kw("UNIQUE") {
                def.unique = true;
            } else if self.eat_kw("DEFAULT") {
                def.default = Some(self.expr()?);
            } else if self.eat_kw("REFERENCES") {
                let ftable = self.ident()?;
                self.expect(&Token::LParen)?;
                let fcol = self.ident()?;
                self.expect(&Token::RParen)?;
                def.references = Some((ftable, fcol));
            } else if self.eat_kw("CHECK") {
                // Column-level CHECK is hoisted by the caller via DDL
                // normalisation; store as table check through a marker.
                return Err(SqlError::new(
                    crate::error::SqlErrorKind::NotSupported,
                    "column-level CHECK is not supported; use a table-level CHECK",
                ));
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn create_index(&mut self, unique: bool) -> Result<Stmt, SqlError> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect(&Token::LParen)?;
        let column = self.ident()?;
        self.expect(&Token::RParen)?;
        Ok(Stmt::CreateIndex { name, table, column, unique })
    }

    // -- expressions ---------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinaryOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary { op: BinaryOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        let lhs = self.additive()?;
        // Postfix predicates.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(lhs), negated });
        }
        let negated = if self.peek_kw("NOT") {
            // Lookahead for NOT LIKE / NOT IN / NOT BETWEEN.
            match self.tokens.get(self.pos + 1) {
                Some(Token::Keyword(k)) if k == "LIKE" || k == "IN" || k == "BETWEEN" => {
                    self.pos += 1;
                    true
                }
                _ => false,
            }
        } else {
            false
        };
        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like { expr: Box::new(lhs), pattern: Box::new(pattern), negated });
        }
        if self.eat_kw("IN") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(lhs), list, negated });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(SqlError::syntax("expected LIKE, IN or BETWEEN after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinaryOp::Eq,
            Some(Token::Ne) => BinaryOp::Ne,
            Some(Token::Lt) => BinaryOp::Lt,
            Some(Token::Le) => BinaryOp::Le,
            Some(Token::Gt) => BinaryOp::Gt,
            Some(Token::Ge) => BinaryOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.additive()?;
        Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                Some(Token::Concat) => BinaryOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat(&Token::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
        }
        if self.eat(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.bump() {
            Some(Token::Number(n)) => {
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    n.parse::<f64>()
                        .map(|d| Expr::Literal(Value::Double(d)))
                        .map_err(|_| SqlError::syntax(format!("bad number {n}")))
                } else {
                    n.parse::<i64>()
                        .map(|i| Expr::Literal(Value::Int(i)))
                        .map_err(|_| SqlError::syntax(format!("bad number {n}")))
                }
            }
            Some(Token::String(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::Param) => {
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Expr::Literal(Value::Bool(true))),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Expr::Literal(Value::Bool(false))),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Expr::Literal(Value::Null)),
            Some(Token::Keyword(k)) if k == "CASE" => self.case_expr(),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                // Function call?
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    let mut distinct = false;
                    let mut star = false;
                    if self.eat(&Token::Star) {
                        star = true;
                    } else if self.peek() != Some(&Token::RParen) {
                        distinct = self.eat_kw("DISTINCT");
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Function {
                        name: name.to_ascii_uppercase(),
                        args,
                        distinct,
                        star,
                    });
                }
                // Qualified column?
                if self.eat(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column { qualifier: Some(name), name: col });
                }
                Ok(Expr::Column { qualifier: None, name })
            }
            other => Err(SqlError::syntax(format!("unexpected token in expression: {other:?}"))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr, SqlError> {
        let operand = if self.peek_kw("WHEN") { None } else { Some(Box::new(self.expr()?)) };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.expr()?;
            self.expect_kw("THEN")?;
            let value = self.expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return Err(SqlError::syntax("CASE requires at least one WHEN branch"));
        }
        let else_value = if self.eat_kw("ELSE") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw("END")?;
        Ok(Expr::Case { operand, branches, else_value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Select {
        match parse_statement(sql).unwrap() {
            Stmt::Select(s) => s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_basic_select() {
        let s = sel("SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY b DESC LIMIT 10 OFFSET 2");
        assert_eq!(s.items.len(), 2);
        assert!(matches!(&s.items[1], SelectItem::Expr { alias: Some(a), .. } if a == "bee"));
        assert!(s.where_clause.is_some());
        assert!(!s.order_by[0].ascending);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(2));
    }

    #[test]
    fn parses_joins() {
        let s = sel("SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.x = c.x CROSS JOIN d");
        assert_eq!(s.joins.len(), 3);
        assert_eq!(s.joins[0].kind, JoinKind::Inner);
        assert_eq!(s.joins[1].kind, JoinKind::Left);
        assert_eq!(s.joins[2].kind, JoinKind::Cross);
        assert!(s.joins[2].on.is_none());
    }

    #[test]
    fn parses_aliases_and_wildcards() {
        let s = sel("SELECT t.*, u.name FROM things t CROSS JOIN \"other\" AS u");
        assert!(matches!(&s.items[0], SelectItem::QualifiedWildcard(q) if q == "t"));
        assert_eq!(s.from.as_ref().unwrap().binding_name(), "t");
        assert_eq!(s.joins[0].table.binding_name(), "u");
    }

    #[test]
    fn parses_group_by_having() {
        let s = sel("SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 3");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { expr: Expr::Function { star: true, .. }, .. }
        ));
    }

    #[test]
    fn parses_insert_values() {
        match parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap() {
            Stmt::Insert(i) => {
                assert_eq!(i.columns, vec!["a", "b"]);
                match i.source {
                    InsertSource::Values(rows) => assert_eq!(rows.len(), 2),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_insert_select() {
        match parse_statement("INSERT INTO t SELECT * FROM s WHERE x > 0").unwrap() {
            Stmt::Insert(i) => assert!(matches!(i.source, InsertSource::Query(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_update_delete() {
        match parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE id = ?").unwrap() {
            Stmt::Update(u) => {
                assert_eq!(u.assignments.len(), 2);
                assert!(u.where_clause.is_some());
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("DELETE FROM t").unwrap() {
            Stmt::Delete(d) => assert!(d.where_clause.is_none()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_create_table() {
        let sql = "CREATE TABLE IF NOT EXISTS t (
            id INTEGER PRIMARY KEY,
            name VARCHAR(64) NOT NULL,
            price DOUBLE DEFAULT 0.0,
            dept_id INTEGER REFERENCES dept (id),
            CHECK (price >= 0)
        )";
        match parse_statement(sql).unwrap() {
            Stmt::CreateTable(c) => {
                assert!(c.if_not_exists);
                assert_eq!(c.columns.len(), 4);
                assert!(c.columns[0].primary_key);
                assert!(c.columns[1].not_null);
                assert!(c.columns[2].default.is_some());
                assert_eq!(c.columns[3].references, Some(("dept".into(), "id".into())));
                assert_eq!(c.checks.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_table_level_pk() {
        match parse_statement("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))").unwrap() {
            Stmt::CreateTable(c) => assert_eq!(c.primary_key, vec!["a", "b"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_predicates() {
        let s = sel("SELECT * FROM t WHERE a LIKE 'x%' AND b NOT IN (1,2) AND c BETWEEN 1 AND 5 AND d IS NOT NULL");
        let w = s.where_clause.unwrap();
        // Just check it's a conjunction tree with the right leaves present.
        fn flatten<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::Binary { op: BinaryOp::And, lhs, rhs } = e {
                flatten(lhs, out);
                flatten(rhs, out);
            } else {
                out.push(e);
            }
        }
        let mut leaves = Vec::new();
        flatten(&w, &mut leaves);
        assert_eq!(leaves.len(), 4);
        assert!(matches!(leaves[0], Expr::Like { negated: false, .. }));
        assert!(matches!(leaves[1], Expr::InList { negated: true, .. }));
        assert!(matches!(leaves[2], Expr::Between { negated: false, .. }));
        assert!(matches!(leaves[3], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn parses_case() {
        let s = sel("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t");
        assert!(matches!(&s.items[0], SelectItem::Expr { expr: Expr::Case { .. }, .. }));
        let s = sel("SELECT CASE a WHEN 1 THEN 'one' END FROM t");
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Case { operand, .. }, .. } => assert!(operand.is_some()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn params_numbered_in_order() {
        let stmt = parse_statement("SELECT * FROM t WHERE a = ? AND b = ?").unwrap();
        assert_eq!(count_params(&stmt), 2);
        match &stmt {
            Stmt::Select(s) => {
                let w = s.where_clause.as_ref().unwrap();
                let mut params = Vec::new();
                fn walk(e: &Expr, out: &mut Vec<usize>) {
                    if let Expr::Param(i) = e {
                        out.push(*i);
                    }
                    for c in e.children() {
                        walk(c, out);
                    }
                }
                walk(w, &mut params);
                assert_eq!(params, vec![0, 1]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transaction_statements() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Stmt::Begin);
        assert_eq!(parse_statement("BEGIN TRANSACTION").unwrap(), Stmt::Begin);
        assert_eq!(parse_statement("COMMIT").unwrap(), Stmt::Commit);
        assert_eq!(parse_statement("ROLLBACK;").unwrap(), Stmt::Rollback);
    }

    #[test]
    fn drop_and_index() {
        assert_eq!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Stmt::DropTable { name: "t".into(), if_exists: true }
        );
        assert_eq!(
            parse_statement("CREATE UNIQUE INDEX i ON t (c)").unwrap(),
            Stmt::CreateIndex {
                name: "i".into(),
                table: "t".into(),
                column: "c".into(),
                unique: true
            }
        );
    }

    #[test]
    fn operator_precedence() {
        // a + b * c parses as a + (b * c)
        let s = sel("SELECT a + b * c FROM t");
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinaryOp::Add, rhs, .. }, .. } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinaryOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
        // NOT binds tighter than AND.
        let s = sel("SELECT * FROM t WHERE NOT a AND b");
        assert!(matches!(s.where_clause.unwrap(), Expr::Binary { op: BinaryOp::And, .. }));
    }

    #[test]
    fn errors_reported() {
        assert!(parse_statement("SELEC 1").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("INSERT INTO t").is_err());
        assert!(parse_statement("SELECT 1 extra garbage, ,").is_err());
        assert!(parse_statement("CREATE TABLE t (a BOGUSTYPE)").is_err());
    }

    #[test]
    fn select_without_from() {
        let s = sel("SELECT 1 + 1");
        assert!(s.from.is_none());
    }

    #[test]
    fn distinct_aggregate() {
        let s = sel("SELECT COUNT(DISTINCT x) FROM t");
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Function { distinct, .. }, .. } => assert!(distinct),
            other => panic!("{other:?}"),
        }
    }
}
