//! The database façade: connections, transactions and statement results.

use crate::ast::Stmt;
use crate::error::{SqlError, SqlErrorKind};
use crate::exec::{self, UndoEntry};
use crate::parser::parse_statement;
use crate::rowset::Rowset;
use crate::sqlcomm::SqlCommunicationArea;
use crate::storage::Storage;
use crate::stream::{open_stream, RowStream};
use crate::value::Value;
use dais_util::sync::RwLock;
use std::sync::Arc;

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// A SELECT produced a rowset.
    Query(Rowset),
    /// DML affected `n` rows.
    Update(u64),
    /// DDL or transaction-control completed.
    Command(&'static str),
}

impl StatementResult {
    /// The rowset, if this was a query.
    pub fn rowset(&self) -> Option<&Rowset> {
        match self {
            StatementResult::Query(r) => Some(r),
            _ => None,
        }
    }

    /// The update count (0 for queries/commands).
    pub fn update_count(&self) -> u64 {
        match self {
            StatementResult::Update(n) => *n,
            _ => 0,
        }
    }

    /// Build the communication area describing this outcome.
    pub fn communication_area(&self) -> SqlCommunicationArea {
        match self {
            StatementResult::Query(r) => {
                if r.rows.is_empty() {
                    SqlCommunicationArea {
                        sqlstate: "02000".into(),
                        ..SqlCommunicationArea::success()
                    }
                } else {
                    SqlCommunicationArea::success()
                }
            }
            StatementResult::Update(n) => SqlCommunicationArea::with_update_count(*n),
            StatementResult::Command(_) => SqlCommunicationArea::success(),
        }
    }
}

/// A shared, thread-safe in-memory database.
///
/// Cloning is cheap (shared state). Concurrency model: a big
/// reader-writer lock — SELECTs share a read lock, DML/DDL take the write
/// lock. Explicit transactions are undo-based and *do not* hold the lock
/// between statements, so other sessions can observe uncommitted changes
/// (READ UNCOMMITTED); this is exactly what the `TransactionIsolation`
/// service property advertises in the WS-DAIR layer.
#[derive(Clone)]
pub struct Database {
    name: String,
    storage: Arc<RwLock<Storage>>,
}

impl Database {
    pub fn new(name: impl Into<String>) -> Database {
        Database { name: name.into(), storage: Arc::new(RwLock::new(Storage::new())) }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Open a session (connection) on this database.
    pub fn connect(&self) -> Session {
        Session { db: self.clone(), txn: None }
    }

    /// One-shot auto-commit execution.
    pub fn execute(&self, sql: &str, params: &[Value]) -> Result<StatementResult, SqlError> {
        self.connect().execute(sql, params)
    }

    /// Run several statements, stopping at the first error.
    pub fn execute_script(&self, sql: &str) -> Result<(), SqlError> {
        let mut session = self.connect();
        for stmt in split_statements(sql) {
            session.execute(&stmt, &[])?;
        }
        Ok(())
    }

    /// Run a SELECT and hand the callback a pull cursor over its rows.
    ///
    /// The callback runs under the storage read lock. Pushdown-eligible
    /// statements lend rows straight off the table pages — selection,
    /// projection and the LIMIT/OFFSET window applied during the scan,
    /// never collected into an intermediate `Vec<Vec<Value>>`; anything
    /// else materialises once and iterates. Non-SELECT statements are
    /// rejected (a cursor over an update count is meaningless).
    pub fn stream_query<R>(
        &self,
        sql: &str,
        params: &[Value],
        f: impl FnOnce(&mut RowStream<'_>) -> R,
    ) -> Result<R, SqlError> {
        let stmt = parse_statement(sql)?;
        let Stmt::Select(select) = &stmt else {
            return Err(SqlError::new(
                SqlErrorKind::NotSupported,
                "stream_query supports SELECT statements only",
            ));
        };
        let storage = self.storage.read();
        let mut stream = open_stream(select, &storage, params)?;
        Ok(f(&mut stream))
    }

    /// Read-only access to the storage (metadata export, tests).
    pub fn with_storage<R>(&self, f: impl FnOnce(&Storage) -> R) -> R {
        f(&self.storage.read())
    }

    /// Sorted table names.
    pub fn table_names(&self) -> Vec<String> {
        self.storage.read().table_names()
    }
}

/// Naive statement splitter for scripts: splits on `;` outside string
/// literals.
pub fn split_statements(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for c in sql.chars() {
        match c {
            '\'' => {
                in_string = !in_string;
                current.push(c);
            }
            ';' if !in_string => {
                if !current.trim().is_empty() {
                    out.push(current.trim().to_string());
                }
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_string());
    }
    out
}

/// A connection with transaction state.
pub struct Session {
    db: Database,
    /// `Some` while an explicit transaction is open; holds the undo log.
    txn: Option<Vec<UndoEntry>>,
}

impl Session {
    /// Is an explicit transaction open?
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Parse and execute one statement. Statements are atomic: a failing
    /// DML statement leaves no partial effects, whether or not an explicit
    /// transaction is open.
    pub fn execute(&mut self, sql: &str, params: &[Value]) -> Result<StatementResult, SqlError> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(&stmt, params)
    }

    /// Execute an already-parsed statement.
    pub fn execute_stmt(
        &mut self,
        stmt: &Stmt,
        params: &[Value],
    ) -> Result<StatementResult, SqlError> {
        match stmt {
            Stmt::Begin => {
                if self.txn.is_some() {
                    return Err(SqlError::new(
                        SqlErrorKind::TransactionState,
                        "a transaction is already open",
                    ));
                }
                self.txn = Some(Vec::new());
                Ok(StatementResult::Command("BEGIN"))
            }
            Stmt::Commit => {
                if self.txn.take().is_none() {
                    return Err(SqlError::new(
                        SqlErrorKind::TransactionState,
                        "no open transaction",
                    ));
                }
                Ok(StatementResult::Command("COMMIT"))
            }
            Stmt::Rollback => match self.txn.take() {
                None => Err(SqlError::new(SqlErrorKind::TransactionState, "no open transaction")),
                Some(entries) => {
                    let mut storage = self.db.storage.write();
                    exec::apply_undo(&mut storage, entries);
                    Ok(StatementResult::Command("ROLLBACK"))
                }
            },
            Stmt::Select(select) => {
                let storage = self.db.storage.read();
                exec::run_select(select, &storage, params).map(StatementResult::Query)
            }
            _ => {
                // Mutating statement: run under the write lock, collecting
                // undo entries for statement atomicity.
                let mut storage = self.db.storage.write();
                let mut undo: Vec<UndoEntry> = Vec::new();
                // Immediately-invoked so `?`-style early errors still reach
                // the rollback arm below with the undo log intact.
                #[allow(clippy::redundant_closure_call)]
                let outcome = (|| -> Result<StatementResult, SqlError> {
                    match stmt {
                        Stmt::Insert(i) => exec::run_insert(i, &mut storage, params, &mut undo)
                            .map(StatementResult::Update),
                        Stmt::Update(u) => exec::run_update(u, &mut storage, params, &mut undo)
                            .map(StatementResult::Update),
                        Stmt::Delete(d) => exec::run_delete(d, &mut storage, params, &mut undo)
                            .map(StatementResult::Update),
                        Stmt::CreateTable(c) => exec::run_create_table(c, &mut storage, &mut undo)
                            .map(|_| StatementResult::Command("CREATE TABLE")),
                        Stmt::DropTable { name, if_exists } => {
                            exec::run_drop_table(name, *if_exists, &mut storage, &mut undo)
                                .map(|_| StatementResult::Command("DROP TABLE"))
                        }
                        Stmt::CreateIndex { name, table, column, unique } => {
                            exec::run_create_index(
                                name,
                                table,
                                column,
                                *unique,
                                &mut storage,
                                &mut undo,
                            )
                            .map(|_| StatementResult::Command("CREATE INDEX"))
                        }
                        Stmt::Select(_) | Stmt::Begin | Stmt::Commit | Stmt::Rollback => {
                            unreachable!("handled above")
                        }
                    }
                })();
                match outcome {
                    Ok(result) => {
                        if let Some(txn) = self.txn.as_mut() {
                            txn.extend(undo);
                        }
                        Ok(result)
                    }
                    Err(e) => {
                        // Statement-level rollback.
                        exec::apply_undo(&mut storage, undo);
                        Err(e)
                    }
                }
            }
        }
    }
}

impl Drop for Session {
    /// An abandoned open transaction rolls back, mirroring connection
    /// teardown semantics in conventional DBMSs.
    fn drop(&mut self) {
        if let Some(entries) = self.txn.take() {
            let mut storage = self.db.storage.write();
            exec::apply_undo(&mut storage, entries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_schema() -> Database {
        let db = Database::new("test");
        db.execute_script(
            "CREATE TABLE dept (id INTEGER PRIMARY KEY, name VARCHAR NOT NULL);
             CREATE TABLE emp (
                 id INTEGER PRIMARY KEY,
                 name VARCHAR NOT NULL,
                 salary DOUBLE DEFAULT 0.0,
                 dept_id INTEGER REFERENCES dept (id),
                 CHECK (salary >= 0)
             );
             INSERT INTO dept VALUES (1, 'eng'), (2, 'sales');
             INSERT INTO emp (id, name, salary, dept_id) VALUES
                 (1, 'ada', 100.0, 1),
                 (2, 'bob', 80.0, 1),
                 (3, 'cyd', 60.0, 2),
                 (4, 'dee', 40.0, NULL);",
        )
        .unwrap();
        db
    }

    fn q(db: &Database, sql: &str) -> Rowset {
        match db.execute(sql, &[]).unwrap() {
            StatementResult::Query(r) => r,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn basic_select() {
        let db = db_with_schema();
        let r = q(&db, "SELECT name FROM emp WHERE salary > 50 ORDER BY name");
        let names: Vec<String> = r.rows.iter().map(|r| r[0].to_display_string()).collect();
        assert_eq!(names, vec!["ada", "bob", "cyd"]);
    }

    #[test]
    fn select_star_and_qualified() {
        let db = db_with_schema();
        let r = q(&db, "SELECT * FROM emp");
        assert_eq!(r.columns.len(), 4);
        assert_eq!(r.rows.len(), 4);
        let r = q(&db, "SELECT e.* FROM emp e WHERE e.id = 1");
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn projection_expressions_and_aliases() {
        let db = db_with_schema();
        let r = q(&db, "SELECT name, salary * 2 AS double_pay FROM emp WHERE id = 1");
        assert_eq!(r.columns[1].name, "double_pay");
        assert_eq!(r.rows[0][1], Value::Double(200.0));
    }

    #[test]
    fn joins() {
        let db = db_with_schema();
        let r = q(
            &db,
            "SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept_id = d.id ORDER BY e.name",
        );
        assert_eq!(r.rows.len(), 3); // dee has NULL dept
        let r = q(
            &db,
            "SELECT e.name, d.name FROM emp e LEFT JOIN dept d ON e.dept_id = d.id ORDER BY e.name",
        );
        assert_eq!(r.rows.len(), 4);
        let dee = r.rows.iter().find(|r| r[0] == Value::Str("dee".into())).unwrap();
        assert!(dee[1].is_null());
        let r = q(&db, "SELECT * FROM emp CROSS JOIN dept");
        assert_eq!(r.rows.len(), 8);
    }

    #[test]
    fn aggregates() {
        let db = db_with_schema();
        let r =
            q(&db, "SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp");
        assert_eq!(r.rows[0][0], Value::Int(4));
        assert_eq!(r.rows[0][1], Value::Double(280.0));
        assert_eq!(r.rows[0][2], Value::Double(70.0));
        assert_eq!(r.rows[0][3], Value::Double(40.0));
        assert_eq!(r.rows[0][4], Value::Double(100.0));
    }

    #[test]
    fn group_by_having() {
        let db = db_with_schema();
        let r = q(
            &db,
            "SELECT dept_id, COUNT(*) AS n, SUM(salary) FROM emp \
             GROUP BY dept_id HAVING COUNT(*) >= 1 ORDER BY n DESC, dept_id",
        );
        assert_eq!(r.rows.len(), 3); // dept 1, dept 2, NULL
        assert_eq!(r.rows[0][0], Value::Int(1));
        assert_eq!(r.rows[0][1], Value::Int(2));
        let r = q(&db, "SELECT dept_id FROM emp GROUP BY dept_id HAVING SUM(salary) > 100");
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn grouping_validation() {
        let db = db_with_schema();
        let err = db.execute("SELECT name, COUNT(*) FROM emp GROUP BY dept_id", &[]).unwrap_err();
        assert_eq!(err.kind, SqlErrorKind::Grouping);
    }

    #[test]
    fn count_empty_table_is_zero() {
        let db = db_with_schema();
        db.execute("DELETE FROM emp", &[]).unwrap();
        let r = q(&db, "SELECT COUNT(*), SUM(salary) FROM emp");
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert!(r.rows[0][1].is_null());
    }

    #[test]
    fn distinct() {
        let db = db_with_schema();
        let r = q(&db, "SELECT DISTINCT dept_id FROM emp ORDER BY dept_id");
        assert_eq!(r.rows.len(), 3);
        let r = q(&db, "SELECT COUNT(DISTINCT dept_id) FROM emp");
        assert_eq!(r.rows[0][0], Value::Int(2)); // NULL not counted
    }

    #[test]
    fn order_by_variants() {
        let db = db_with_schema();
        // by ordinal
        let r = q(&db, "SELECT name, salary FROM emp ORDER BY 2 DESC");
        assert_eq!(r.rows[0][0], Value::Str("ada".into()));
        // by alias
        let r = q(&db, "SELECT name, salary AS pay FROM emp ORDER BY pay");
        assert_eq!(r.rows[0][0], Value::Str("dee".into()));
        // by non-projected column
        let r = q(&db, "SELECT name FROM emp ORDER BY salary DESC LIMIT 2");
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Str("ada".into()));
    }

    #[test]
    fn limit_offset() {
        let db = db_with_schema();
        let r = q(&db, "SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 1");
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn params_bind() {
        let db = db_with_schema();
        let r = db
            .execute(
                "SELECT name FROM emp WHERE salary > ? AND dept_id = ?",
                &[Value::Double(70.0), Value::Int(1)],
            )
            .unwrap();
        assert_eq!(r.rowset().unwrap().rows.len(), 2); // ada (100) and bob (80)
        let err = db.execute("SELECT * FROM emp WHERE id = ?", &[]).unwrap_err();
        assert_eq!(err.kind, SqlErrorKind::InvalidParameter);
    }

    #[test]
    fn insert_defaults_and_counts() {
        let db = db_with_schema();
        let r = db.execute("INSERT INTO emp (id, name) VALUES (10, 'zed')", &[]).unwrap();
        assert_eq!(r.update_count(), 1);
        let row = q(&db, "SELECT salary, dept_id FROM emp WHERE id = 10");
        assert_eq!(row.rows[0][0], Value::Double(0.0)); // default
        assert!(row.rows[0][1].is_null());
    }

    #[test]
    fn insert_select() {
        let db = db_with_schema();
        db.execute("CREATE TABLE emp2 (id INTEGER, name VARCHAR)", &[]).unwrap();
        let r =
            db.execute("INSERT INTO emp2 SELECT id, name FROM emp WHERE salary > 50", &[]).unwrap();
        assert_eq!(r.update_count(), 3);
    }

    #[test]
    fn update_and_delete() {
        let db = db_with_schema();
        let r = db.execute("UPDATE emp SET salary = salary + 10 WHERE dept_id = 1", &[]).unwrap();
        assert_eq!(r.update_count(), 2);
        let r = q(&db, "SELECT salary FROM emp WHERE id = 1");
        assert_eq!(r.rows[0][0], Value::Double(110.0));
        let r = db.execute("DELETE FROM emp WHERE dept_id IS NULL", &[]).unwrap();
        assert_eq!(r.update_count(), 1);
    }

    #[test]
    fn constraint_violations() {
        let db = db_with_schema();
        // PK duplicate
        let e = db.execute("INSERT INTO emp (id, name) VALUES (1, 'dup')", &[]).unwrap_err();
        assert_eq!(e.kind, SqlErrorKind::UniqueViolation);
        // NOT NULL
        let e = db.execute("INSERT INTO emp (id) VALUES (11)", &[]).unwrap_err();
        assert_eq!(e.kind, SqlErrorKind::NotNullViolation);
        // CHECK
        let e = db
            .execute("INSERT INTO emp (id, name, salary) VALUES (12, 'x', -5.0)", &[])
            .unwrap_err();
        assert_eq!(e.kind, SqlErrorKind::CheckViolation);
        // FK
        let e = db
            .execute("INSERT INTO emp (id, name, dept_id) VALUES (13, 'x', 99)", &[])
            .unwrap_err();
        assert_eq!(e.kind, SqlErrorKind::ForeignKeyViolation);
        // FK on delete of referenced parent
        let e = db.execute("DELETE FROM dept WHERE id = 1", &[]).unwrap_err();
        assert_eq!(e.kind, SqlErrorKind::ForeignKeyViolation);
        // ...and the failed delete must have been rolled back.
        assert_eq!(q(&db, "SELECT COUNT(*) FROM dept").rows[0][0], Value::Int(2));
    }

    #[test]
    fn statement_atomicity_on_multi_row_failure() {
        let db = db_with_schema();
        // Second row violates PK; first row must not stick.
        let e = db
            .execute("INSERT INTO emp (id, name) VALUES (20, 'ok'), (1, 'dup')", &[])
            .unwrap_err();
        assert_eq!(e.kind, SqlErrorKind::UniqueViolation);
        assert_eq!(q(&db, "SELECT COUNT(*) FROM emp WHERE id = 20").rows[0][0], Value::Int(0));
    }

    #[test]
    fn transactions_commit_and_rollback() {
        let db = db_with_schema();
        let mut s = db.connect();
        s.execute("BEGIN", &[]).unwrap();
        s.execute("INSERT INTO emp (id, name) VALUES (30, 'tmp')", &[]).unwrap();
        s.execute("UPDATE emp SET salary = 1.0 WHERE id = 1", &[]).unwrap();
        s.execute("ROLLBACK", &[]).unwrap();
        assert_eq!(q(&db, "SELECT COUNT(*) FROM emp WHERE id = 30").rows[0][0], Value::Int(0));
        assert_eq!(q(&db, "SELECT salary FROM emp WHERE id = 1").rows[0][0], Value::Double(100.0));

        let mut s = db.connect();
        s.execute("BEGIN", &[]).unwrap();
        s.execute("INSERT INTO emp (id, name) VALUES (31, 'kept')", &[]).unwrap();
        s.execute("COMMIT", &[]).unwrap();
        assert_eq!(q(&db, "SELECT COUNT(*) FROM emp WHERE id = 31").rows[0][0], Value::Int(1));
    }

    #[test]
    fn transaction_rollback_covers_ddl() {
        let db = db_with_schema();
        let mut s = db.connect();
        s.execute("BEGIN", &[]).unwrap();
        s.execute("CREATE TABLE scratch (x INTEGER)", &[]).unwrap();
        s.execute("INSERT INTO scratch VALUES (1)", &[]).unwrap();
        s.execute("ROLLBACK", &[]).unwrap();
        assert!(!db.table_names().contains(&"scratch".to_string()));
    }

    #[test]
    fn dropped_table_restored_on_rollback() {
        let db = db_with_schema();
        let mut s = db.connect();
        s.execute("BEGIN", &[]).unwrap();
        // emp references dept, so drop emp (not referenced by anyone).
        s.execute("DROP TABLE emp", &[]).unwrap();
        assert!(!db.table_names().contains(&"emp".to_string()));
        s.execute("ROLLBACK", &[]).unwrap();
        assert_eq!(q(&db, "SELECT COUNT(*) FROM emp").rows[0][0], Value::Int(4));
    }

    #[test]
    fn session_drop_rolls_back() {
        let db = db_with_schema();
        {
            let mut s = db.connect();
            s.execute("BEGIN", &[]).unwrap();
            s.execute("DELETE FROM emp", &[]).unwrap();
        } // dropped without COMMIT
        assert_eq!(q(&db, "SELECT COUNT(*) FROM emp").rows[0][0], Value::Int(4));
    }

    #[test]
    fn transaction_state_errors() {
        let db = db_with_schema();
        let mut s = db.connect();
        assert!(s.execute("COMMIT", &[]).is_err());
        assert!(s.execute("ROLLBACK", &[]).is_err());
        s.execute("BEGIN", &[]).unwrap();
        assert!(s.execute("BEGIN", &[]).is_err());
    }

    #[test]
    fn scalar_functions_in_queries() {
        let db = db_with_schema();
        let r = q(&db, "SELECT UPPER(name) FROM emp WHERE id = 1");
        assert_eq!(r.rows[0][0], Value::Str("ADA".into()));
        let r = q(&db, "SELECT name FROM emp WHERE name LIKE '%d%' ORDER BY name");
        assert_eq!(r.rows.len(), 3); // ada, cyd, dee
    }

    #[test]
    fn case_in_queries() {
        let db = db_with_schema();
        let r = q(
            &db,
            "SELECT name, CASE WHEN salary >= 80 THEN 'high' ELSE 'low' END AS band \
             FROM emp ORDER BY id",
        );
        assert_eq!(r.rows[0][1], Value::Str("high".into()));
        assert_eq!(r.rows[3][1], Value::Str("low".into()));
    }

    #[test]
    fn create_index_and_uniqueness() {
        let db = db_with_schema();
        db.execute("CREATE UNIQUE INDEX u_name ON emp (name)", &[]).unwrap();
        let e = db.execute("INSERT INTO emp (id, name) VALUES (40, 'ada')", &[]).unwrap_err();
        assert_eq!(e.kind, SqlErrorKind::UniqueViolation);
        // Plain index is allowed and transparent.
        db.execute("CREATE INDEX i_dept ON emp (dept_id)", &[]).unwrap();
        assert_eq!(q(&db, "SELECT COUNT(*) FROM emp WHERE dept_id = 1").rows[0][0], Value::Int(2));
    }

    #[test]
    fn communication_areas() {
        let db = db_with_schema();
        let r = db.execute("UPDATE emp SET salary = 0.0 WHERE id = 999", &[]).unwrap();
        let comm = r.communication_area();
        assert_eq!(comm.sqlstate, "02000");
        let r = db.execute("SELECT * FROM emp", &[]).unwrap();
        assert_eq!(r.communication_area().sqlstate, "00000");
    }

    #[test]
    fn update_failure_is_atomic() {
        let db = db_with_schema();
        // This update succeeds for dept 1 rows until the CHECK fires for bob.
        let e =
            db.execute("UPDATE emp SET salary = salary - 90 WHERE dept_id = 1", &[]).unwrap_err();
        assert_eq!(e.kind, SqlErrorKind::CheckViolation);
        // ada's successful update must have been undone.
        assert_eq!(q(&db, "SELECT salary FROM emp WHERE id = 1").rows[0][0], Value::Double(100.0));
    }

    #[test]
    fn drop_table_semantics() {
        let db = db_with_schema();
        assert!(db.execute("DROP TABLE nothere", &[]).is_err());
        db.execute("DROP TABLE IF EXISTS nothere", &[]).unwrap();
        // dept is referenced by emp.
        let e = db.execute("DROP TABLE dept", &[]).unwrap_err();
        assert_eq!(e.kind, SqlErrorKind::ForeignKeyViolation);
        db.execute("DROP TABLE emp", &[]).unwrap();
        db.execute("DROP TABLE dept", &[]).unwrap();
        assert!(db.table_names().is_empty());
    }

    #[test]
    fn select_without_from_works() {
        let db = Database::new("x");
        let r = q(&db, "SELECT 1 + 1 AS two, 'hi'");
        assert_eq!(r.rows[0][0], Value::Int(2));
        assert_eq!(r.rows[0][1], Value::Str("hi".into()));
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let db = db_with_schema();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        if i % 2 == 0 {
                            let r = db.execute("SELECT COUNT(*) FROM emp", &[]).unwrap();
                            assert!(r.rowset().unwrap().rows[0][0].sql_type().is_some());
                        } else {
                            let _ =
                                db.execute("UPDATE emp SET salary = salary + 1 WHERE id = 1", &[]);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let r = q(&db, "SELECT salary FROM emp WHERE id = 1");
        assert_eq!(r.rows[0][0], Value::Double(100.0 + 4.0 * 50.0));
    }
}
