//! Statement execution: SELECT pipelines and DML/DDL with undo logging.
//!
//! Queries run as a materialising operator pipeline
//! (scan → join → filter → aggregate → having → project → distinct →
//! sort → limit); each stage consumes and produces row vectors. DML
//! appends inverse operations to an undo log so the session layer can
//! provide statement- and transaction-level atomicity.

use crate::ast::*;
use crate::catalog::{ColumnMeta, IndexMeta, TableSchema};
use crate::error::{SqlError, SqlErrorKind};
use crate::expr::{eval, EvalContext, ExecColumn, ExecSchema};
use crate::rowset::{Rowset, RowsetColumn};
use crate::storage::{RowId, Storage, Table};
use crate::value::{GroupKey, SqlType, Value};
use std::collections::HashMap;

/// One inverse operation, applied in reverse order on rollback.
#[derive(Debug, Clone)]
pub enum UndoEntry {
    Insert { table: String, rowid: RowId },
    Delete { table: String, rowid: RowId, row: Vec<Value> },
    Update { table: String, rowid: RowId, old_row: Vec<Value> },
    CreateTable { name: String },
    DropTable { table: Box<Table> },
    CreateIndex { table: String, index: String },
}

/// Undo a list of entries against storage (most recent first).
pub fn apply_undo(storage: &mut Storage, entries: Vec<UndoEntry>) {
    for entry in entries.into_iter().rev() {
        match entry {
            UndoEntry::Insert { table, rowid } => {
                if let Ok(t) = storage.table_mut(&table) {
                    t.delete(rowid);
                }
            }
            UndoEntry::Delete { table, rowid, row } => {
                if let Ok(t) = storage.table_mut(&table) {
                    t.reinsert(rowid, row);
                }
            }
            UndoEntry::Update { table, rowid, old_row } => {
                if let Ok(t) = storage.table_mut(&table) {
                    // Direct reinstatement: remove then reinsert keeps
                    // indexes coherent without re-running checks.
                    t.delete(rowid);
                    t.reinsert(rowid, old_row);
                }
            }
            UndoEntry::CreateTable { name } => {
                storage.remove_table(&name);
            }
            UndoEntry::DropTable { table } => {
                let _ = storage.add_table(*table);
            }
            UndoEntry::CreateIndex { table, index } => {
                if let Ok(t) = storage.table_mut(&table) {
                    t.drop_index(&index);
                }
            }
        }
    }
}

// ===========================================================================
// SELECT
// ===========================================================================

/// Run a SELECT (possibly a UNION chain) and materialise the result.
pub fn run_select(
    select: &Select,
    storage: &Storage,
    params: &[Value],
) -> Result<Rowset, SqlError> {
    if select.unions.is_empty() {
        return run_single_select(select, storage, params);
    }
    // Head select, stripped of the chain-level clauses.
    let mut head = select.clone();
    head.unions = Vec::new();
    head.order_by = Vec::new();
    head.limit = None;
    head.offset = None;
    let mut result = run_single_select(&head, storage, params)?;

    // Plain UNION anywhere in the chain deduplicates the whole result
    // (matching the common left-associative SQL reading for homogeneous
    // chains; mixed ALL/DISTINCT chains resolve to DISTINCT).
    let mut dedup = false;
    for arm in &select.unions {
        let arm_result = run_single_select(&arm.select, storage, params)?;
        if arm_result.columns.len() != result.columns.len() {
            return Err(SqlError::syntax(format!(
                "UNION arms have different column counts ({} vs {})",
                result.columns.len(),
                arm_result.columns.len()
            )));
        }
        result.rows.extend(arm_result.rows);
        if !arm.all {
            dedup = true;
        }
    }
    if dedup {
        let mut seen: HashMap<Vec<GroupKey>, ()> = HashMap::new();
        result.rows.retain(|row| {
            let key: Vec<GroupKey> = row.iter().map(Value::group_key).collect();
            seen.insert(key, ()).is_none()
        });
    }

    // ORDER BY over a union may only reference output columns (by name
    // or 1-based ordinal) — there is no single source row to fall back to.
    if !select.order_by.is_empty() {
        let mut key_ordinals = Vec::with_capacity(select.order_by.len());
        for item in &select.order_by {
            let ordinal = match &item.expr {
                Expr::Literal(Value::Int(n)) => {
                    let i = *n as usize;
                    if i < 1 || i > result.columns.len() {
                        return Err(SqlError::syntax(format!(
                            "ORDER BY position {n} is out of range"
                        )));
                    }
                    i - 1
                }
                Expr::Column { qualifier: None, name } => {
                    result.column_index(name).ok_or_else(|| {
                        SqlError::new(
                            SqlErrorKind::NotSupported,
                            format!(
                                "ORDER BY in UNION queries must reference an output column; '{name}' is not one"
                            ),
                        )
                    })?
                }
                _ => {
                    return Err(SqlError::new(
                        SqlErrorKind::NotSupported,
                        "ORDER BY in UNION queries must reference output columns by name or ordinal",
                    ))
                }
            };
            key_ordinals.push(ordinal);
        }
        result.rows.sort_by(|a, b| {
            for (&ordinal, item) in key_ordinals.iter().zip(&select.order_by) {
                let ord = a[ordinal].total_cmp(&b[ordinal]);
                let ord = if item.ascending { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    let offset = select.offset.unwrap_or(0) as usize;
    let limit = select.limit.map(|l| l as usize).unwrap_or(usize::MAX);
    result.rows = result.rows.into_iter().skip(offset).take(limit).collect();
    Ok(result)
}

/// Run one core select (no UNION arms): the scan-level pushdown fast
/// path when the statement qualifies, the generic materialising
/// pipeline otherwise.
fn run_single_select(
    select: &Select,
    storage: &Storage,
    params: &[Value],
) -> Result<Rowset, SqlError> {
    if let Some(plan) = plan_pushdown(select, storage) {
        return run_pushdown(&plan, select.where_clause.as_ref(), storage, params);
    }
    run_select_generic(select, storage, params)
}

// ---- projection/selection pushdown ----------------------------------------

/// A resolved scan-level plan for a single-table SELECT whose projection
/// is plain columns and whose ORDER BY (if any) refers to output columns.
/// Selection and projection are applied *during* the scan, so rejected
/// rows and non-projected cells are never cloned.
pub(crate) struct PushdownPlan {
    /// Source table (storage lookup key).
    pub(crate) table: String,
    /// Full source schema, for WHERE evaluation against borrowed rows.
    pub(crate) schema: ExecSchema,
    /// Source column ordinals in output order.
    pub(crate) projection: Vec<usize>,
    /// Output columns: as-written names, declared source types.
    pub(crate) columns: Vec<RowsetColumn>,
    /// ORDER BY keys as (projected index, ascending).
    pub(crate) order: Vec<(usize, bool)>,
    pub(crate) offset: usize,
    pub(crate) limit: usize,
}

/// Try to build a [`PushdownPlan`]. `None` means the statement takes the
/// generic pipeline — including every unresolvable-name case, so error
/// messages are identical on both paths.
pub(crate) fn plan_pushdown(select: &Select, storage: &Storage) -> Option<PushdownPlan> {
    if !select.unions.is_empty()
        || !select.joins.is_empty()
        || !select.group_by.is_empty()
        || select.having.is_some()
        || select.distinct
    {
        return None;
    }
    let table_ref = select.from.as_ref()?;
    let table = storage.table(&table_ref.name).ok()?;
    let binding = table_ref.binding_name();
    let schema = ExecSchema::new(
        table
            .schema
            .columns
            .iter()
            .map(|c| ExecColumn { qualifier: Some(binding.to_string()), name: c.name.clone() })
            .collect(),
    );

    // Projection: wildcards and plain column references only. Anything
    // computed (expressions, aggregates, functions) goes generic.
    let mut projection = Vec::new();
    let mut columns = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                for (i, c) in table.schema.columns.iter().enumerate() {
                    projection.push(i);
                    columns.push(RowsetColumn { name: c.name.clone(), ty: c.ty });
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                if !binding.eq_ignore_ascii_case(q) {
                    return None;
                }
                for (i, c) in table.schema.columns.iter().enumerate() {
                    projection.push(i);
                    columns.push(RowsetColumn { name: c.name.clone(), ty: c.ty });
                }
            }
            SelectItem::Expr { expr: Expr::Column { qualifier, name }, alias } => {
                let ix = schema.resolve(qualifier.as_deref(), name).ok()?;
                projection.push(ix);
                columns.push(RowsetColumn {
                    name: alias.clone().unwrap_or_else(|| name.clone()),
                    ty: table.schema.columns[ix].ty,
                });
            }
            SelectItem::Expr { .. } => return None,
        }
    }

    // ORDER BY: 1-based ordinals and unqualified output names sort on the
    // projected cells (the same keys the generic path would compute);
    // anything needing a source-row fallback goes generic.
    let mut order = Vec::with_capacity(select.order_by.len());
    for item in &select.order_by {
        let ix = match &item.expr {
            Expr::Literal(Value::Int(n)) => {
                let i = *n as usize;
                if i < 1 || i > projection.len() {
                    return None;
                }
                i - 1
            }
            Expr::Column { qualifier: None, name } => {
                columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))?
            }
            _ => return None,
        };
        order.push((ix, item.ascending));
    }

    Some(PushdownPlan {
        table: table_ref.name.clone(),
        schema,
        projection,
        columns,
        order,
        offset: select.offset.unwrap_or(0) as usize,
        limit: select.limit.map(|l| l as usize).unwrap_or(usize::MAX),
    })
}

/// Execute a [`PushdownPlan`]. The WHERE predicate is evaluated through
/// the same [`eval`] the generic path uses, against borrowed scan rows.
pub(crate) fn run_pushdown(
    plan: &PushdownPlan,
    predicate: Option<&Expr>,
    storage: &Storage,
    params: &[Value],
) -> Result<Rowset, SqlError> {
    let table = storage.table(&plan.table)?;
    let mut rows: Vec<Vec<Value>> = Vec::new();
    if plan.order.is_empty() {
        // Unordered: the OFFSET/LIMIT window applies during the scan, so
        // the scan stops as soon as the window is full.
        let mut to_skip = plan.offset;
        for (_, row) in table.scan() {
            if rows.len() == plan.limit {
                break;
            }
            if let Some(p) = predicate {
                let ctx = EvalContext::new(&plan.schema, row, params);
                if !matches!(eval(p, &ctx)?, Value::Bool(true)) {
                    continue;
                }
            }
            if to_skip > 0 {
                to_skip -= 1;
                continue;
            }
            rows.push(plan.projection.iter().map(|&i| row[i].clone()).collect());
        }
    } else {
        // Ordered: materialise the projected survivors, stable-sort on
        // the projected key cells, then window.
        for (_, row) in table.scan() {
            if let Some(p) = predicate {
                let ctx = EvalContext::new(&plan.schema, row, params);
                if !matches!(eval(p, &ctx)?, Value::Bool(true)) {
                    continue;
                }
            }
            rows.push(plan.projection.iter().map(|&i| row[i].clone()).collect());
        }
        rows.sort_by(|a, b| {
            for &(ix, ascending) in &plan.order {
                let ord = a[ix].total_cmp(&b[ix]);
                let ord = if ascending { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows = rows.into_iter().skip(plan.offset).take(plan.limit).collect();
    }
    Ok(Rowset { columns: plan.columns.clone(), rows })
}

/// The generic materialising pipeline (scan → filter → project → …).
fn run_select_generic(
    select: &Select,
    storage: &Storage,
    params: &[Value],
) -> Result<Rowset, SqlError> {
    // 1. Source: FROM + joins (or a single empty row for FROM-less SELECT).
    let (mut schema, mut rows, mut source_types) = match &select.from {
        None => (ExecSchema::default(), vec![Vec::new()], Vec::new()),
        Some(table_ref) => scan_table(storage, table_ref)?,
    };
    for join in &select.joins {
        let (right_schema, right_rows, right_types) = scan_table(storage, &join.table)?;
        let joined_schema = schema.join(&right_schema);
        let mut out: Vec<Vec<Value>> = Vec::new();
        match join.kind {
            JoinKind::Cross => {
                for l in &rows {
                    for r in &right_rows {
                        let mut combined = l.clone();
                        combined.extend(r.iter().cloned());
                        out.push(combined);
                    }
                }
            }
            JoinKind::Inner | JoinKind::Left => {
                let Some(on) = join.on.as_ref() else {
                    return Err(SqlError::new(
                        SqlErrorKind::Internal,
                        "inner/left join without an ON clause survived parsing",
                    ));
                };
                for l in &rows {
                    let mut matched = false;
                    for r in &right_rows {
                        let mut combined = l.clone();
                        combined.extend(r.iter().cloned());
                        let ctx = EvalContext::new(&joined_schema, &combined, params);
                        if matches!(eval(on, &ctx)?, Value::Bool(true)) {
                            matched = true;
                            out.push(combined);
                        }
                    }
                    if !matched && join.kind == JoinKind::Left {
                        let mut combined = l.clone();
                        combined
                            .extend(std::iter::repeat_n(Value::Null, right_schema.columns.len()));
                        out.push(combined);
                    }
                }
            }
        }
        schema = joined_schema;
        rows = out;
        source_types.extend(right_types);
    }

    // 2. WHERE.
    if let Some(predicate) = &select.where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            let ctx = EvalContext::new(&schema, &row, params);
            if matches!(eval(predicate, &ctx)?, Value::Bool(true)) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // 3. Expand wildcards into concrete projection expressions.
    let mut projections: Vec<(Expr, String)> = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                if select.from.is_none() {
                    return Err(SqlError::syntax("SELECT * requires a FROM clause"));
                }
                for c in &schema.columns {
                    projections.push((
                        Expr::Column { qualifier: c.qualifier.clone(), name: c.name.clone() },
                        c.name.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut any = false;
                for c in &schema.columns {
                    if c.qualifier.as_deref().is_some_and(|cq| cq.eq_ignore_ascii_case(q)) {
                        any = true;
                        projections.push((
                            Expr::Column { qualifier: c.qualifier.clone(), name: c.name.clone() },
                            c.name.clone(),
                        ));
                    }
                }
                if !any {
                    return Err(SqlError::new(
                        SqlErrorKind::UndefinedTable,
                        format!("unknown table qualifier '{q}' in {q}.*"),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| default_name(expr, projections.len()));
                projections.push((expr.clone(), name));
            }
        }
    }

    // 4. Aggregation if needed.
    let has_aggregates = projections.iter().any(|(e, _)| e.contains_aggregate())
        || select.having.as_ref().is_some_and(Expr::contains_aggregate)
        || select.order_by.iter().any(|o| o.expr.contains_aggregate());
    let mut order_exprs: Vec<Expr> = select.order_by.iter().map(|o| o.expr.clone()).collect();
    let mut having = select.having.clone();
    if has_aggregates || !select.group_by.is_empty() {
        let agg = aggregate(
            &schema,
            &rows,
            params,
            &select.group_by,
            &mut projections,
            &mut having,
            &mut order_exprs,
        )?;
        schema = agg.0;
        rows = agg.1;
        // Source types no longer meaningful after aggregation.
        source_types = vec![None; schema.columns.len()];
    }

    // 5. HAVING (after aggregation; without aggregation it is just a
    //    second filter, which we allow for convenience).
    if let Some(h) = &having {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            let ctx = EvalContext::new(&schema, &row, params);
            match eval(h, &ctx) {
                Ok(Value::Bool(true)) => kept.push(row),
                Ok(_) => {}
                Err(e) => return Err(regroup_error(e, has_aggregates)),
            }
        }
        rows = kept;
    }

    // 6. Projection. Keep source rows for ORDER BY expressions that
    //    reference non-projected columns.
    let mut projected: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rows.len());
    for row in rows {
        let ctx = EvalContext::new(&schema, &row, params);
        let mut out = Vec::with_capacity(projections.len());
        for (expr, _) in &projections {
            match eval(expr, &ctx) {
                Ok(v) => out.push(v),
                Err(e) => return Err(regroup_error(e, has_aggregates)),
            }
        }
        projected.push((out, row));
    }

    // 7. DISTINCT.
    if select.distinct {
        let mut seen: HashMap<Vec<GroupKey>, ()> = HashMap::new();
        projected.retain(|(out, _)| {
            let key: Vec<GroupKey> = out.iter().map(Value::group_key).collect();
            seen.insert(key, ()).is_none()
        });
    }

    // 8. ORDER BY.
    if !order_exprs.is_empty() {
        let output_names: Vec<String> = projections.iter().map(|(_, n)| n.clone()).collect();
        let mut keyed: Vec<(Vec<Value>, ProjectedRow)> = Vec::with_capacity(projected.len());
        for (out, src) in projected {
            let mut keys = Vec::with_capacity(order_exprs.len());
            for expr in &order_exprs {
                keys.push(order_key(expr, &out, &src, &schema, &output_names, params)?);
            }
            keyed.push((keys, (out, src)));
        }
        keyed.sort_by(|(a, _), (b, _)| {
            for (i, item) in select.order_by.iter().enumerate() {
                let ord = a[i].total_cmp(&b[i]);
                let ord = if item.ascending { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        projected = keyed.into_iter().map(|(_, p)| p).collect();
    }

    // 9. OFFSET / LIMIT.
    let offset = select.offset.unwrap_or(0) as usize;
    let limit = select.limit.map(|l| l as usize).unwrap_or(usize::MAX);
    let final_rows: Vec<Vec<Value>> =
        projected.into_iter().skip(offset).take(limit).map(|(out, _)| out).collect();

    // 10. Column typing: prefer declared source type for plain column
    //     projections, else infer from the data.
    let mut columns = Vec::with_capacity(projections.len());
    for (i, (expr, name)) in projections.iter().enumerate() {
        let declared = match expr {
            Expr::Column { qualifier, name } => schema
                .resolve(qualifier.as_deref(), name)
                .ok()
                .and_then(|ix| source_types.get(ix).copied().flatten()),
            _ => None,
        };
        let inferred = final_rows.iter().find_map(|r| r[i].sql_type());
        columns.push(RowsetColumn {
            name: name.clone(),
            ty: declared.or(inferred).unwrap_or(SqlType::Varchar),
        });
    }

    Ok(Rowset { columns, rows: final_rows })
}

fn regroup_error(e: SqlError, aggregated: bool) -> SqlError {
    if aggregated && e.kind == SqlErrorKind::UndefinedColumn {
        SqlError::new(
            SqlErrorKind::Grouping,
            format!(
                "{} (columns referenced outside aggregates must appear in GROUP BY)",
                e.message
            ),
        )
    } else {
        e
    }
}

fn default_name(expr: &Expr, ordinal: usize) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        _ => format!("column{}", ordinal + 1),
    }
}

fn scan_table(storage: &Storage, table_ref: &TableRef) -> Result<ScannedTable, SqlError> {
    let table = storage.table(&table_ref.name)?;
    let binding = table_ref.binding_name().to_string();
    let schema = ExecSchema::new(
        table
            .schema
            .columns
            .iter()
            .map(|c| ExecColumn { qualifier: Some(binding.clone()), name: c.name.clone() })
            .collect(),
    );
    let types = table.schema.columns.iter().map(|c| Some(c.ty)).collect();
    let rows = table.scan().map(|(_, r)| r.clone()).collect();
    Ok((schema, rows, types))
}

fn order_key(
    expr: &Expr,
    projected: &[Value],
    source: &[Value],
    source_schema: &ExecSchema,
    output_names: &[String],
    params: &[Value],
) -> Result<Value, SqlError> {
    // ORDER BY <ordinal>.
    if let Expr::Literal(Value::Int(n)) = expr {
        let i = *n as usize;
        if i >= 1 && i <= projected.len() {
            return Ok(projected[i - 1].clone());
        }
        return Err(SqlError::syntax(format!("ORDER BY position {n} is out of range")));
    }
    // ORDER BY <output name / alias>.
    if let Expr::Column { qualifier: None, name } = expr {
        if let Some(i) = output_names.iter().position(|n| n.eq_ignore_ascii_case(name)) {
            return Ok(projected[i].clone());
        }
    }
    // Fall back to the pre-projection row.
    let ctx = EvalContext::new(source_schema, source, params);
    eval(expr, &ctx)
}

// -- aggregation -------------------------------------------------------------

/// An aggregate accumulator.
#[derive(Debug, Clone)]
enum Acc {
    CountStar(u64),
    Count { n: u64, distinct: Option<std::collections::HashSet<GroupKey>> },
    Sum { total: Option<Value>, distinct: Option<std::collections::HashSet<GroupKey>> },
    Avg { sum: f64, n: u64, distinct: Option<std::collections::HashSet<GroupKey>> },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(name: &str, distinct: bool, star: bool) -> Result<Acc, SqlError> {
        if star {
            return Ok(Acc::CountStar(0));
        }
        let d = || if distinct { Some(std::collections::HashSet::new()) } else { None };
        Ok(match name {
            "COUNT" => Acc::Count { n: 0, distinct: d() },
            "SUM" => Acc::Sum { total: None, distinct: d() },
            "AVG" => Acc::Avg { sum: 0.0, n: 0, distinct: d() },
            "MIN" => Acc::Min(None),
            "MAX" => Acc::Max(None),
            other => {
                return Err(SqlError::new(
                    SqlErrorKind::UndefinedFunction,
                    format!("unknown aggregate {other}()"),
                ))
            }
        })
    }

    fn update(&mut self, value: Option<&Value>) -> Result<(), SqlError> {
        match self {
            Acc::CountStar(n) => *n += 1,
            Acc::Count { n, distinct } => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    if let Some(seen) = distinct {
                        if !seen.insert(v.group_key()) {
                            return Ok(());
                        }
                    }
                    *n += 1;
                }
            }
            Acc::Sum { total, distinct } => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    if let Some(seen) = distinct {
                        if !seen.insert(v.group_key()) {
                            return Ok(());
                        }
                    }
                    let x = v.as_f64().ok_or_else(|| {
                        SqlError::new(
                            SqlErrorKind::InvalidCast,
                            format!("SUM over non-numeric value {v}"),
                        )
                    })?;
                    // Integer sums wrap, matching the engine's integer
                    // arithmetic semantics elsewhere.
                    *total = Some(match total {
                        None => v.clone(),
                        Some(Value::Int(a)) => match v {
                            Value::Int(b) => Value::Int(a.wrapping_add(*b)),
                            _ => Value::Double(*a as f64 + x),
                        },
                        Some(t) => Value::Double(t.as_f64().unwrap_or(0.0) + x),
                    });
                }
            }
            Acc::Avg { sum, n, distinct } => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    if let Some(seen) = distinct {
                        if !seen.insert(v.group_key()) {
                            return Ok(());
                        }
                    }
                    let x = v.as_f64().ok_or_else(|| {
                        SqlError::new(
                            SqlErrorKind::InvalidCast,
                            format!("AVG over non-numeric value {v}"),
                        )
                    })?;
                    *sum += x;
                    *n += 1;
                }
            }
            Acc::Min(best) => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    let better = match best {
                        None => true,
                        Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Less),
                    };
                    if better {
                        *best = Some(v.clone());
                    }
                }
            }
            Acc::Max(best) => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    let better = match best {
                        None => true,
                        Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Greater),
                    };
                    if better {
                        *best = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Acc::CountStar(n) => Value::Int(n as i64),
            Acc::Count { n, .. } => Value::Int(n as i64),
            Acc::Sum { total, .. } => total.unwrap_or(Value::Null),
            Acc::Avg { sum, n, .. } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / n as f64)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Rewrite an expression, replacing group expressions and aggregate calls
/// with references to the synthetic aggregate-output columns.
fn rewrite_for_aggregate(expr: &Expr, group_by: &[Expr], aggs: &[Expr]) -> Expr {
    for (i, g) in group_by.iter().enumerate() {
        if expr == g {
            return Expr::Column { qualifier: None, name: format!("__group{i}") };
        }
    }
    for (j, a) in aggs.iter().enumerate() {
        if expr == a {
            return Expr::Column { qualifier: None, name: format!("__agg{j}") };
        }
    }
    // Recurse structurally.
    match expr {
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(rewrite_for_aggregate(expr, group_by, aggs)) }
        }
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(rewrite_for_aggregate(lhs, group_by, aggs)),
            rhs: Box::new(rewrite_for_aggregate(rhs, group_by, aggs)),
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(rewrite_for_aggregate(expr, group_by, aggs)),
            pattern: Box::new(rewrite_for_aggregate(pattern, group_by, aggs)),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(rewrite_for_aggregate(expr, group_by, aggs)),
            list: list.iter().map(|e| rewrite_for_aggregate(e, group_by, aggs)).collect(),
            negated: *negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(rewrite_for_aggregate(expr, group_by, aggs)),
            low: Box::new(rewrite_for_aggregate(low, group_by, aggs)),
            high: Box::new(rewrite_for_aggregate(high, group_by, aggs)),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_for_aggregate(expr, group_by, aggs)),
            negated: *negated,
        },
        Expr::Case { operand, branches, else_value } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(rewrite_for_aggregate(o, group_by, aggs))),
            branches: branches
                .iter()
                .map(|(w, t)| {
                    (
                        rewrite_for_aggregate(w, group_by, aggs),
                        rewrite_for_aggregate(t, group_by, aggs),
                    )
                })
                .collect(),
            else_value: else_value
                .as_ref()
                .map(|e| Box::new(rewrite_for_aggregate(e, group_by, aggs))),
        },
        Expr::Function { name, args, distinct, star } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|a| rewrite_for_aggregate(a, group_by, aggs)).collect(),
            distinct: *distinct,
            star: *star,
        },
        _ => expr.clone(),
    }
}

fn collect_aggregate_calls(expr: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Function { name, star, .. } = expr {
        if *star || is_aggregate_name(name) {
            if !out.contains(expr) {
                out.push(expr.clone());
            }
            return; // nested aggregates are not allowed / not descended
        }
    }
    for c in expr.children() {
        collect_aggregate_calls(c, out);
    }
}

type AggregateOutput = (ExecSchema, Vec<Vec<Value>>);

/// An output row paired with its pre-projection source row.
type ProjectedRow = (Vec<Value>, Vec<Value>);

/// Schema, rows and declared column types of one scanned table.
type ScannedTable = (ExecSchema, Vec<Vec<Value>>, Vec<Option<SqlType>>);

/// Build aggregate output rows and rewrite downstream expressions to
/// reference them.
#[allow(clippy::too_many_arguments)]
fn aggregate(
    schema: &ExecSchema,
    rows: &[Vec<Value>],
    params: &[Value],
    group_by: &[Expr],
    projections: &mut [(Expr, String)],
    having: &mut Option<Expr>,
    order_exprs: &mut [Expr],
) -> Result<AggregateOutput, SqlError> {
    // Collect distinct aggregate calls across all consuming clauses.
    let mut aggs: Vec<Expr> = Vec::new();
    for (e, _) in projections.iter() {
        collect_aggregate_calls(e, &mut aggs);
    }
    if let Some(h) = having.as_ref() {
        collect_aggregate_calls(h, &mut aggs);
    }
    for e in order_exprs.iter() {
        collect_aggregate_calls(e, &mut aggs);
    }

    // Group rows.
    struct Group {
        reprs: Vec<Value>,
        accs: Vec<Acc>,
    }
    let mut groups: Vec<Group> = Vec::new();
    let mut index: HashMap<Vec<GroupKey>, usize> = HashMap::new();
    let make_accs = |aggs: &[Expr]| -> Result<Vec<Acc>, SqlError> {
        aggs.iter()
            .map(|a| match a {
                Expr::Function { name, distinct, star, .. } => Acc::new(name, *distinct, *star),
                _ => unreachable!("aggregate list holds function calls only"),
            })
            .collect()
    };

    for row in rows {
        let ctx = EvalContext::new(schema, row, params);
        let mut key = Vec::with_capacity(group_by.len());
        let mut reprs = Vec::with_capacity(group_by.len());
        for g in group_by {
            let v = eval(g, &ctx)?;
            key.push(v.group_key());
            reprs.push(v);
        }
        let gi = match index.get(&key) {
            Some(&i) => i,
            None => {
                groups.push(Group { reprs, accs: make_accs(&aggs)? });
                index.insert(key, groups.len() - 1);
                groups.len() - 1
            }
        };
        for (acc, call) in groups[gi].accs.iter_mut().zip(&aggs) {
            match call {
                Expr::Function { args, star, .. } => {
                    if *star {
                        acc.update(None)?;
                    } else {
                        let arg = args.first().ok_or_else(|| {
                            SqlError::new(
                                SqlErrorKind::UndefinedFunction,
                                "aggregate requires an argument",
                            )
                        })?;
                        let v = eval(arg, &ctx)?;
                        acc.update(Some(&v))?;
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    // A global aggregate over zero rows still yields one group.
    if groups.is_empty() && group_by.is_empty() {
        groups.push(Group { reprs: Vec::new(), accs: make_accs(&aggs)? });
    }

    // Synthetic output schema.
    let mut out_schema = ExecSchema::default();
    for i in 0..group_by.len() {
        out_schema.columns.push(ExecColumn { qualifier: None, name: format!("__group{i}") });
    }
    for j in 0..aggs.len() {
        out_schema.columns.push(ExecColumn { qualifier: None, name: format!("__agg{j}") });
    }

    let mut out_rows = Vec::with_capacity(groups.len());
    for g in groups {
        let mut row = g.reprs;
        for acc in g.accs {
            row.push(acc.finish());
        }
        out_rows.push(row);
    }

    // Rewrite downstream expressions.
    for (e, _) in projections.iter_mut() {
        *e = rewrite_for_aggregate(e, group_by, &aggs);
    }
    if let Some(h) = having.as_mut() {
        *h = rewrite_for_aggregate(h, group_by, &aggs);
    }
    for e in order_exprs.iter_mut() {
        *e = rewrite_for_aggregate(e, group_by, &aggs);
    }

    Ok((out_schema, out_rows))
}

// ===========================================================================
// DML
// ===========================================================================

/// Execute INSERT; returns the number of rows inserted.
pub fn run_insert(
    insert: &Insert,
    storage: &mut Storage,
    params: &[Value],
    undo: &mut Vec<UndoEntry>,
) -> Result<u64, SqlError> {
    let schema = storage.table(&insert.table)?.schema.clone();

    // Resolve the target column list to ordinals.
    let target_ordinals: Vec<usize> = if insert.columns.is_empty() {
        (0..schema.columns.len()).collect()
    } else {
        insert
            .columns
            .iter()
            .map(|c| {
                schema.column_index(c).ok_or_else(|| {
                    SqlError::new(
                        SqlErrorKind::UndefinedColumn,
                        format!("no column {c} in table {}", schema.name),
                    )
                })
            })
            .collect::<Result<_, _>>()?
    };

    // Produce the source rows.
    let source_rows: Vec<Vec<Value>> = match &insert.source {
        InsertSource::Values(rows) => {
            let empty = ExecSchema::default();
            let mut out = Vec::with_capacity(rows.len());
            for exprs in rows {
                let ctx = EvalContext::new(&empty, &[], params);
                let row: Vec<Value> =
                    exprs.iter().map(|e| eval(e, &ctx)).collect::<Result<_, _>>()?;
                out.push(row);
            }
            out
        }
        InsertSource::Query(q) => run_select(q, storage, params)?.rows,
    };

    let mut inserted = 0u64;
    for source in source_rows {
        if source.len() != target_ordinals.len() {
            return Err(SqlError::syntax(format!(
                "INSERT row has {} values but {} column(s) were targeted",
                source.len(),
                target_ordinals.len()
            )));
        }
        // Assemble the full row with defaults.
        let mut row: Vec<Value> =
            schema.columns.iter().map(|c| c.default.clone().unwrap_or(Value::Null)).collect();
        for (value, &ordinal) in source.into_iter().zip(&target_ordinals) {
            row[ordinal] = value;
        }
        let row = finalize_row(&schema, row, storage)?;
        let rowid = storage.table_mut(&insert.table)?.insert(row)?;
        undo.push(UndoEntry::Insert { table: insert.table.clone(), rowid });
        inserted += 1;
    }
    Ok(inserted)
}

/// Coerce values, enforce NOT NULL, CHECK and foreign keys.
fn finalize_row(
    schema: &TableSchema,
    row: Vec<Value>,
    storage: &Storage,
) -> Result<Vec<Value>, SqlError> {
    let mut out = Vec::with_capacity(row.len());
    for (value, column) in row.into_iter().zip(&schema.columns) {
        let v = value.coerce_to(column.ty).map_err(|e| {
            SqlError::new(e.kind, format!("column {}.{}: {}", schema.name, column.name, e.message))
        })?;
        if v.is_null() && column.not_null {
            return Err(SqlError::new(
                SqlErrorKind::NotNullViolation,
                format!("column {}.{} may not be NULL", schema.name, column.name),
            ));
        }
        out.push(v);
    }
    // CHECK constraints: pass unless the predicate is definitely false.
    if !schema.checks.is_empty() {
        let exec_schema = ExecSchema::new(
            schema
                .columns
                .iter()
                .map(|c| ExecColumn { qualifier: Some(schema.name.clone()), name: c.name.clone() })
                .collect(),
        );
        let ctx = EvalContext::new(&exec_schema, &out, &[]);
        for check in &schema.checks {
            if matches!(eval(check, &ctx)?, Value::Bool(false)) {
                return Err(SqlError::new(
                    SqlErrorKind::CheckViolation,
                    format!("CHECK constraint violated on table {}", schema.name),
                ));
            }
        }
    }
    // Foreign keys.
    for (value, column) in out.iter().zip(&schema.columns) {
        if let Some((ftable, fcolumn)) = &column.references {
            if !value.is_null() {
                let referenced = storage.table(ftable)?;
                let ordinal = referenced.schema.column_index(fcolumn).ok_or_else(|| {
                    SqlError::new(
                        SqlErrorKind::UndefinedColumn,
                        format!("foreign key references unknown column {ftable}.{fcolumn}"),
                    )
                })?;
                if !referenced.contains_value(ordinal, value) {
                    return Err(SqlError::new(
                        SqlErrorKind::ForeignKeyViolation,
                        format!(
                            "value {value} for {}.{} has no match in {ftable}.{fcolumn}",
                            schema.name, column.name
                        ),
                    ));
                }
            }
        }
    }
    Ok(out)
}

/// Execute UPDATE; returns the number of rows changed.
pub fn run_update(
    update: &Update,
    storage: &mut Storage,
    params: &[Value],
    undo: &mut Vec<UndoEntry>,
) -> Result<u64, SqlError> {
    let schema = storage.table(&update.table)?.schema.clone();
    let exec_schema = ExecSchema::new(
        schema
            .columns
            .iter()
            .map(|c| ExecColumn { qualifier: Some(schema.name.clone()), name: c.name.clone() })
            .collect(),
    );
    let assignments: Vec<(usize, &Expr)> = update
        .assignments
        .iter()
        .map(|(name, e)| {
            schema.column_index(name).map(|i| (i, e)).ok_or_else(|| {
                SqlError::new(
                    SqlErrorKind::UndefinedColumn,
                    format!("no column {name} in table {}", schema.name),
                )
            })
        })
        .collect::<Result<_, _>>()?;

    // Materialise the victim set first (stable against our own writes).
    let victims: Vec<(RowId, Vec<Value>)> = {
        let table = storage.table(&update.table)?;
        let mut v = Vec::new();
        for (rowid, row) in table.scan() {
            let keep = match &update.where_clause {
                None => true,
                Some(w) => {
                    let ctx = EvalContext::new(&exec_schema, row, params);
                    matches!(eval(w, &ctx)?, Value::Bool(true))
                }
            };
            if keep {
                v.push((rowid, row.clone()));
            }
        }
        v
    };

    let mut changed = 0u64;
    for (rowid, old_row) in victims {
        let ctx = EvalContext::new(&exec_schema, &old_row, params);
        let mut new_row = old_row.clone();
        for (ordinal, e) in &assignments {
            new_row[*ordinal] = eval(e, &ctx)?;
        }
        let new_row = finalize_row(&schema, new_row, storage)?;
        let old = storage.table_mut(&update.table)?.update(rowid, new_row)?;
        undo.push(UndoEntry::Update { table: update.table.clone(), rowid, old_row: old });
        changed += 1;
    }
    Ok(changed)
}

/// Execute DELETE; returns the number of rows removed. Referential
/// integrity is enforced after removal: if any remaining row still
/// references a deleted key the statement fails (and the caller rolls the
/// statement back through the undo log).
pub fn run_delete(
    delete: &Delete,
    storage: &mut Storage,
    params: &[Value],
    undo: &mut Vec<UndoEntry>,
) -> Result<u64, SqlError> {
    let schema = storage.table(&delete.table)?.schema.clone();
    let exec_schema = ExecSchema::new(
        schema
            .columns
            .iter()
            .map(|c| ExecColumn { qualifier: Some(schema.name.clone()), name: c.name.clone() })
            .collect(),
    );
    let victims: Vec<RowId> = {
        let table = storage.table(&delete.table)?;
        let mut v = Vec::new();
        for (rowid, row) in table.scan() {
            let keep = match &delete.where_clause {
                None => true,
                Some(w) => {
                    let ctx = EvalContext::new(&exec_schema, row, params);
                    matches!(eval(w, &ctx)?, Value::Bool(true))
                }
            };
            if keep {
                v.push(rowid);
            }
        }
        v
    };

    let mut deleted_rows: Vec<Vec<Value>> = Vec::with_capacity(victims.len());
    for rowid in &victims {
        if let Some(row) = storage.table_mut(&delete.table)?.delete(*rowid) {
            undo.push(UndoEntry::Delete {
                table: delete.table.clone(),
                rowid: *rowid,
                row: row.clone(),
            });
            deleted_rows.push(row);
        }
    }

    // Post-hoc referential check: any surviving row referencing a deleted
    // key that no longer exists fails the statement.
    let referencing: Vec<(String, usize, String, usize)> = storage
        .tables()
        .flat_map(|t| {
            t.schema.columns.iter().enumerate().filter_map(|(i, c)| {
                c.references.as_ref().and_then(|(ftable, fcolumn)| {
                    if ftable.eq_ignore_ascii_case(&schema.name) {
                        schema
                            .column_index(fcolumn)
                            .map(|fo| (t.schema.name.clone(), i, ftable.clone(), fo))
                    } else {
                        None
                    }
                })
            })
        })
        .collect();
    for (child, child_ordinal, _parent, parent_ordinal) in referencing {
        let parent = storage.table(&schema.name)?;
        let child_table = storage.table(&child)?;
        for row in &deleted_rows {
            let key = &row[parent_ordinal];
            if key.is_null() {
                continue;
            }
            // If the key is gone from the parent but still referenced.
            if !parent.contains_value(parent_ordinal, key)
                && child_table.contains_value(child_ordinal, key)
            {
                return Err(SqlError::new(
                    SqlErrorKind::ForeignKeyViolation,
                    format!(
                        "cannot delete from {}: rows in {child} still reference value {key}",
                        schema.name
                    ),
                ));
            }
        }
    }

    Ok(deleted_rows.len() as u64)
}

// ===========================================================================
// DDL
// ===========================================================================

/// Execute CREATE TABLE. Returns `true` if a table was created (`false`
/// for a no-op IF NOT EXISTS).
pub fn run_create_table(
    create: &CreateTable,
    storage: &mut Storage,
    undo: &mut Vec<UndoEntry>,
) -> Result<bool, SqlError> {
    if storage.has_table(&create.name) {
        if create.if_not_exists {
            return Ok(false);
        }
        return Err(SqlError::new(
            SqlErrorKind::DuplicateTable,
            format!("table {} already exists", create.name),
        ));
    }
    if create.columns.is_empty() {
        return Err(SqlError::syntax("a table must have at least one column"));
    }

    // Primary key: column-level markers or one table-level constraint.
    let mut pk: Vec<usize> = Vec::new();
    for (i, c) in create.columns.iter().enumerate() {
        if c.primary_key {
            pk.push(i);
        }
    }
    if !create.primary_key.is_empty() {
        if !pk.is_empty() {
            return Err(SqlError::syntax("duplicate PRIMARY KEY specification"));
        }
        for name in &create.primary_key {
            let i =
                create.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name)).ok_or_else(
                    || {
                        SqlError::new(
                            SqlErrorKind::UndefinedColumn,
                            format!("PRIMARY KEY names unknown column {name}"),
                        )
                    },
                )?;
            pk.push(i);
        }
    }

    // Evaluate DEFAULT expressions (must be constant).
    let empty = ExecSchema::default();
    let mut columns = Vec::with_capacity(create.columns.len());
    for (i, c) in create.columns.iter().enumerate() {
        let default = match &c.default {
            None => None,
            Some(e) => {
                let ctx = EvalContext::new(&empty, &[], &[]);
                let v = eval(e, &ctx).map_err(|e| {
                    SqlError::syntax(format!("DEFAULT must be constant: {}", e.message))
                })?;
                Some(v.coerce_to(c.ty)?)
            }
        };
        // Validate FK target exists now (catching typos at DDL time).
        if let Some((ftable, fcolumn)) = &c.references {
            let referenced = storage.table(ftable).map_err(|_| {
                SqlError::new(
                    SqlErrorKind::UndefinedTable,
                    format!("foreign key references unknown table {ftable}"),
                )
            })?;
            if referenced.schema.column_index(fcolumn).is_none() {
                return Err(SqlError::new(
                    SqlErrorKind::UndefinedColumn,
                    format!("foreign key references unknown column {ftable}.{fcolumn}"),
                ));
            }
        }
        columns.push(ColumnMeta {
            name: c.name.clone(),
            ty: c.ty,
            not_null: c.not_null || pk.contains(&i),
            unique: c.unique,
            default,
            references: c.references.clone(),
        });
    }

    let schema = TableSchema {
        name: create.name.clone(),
        columns,
        primary_key: pk,
        checks: create.checks.clone(),
        indexes: Vec::new(),
    };
    storage.add_table(Table::new(schema))?;
    undo.push(UndoEntry::CreateTable { name: create.name.clone() });
    Ok(true)
}

/// Execute DROP TABLE. Returns `true` if a table was dropped.
pub fn run_drop_table(
    name: &str,
    if_exists: bool,
    storage: &mut Storage,
    undo: &mut Vec<UndoEntry>,
) -> Result<bool, SqlError> {
    if !storage.has_table(name) {
        if if_exists {
            return Ok(false);
        }
        return Err(SqlError::new(SqlErrorKind::UndefinedTable, format!("no such table: {name}")));
    }
    // Refuse to drop a table other tables reference.
    for t in storage.tables() {
        if t.schema.name.eq_ignore_ascii_case(name) {
            continue;
        }
        for c in &t.schema.columns {
            if let Some((ftable, _)) = &c.references {
                if ftable.eq_ignore_ascii_case(name) {
                    return Err(SqlError::new(
                        SqlErrorKind::ForeignKeyViolation,
                        format!("cannot drop {name}: referenced by {}.{}", t.schema.name, c.name),
                    ));
                }
            }
        }
    }
    let Some(table) = storage.remove_table(name) else {
        return Err(SqlError::new(
            SqlErrorKind::Internal,
            format!("table {name} vanished between existence check and DROP"),
        ));
    };
    undo.push(UndoEntry::DropTable { table: Box::new(table) });
    Ok(true)
}

/// Execute CREATE INDEX.
pub fn run_create_index(
    name: &str,
    table_name: &str,
    column: &str,
    unique: bool,
    storage: &mut Storage,
    undo: &mut Vec<UndoEntry>,
) -> Result<(), SqlError> {
    let table = storage.table_mut(table_name)?;
    let ordinal = table.schema.column_index(column).ok_or_else(|| {
        SqlError::new(
            SqlErrorKind::UndefinedColumn,
            format!("no column {column} in table {table_name}"),
        )
    })?;
    if table.schema.indexes.iter().any(|i| i.name.eq_ignore_ascii_case(name)) {
        return Err(SqlError::new(
            SqlErrorKind::DuplicateTable,
            format!("index {name} already exists on {table_name}"),
        ));
    }
    table.create_index(IndexMeta { name: name.to_string(), column: ordinal, unique })?;
    undo.push(UndoEntry::CreateIndex { table: table_name.to_string(), index: name.to_string() });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::parser::parse_statement;
    use dais_util::rng::SplitMix64;

    /// A seeded table exercising every value shape the wire cares about:
    /// NULLs, escaping-heavy strings, whitespace-edged and empty strings.
    fn seeded_db(seed: u64, rows: usize) -> Database {
        let mut rng = SplitMix64::new(seed);
        let db = Database::new("prop");
        db.execute(
            "CREATE TABLE item (id INTEGER PRIMARY KEY, category INTEGER NOT NULL, \
             price DOUBLE NOT NULL, label VARCHAR)",
            &[],
        )
        .unwrap();
        for id in 0..rows as i64 {
            let category = rng.gen_range(0, 10) as i64;
            let price = (rng.next_f64() * 1000.0 * 100.0).round() / 100.0;
            let label = match rng.gen_range(0, 5) {
                0 => Value::Null,
                1 => Value::Str(format!("item <{id}> & \"co\"")),
                2 => Value::Str(format!("  padded {id}  ")),
                3 => Value::Str(String::new()),
                _ => Value::Str(format!("plain-{id}")),
            };
            db.execute(
                "INSERT INTO item VALUES (?, ?, ?, ?)",
                &[Value::Int(id), Value::Int(category), Value::Double(price), label],
            )
            .unwrap();
        }
        db
    }

    fn select_of(sql: &str) -> Select {
        match parse_statement(sql).unwrap() {
            crate::ast::Stmt::Select(s) => s,
            other => panic!("not a select: {other:?}"),
        }
    }

    /// Property: for every pushdown-eligible query shape, the pushdown
    /// plan returns row-for-row (and column-for-column) identical results
    /// to the generic executor — across projections, predicates, orders
    /// and paging windows, on seeded data with NULL-dense and
    /// escaping-heavy cells.
    #[test]
    fn pushdown_matches_generic_executor() {
        let db = seeded_db(0xDA15_0008, 97);
        let projections =
            ["*", "i.*", "id", "id, label", "label AS l, price, id", "category, category, PRICE"];
        let predicates = [
            "",
            " WHERE category = 3",
            " WHERE price > ? AND category < ?",
            " WHERE label IS NULL",
            " WHERE id BETWEEN 10 AND 40 AND label LIKE '%a%'",
        ];
        let orders = ["", " ORDER BY 1", " ORDER BY 1 DESC"];
        let windows = ["", " LIMIT 7", " LIMIT 5 OFFSET 3", " OFFSET 91", " LIMIT 0"];
        let params = [Value::Double(400.0), Value::Int(7)];

        let mut pushed = 0usize;
        for proj in projections {
            for pred in predicates {
                for order in orders {
                    for window in windows {
                        let sql = format!("SELECT {proj} FROM item i{pred}{order}{window}");
                        let select = select_of(&sql);
                        let args: &[Value] = if pred.contains('?') { &params } else { &[] };
                        db.with_storage(|storage| {
                            let generic = run_select_generic(&select, storage, args).unwrap();
                            let fast = run_select(&select, storage, args).unwrap();
                            assert_eq!(fast, generic, "divergence for {sql}");
                            if plan_pushdown(&select, storage).is_some() {
                                pushed += 1;
                            }
                        });
                    }
                }
            }
        }
        // Every combination above is pushdown-eligible by construction.
        assert_eq!(pushed, projections.len() * predicates.len() * orders.len() * windows.len());

        // Named/aliased ORDER BY keys resolve against output columns.
        for sql in [
            "SELECT id, label FROM item ORDER BY label, id LIMIT 9",
            "SELECT label AS l, price, id FROM item WHERE category = 2 ORDER BY price DESC, id",
            "SELECT id, category FROM item ORDER BY CATEGORY DESC, 1 OFFSET 2",
        ] {
            let select = select_of(sql);
            db.with_storage(|storage| {
                assert!(plan_pushdown(&select, storage).is_some(), "not pushed: {sql}");
                let generic = run_select_generic(&select, storage, &[]).unwrap();
                let fast = run_select(&select, storage, &[]).unwrap();
                assert_eq!(fast, generic, "divergence for {sql}");
            });
        }
    }

    /// Shapes the planner must refuse (and the refusal must not change
    /// results): expressions, aggregates, DISTINCT, joins, source-row
    /// ORDER BY, unions.
    #[test]
    fn ineligible_shapes_fall_back_to_generic() {
        let db = seeded_db(0xDA15_0009, 31);
        let ineligible = [
            "SELECT id + 1 FROM item",
            "SELECT COUNT(*) FROM item",
            "SELECT DISTINCT category FROM item",
            "SELECT category FROM item GROUP BY category",
            "SELECT a.id FROM item a JOIN item b ON a.id = b.id",
            "SELECT id FROM item ORDER BY price",
            "SELECT label FROM item ORDER BY UPPER(label)",
            "SELECT id FROM item UNION SELECT category FROM item",
        ];
        for sql in ineligible {
            let select = select_of(sql);
            db.with_storage(|storage| {
                assert!(plan_pushdown(&select, storage).is_none(), "planner must refuse {sql}");
                // And the dispatching entry point still answers correctly.
                let via_dispatch = run_select(&select, storage, &[]).unwrap();
                let direct = run_select_generic(&select, storage, &[]);
                // UNION queries never reach run_select_generic whole; for
                // the rest the two must agree exactly.
                if select.unions.is_empty() {
                    assert_eq!(via_dispatch, direct.unwrap(), "divergence for {sql}");
                }
            });
        }
    }

    /// The planner refuses unresolvable names so the generic path can
    /// raise its usual diagnostics.
    #[test]
    fn unresolvable_names_keep_generic_diagnostics() {
        let db = seeded_db(0xDA15_000A, 5);
        db.with_storage(|storage| {
            let select = select_of("SELECT nope FROM item");
            assert!(plan_pushdown(&select, storage).is_none());
            let err = run_select(&select, storage, &[]).unwrap_err();
            assert_eq!(err.kind, SqlErrorKind::UndefinedColumn);
            let select = select_of("SELECT id FROM item ORDER BY 9");
            assert!(plan_pushdown(&select, storage).is_none());
            let err = run_select(&select, storage, &[]).unwrap_err();
            assert!(err.message.contains("out of range"));
        });
    }
}
