//! SQL tokenizer.

use crate::error::SqlError;

/// A SQL token. Keywords are recognised case-insensitively and carried in
/// upper case; identifiers preserve their original case but compare
/// case-insensitively during binding.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Keyword(String),
    Number(String),
    String(String),
    Param, // ?
    Comma,
    LParen,
    RParen,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Concat, // ||
    Semicolon,
}

const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "CREATE",
    "TABLE",
    "DROP",
    "INDEX",
    "PRIMARY",
    "KEY",
    "NOT",
    "NULL",
    "UNIQUE",
    "DEFAULT",
    "CHECK",
    "REFERENCES",
    "FOREIGN",
    "AND",
    "OR",
    "IN",
    "IS",
    "LIKE",
    "BETWEEN",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "JOIN",
    "INNER",
    "LEFT",
    "OUTER",
    "ON",
    "AS",
    "DISTINCT",
    "ALL",
    "TRUE",
    "FALSE",
    "BEGIN",
    "COMMIT",
    "ROLLBACK",
    "TRANSACTION",
    "EXISTS",
    "IF",
    "UNION",
    "CROSS",
];

/// Tokenize a SQL statement.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                // Line comment.
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b',' => {
                out.push(Token::Comma);
                pos += 1;
            }
            b'(' => {
                out.push(Token::LParen);
                pos += 1;
            }
            b')' => {
                out.push(Token::RParen);
                pos += 1;
            }
            b'.' => {
                if bytes.get(pos + 1).is_some_and(u8::is_ascii_digit) {
                    let (t, n) = lex_number(bytes, pos)?;
                    out.push(t);
                    pos = n;
                } else {
                    out.push(Token::Dot);
                    pos += 1;
                }
            }
            b'*' => {
                out.push(Token::Star);
                pos += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                pos += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                pos += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                pos += 1;
            }
            b'%' => {
                out.push(Token::Percent);
                pos += 1;
            }
            b'?' => {
                out.push(Token::Param);
                pos += 1;
            }
            b';' => {
                out.push(Token::Semicolon);
                pos += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                pos += 1;
            }
            b'|' if bytes.get(pos + 1) == Some(&b'|') => {
                out.push(Token::Concat);
                pos += 2;
            }
            b'<' => match bytes.get(pos + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    pos += 2;
                }
                Some(b'>') => {
                    out.push(Token::Ne);
                    pos += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    pos += 1;
                }
            },
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    pos += 2;
                } else {
                    out.push(Token::Gt);
                    pos += 1;
                }
            }
            b'!' if bytes.get(pos + 1) == Some(&b'=') => {
                out.push(Token::Ne);
                pos += 2;
            }
            b'\'' => {
                // String literal with '' escaping.
                pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(pos) {
                        Some(b'\'') => {
                            if bytes.get(pos + 1) == Some(&b'\'') {
                                s.push('\'');
                                pos += 2;
                            } else {
                                pos += 1;
                                break;
                            }
                        }
                        Some(&c) => {
                            // Collect a UTF-8 code point.
                            let len = utf8_len(c);
                            s.push_str(&String::from_utf8_lossy(&bytes[pos..pos + len]));
                            pos += len;
                        }
                        None => return Err(SqlError::syntax("unterminated string literal")),
                    }
                }
                out.push(Token::String(s));
            }
            b'"' => {
                // Quoted identifier.
                pos += 1;
                let start = pos;
                while pos < bytes.len() && bytes[pos] != b'"' {
                    pos += 1;
                }
                if pos == bytes.len() {
                    return Err(SqlError::syntax("unterminated quoted identifier"));
                }
                out.push(Token::Ident(String::from_utf8_lossy(&bytes[start..pos]).into_owned()));
                pos += 1;
            }
            b'0'..=b'9' => {
                let (t, n) = lex_number(bytes, pos)?;
                out.push(t);
                pos = n;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let word = String::from_utf8_lossy(&bytes[start..pos]).into_owned();
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(word));
                }
            }
            other => {
                return Err(SqlError::syntax(format!(
                    "unexpected character '{}' in SQL",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn lex_number(bytes: &[u8], start: usize) -> Result<(Token, usize), SqlError> {
    let mut pos = start;
    let mut seen_dot = false;
    while pos < bytes.len() {
        match bytes[pos] {
            b'0'..=b'9' => pos += 1,
            b'.' if !seen_dot => {
                seen_dot = true;
                pos += 1;
            }
            b'e' | b'E' => {
                pos += 1;
                if matches!(bytes.get(pos), Some(b'+' | b'-')) {
                    pos += 1;
                }
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                break;
            }
            _ => break,
        }
    }
    Ok((Token::Number(String::from_utf8_lossy(&bytes[start..pos]).into_owned()), pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_select() {
        let t = tokenize("SELECT a, b FROM t WHERE x >= 1.5").unwrap();
        assert_eq!(t[0], Token::Keyword("SELECT".into()));
        assert_eq!(t[1], Token::Ident("a".into()));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Number("1.5".into())));
    }

    #[test]
    fn case_insensitive_keywords() {
        let t = tokenize("select FROM Where").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("FROM".into()),
                Token::Keyword("WHERE".into())
            ]
        );
    }

    #[test]
    fn string_escaping() {
        let t = tokenize("'it''s'").unwrap();
        assert_eq!(t, vec![Token::String("it's".into())]);
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn quoted_identifiers() {
        let t = tokenize("\"My Table\"").unwrap();
        assert_eq!(t, vec![Token::Ident("My Table".into())]);
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT 1 -- trailing\n, 2").unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn operators() {
        let t = tokenize("<> != <= >= = < > || ?").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ne,
                Token::Ne,
                Token::Le,
                Token::Ge,
                Token::Eq,
                Token::Lt,
                Token::Gt,
                Token::Concat,
                Token::Param
            ]
        );
    }

    #[test]
    fn numbers() {
        let t = tokenize("1 2.5 .5 1e3 2.5E-2").unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t[2], Token::Number(".5".into()));
    }

    #[test]
    fn unicode_in_strings() {
        let t = tokenize("'héllo 世界'").unwrap();
        assert_eq!(t, vec![Token::String("héllo 世界".into())]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT @").is_err());
    }
}
